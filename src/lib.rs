//! # parace — Optimization Schemas for Parallel Nondeterministic Systems
//!
//! Facade crate of the IPPS'97 reproduction workspace. Re-exports the
//! public API of every subsystem crate so examples, integration tests and
//! downstream users have a single import root.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use ace_core as core;
pub use ace_logic as logic;
pub use ace_machine as machine;
pub use ace_programs as programs;
pub use ace_runtime as runtime;
pub use ace_server as server;

pub use ace_and as and_engine;
pub use ace_fd as fd;
pub use ace_or as or_engine;
