//! Fault tolerance tour: inject scheduler faults and a worker death into
//! a parallel run, watch transient faults get absorbed, and watch the
//! facade degrade to the sequential engine when a worker dies.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use std::time::Duration;

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, FaultKind, FaultPlan, OptFlags};

fn main() -> Result<(), String> {
    let ace = Ace::load(
        r#"
        c(1). c(2). c(3).
        pair(N) :- (c(A) & c(B)), N is A * 10 + B.
        "#,
    )?;

    let base = EngineConfig::default()
        .with_workers(3)
        .with_opts(OptFlags::all())
        .with_threads_deadline(Some(Duration::from_secs(10)))
        .all_solutions();

    // 1. Transient faults only: failed steals and stalls are absorbed in
    //    place — same answers, same order, a note on the recovery log.
    let plan = FaultPlan::new(7).with(1, 2, FaultKind::StealFail).with(
        2,
        3,
        FaultKind::Stall { cost: 500 },
    );
    let cfg = base.clone().with_fault_plan(plan);
    let r = ace
        .run_query(Mode::AndParallel, "pair(N)", &cfg)
        .map_err(|e| e.to_string())?;
    println!("transient faults: {} solutions", r.solutions.len());
    for line in &r.recovery {
        println!("  recovery: {line}");
    }

    // 2. A worker death. The strict API reports a structured error and the
    //    process stays alive...
    let plan = FaultPlan::new(0).with(0, 2, FaultKind::Die);
    let cfg = base.clone().with_fault_plan(plan);
    let err = ace
        .run_strict(Mode::AndParallel, "pair(N)", &cfg)
        .expect_err("a dead worker fails the strict run");
    println!("\nworker death, strict API:\n  error: {err}");

    // 3. ...while `run_query` replays the query on the sequential engine
    //    and records the degradation.
    let r = ace
        .run_query(Mode::AndParallel, "pair(N)", &cfg)
        .map_err(|e| e.to_string())?;
    println!(
        "\nworker death, degrading API: {} solutions",
        r.solutions.len()
    );
    for line in &r.recovery {
        println!("  recovery: {line}");
    }

    // 4. Seeded random plans replay exactly: same seed, same faults.
    let a = FaultPlan::random(1234, 3, 6);
    let b = FaultPlan::random(1234, 3, 6);
    assert_eq!(a, b);
    println!(
        "\nseeded plan 1234 has {} events, replays exactly",
        a.events.len()
    );
    Ok(())
}
