//! The optimization schemas beyond Prolog: LAO on the finite-domain
//! constraint solver's labeling tree (the paper's §3.2 closes with "The
//! LAO can also be used for parallelizing and optimizing constraint
//! languages").
//!
//! ```sh
//! cargo run --release --example fd_queens -- 8 6
//! #                                          N  workers
//! ```

use ace_fd::{queens, Fd};
use ace_runtime::{EngineConfig, OptFlags};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("{n}-queens as a finite-domain constraint problem, all solutions\n");
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "workers", "t_unopt", "t_lao", "improv", "depth", "reused", "visits"
    );
    for w in [1, 2, workers.max(3), workers.max(3) * 2] {
        let mk = |opts: OptFlags| {
            EngineConfig::default()
                .with_workers(w)
                .with_opts(opts)
                .all_solutions()
        };
        let unopt = Fd::new(queens(n)).solve_all(&mk(OptFlags::none()));
        let lao = Fd::new(queens(n)).solve_all(&mk(OptFlags::lao_only()));
        assert_eq!(unopt.solutions.len(), lao.solutions.len());
        let improvement = 100.0
            * (unopt.outcome.virtual_time as f64 - lao.outcome.virtual_time as f64)
            / unopt.outcome.virtual_time as f64;
        println!(
            "{:>8} {:>12} {:>12} {:>7.1}% {:>4} → {:>3} {:>10} {:>10}",
            w,
            unopt.outcome.virtual_time,
            lao.outcome.virtual_time,
            improvement,
            unopt.max_tree_depth,
            lao.max_tree_depth,
            lao.stats.cp_reused_lao,
            lao.stats.tree_visits,
        );
    }
    println!(
        "\n({} solutions; `depth` is the public labeling tree's maximum \
         depth without → with LAO)",
        Fd::new(queens(n))
            .solve_all(&EngineConfig::default().with_workers(1).all_solutions())
            .solutions
            .len()
    );
}
