//! N-queens under the or-parallel engine: demonstrates or-parallel search
//! and the Last Alternative Optimization's effect on the public tree.
//!
//! ```sh
//! cargo run --release --example nqueens -- 7 8
//! #                                        N  workers
//! ```

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags};

fn main() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let b = ace_programs::benchmark("queen1").expect("corpus");
    let ace = Ace::load(&(b.program)(n))?;
    let query = format!("queens1({n}, Qs)");

    println!("{n}-queens, {workers} workers, all solutions\n");
    let mut first_count = None;
    for (label, opts) in [
        ("unoptimized", OptFlags::none()),
        ("with LAO   ", OptFlags::lao_only()),
    ] {
        let cfg = EngineConfig::default()
            .with_workers(workers)
            .with_opts(opts)
            .all_solutions();
        let r = ace.run(Mode::OrParallel, &query, &cfg)?;
        println!(
            "{label}: {} solutions, virtual time {}, public tree depth {}, \
             nodes published {}, nodes reused {}, tree visits {}",
            r.solutions.len(),
            r.virtual_time,
            r.tree_depth.unwrap_or(0),
            r.stats.nodes_published,
            r.stats.cp_reused_lao,
            r.stats.tree_visits,
        );
        if let Some(c) = first_count {
            assert_eq!(c, r.solutions.len(), "LAO changed the solution count!");
        }
        first_count = Some(r.solutions.len());
    }

    // Show a solution.
    let cfg = EngineConfig::default().with_workers(1).first_solution();
    let r = ace.run(Mode::OrParallel, &query, &cfg)?;
    if let Some(s) = r.solutions.first() {
        println!("\nfirst solution: {s}");
    } else {
        println!("\nno solutions for N={n}");
    }
    Ok(())
}
