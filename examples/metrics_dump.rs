//! Metrics tour: run a corpus benchmark with a live metrics registry and
//! virtual-time tracing attached, then print the Prometheus text
//! exposition and the top-10 cost-profile frames.
//!
//! ```sh
//! cargo run --release --example metrics_dump             # queen1
//! cargo run --release --example metrics_dump wide_tree   # another corpus program
//! ```

use ace_core::Ace;
use ace_runtime::{EngineConfig, MetricsRegistry, OptFlags, Profile, TraceConfig};

fn main() -> Result<(), String> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "queen1".into());
    let bench = ace_programs::benchmark(&name)
        .ok_or_else(|| format!("unknown corpus benchmark: {name}"))?;
    let size = bench.test_size;
    let ace = Ace::load(&(bench.program)(size))?;

    let registry = MetricsRegistry::shared();
    let mut cfg = EngineConfig::default()
        .with_workers(4)
        .with_opts(OptFlags::all())
        .with_metrics(registry.clone())
        .with_trace(TraceConfig::enabled());
    if bench.all_solutions {
        cfg = cfg.all_solutions();
    }

    let r = ace.run(bench.mode, &(bench.query)(size), &cfg)?;
    println!(
        "{name} (size {size}): {} solution(s), virtual time {}\n",
        r.solutions.len(),
        r.virtual_time
    );

    // The live registry, as a Prometheus scrape would see it.
    println!("--- metrics (Prometheus text format) ---");
    print!("{}", registry.snapshot().render_prometheus());

    // The virtual-time cost profile folded from the trace.
    let trace = r.trace.as_ref().expect("tracing was enabled");
    let profile = Profile::from_trace(trace);
    println!("\n--- cost profile ---");
    println!("{}", profile.table(10));
    Ok(())
}
