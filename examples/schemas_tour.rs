//! A guided tour of the paper's three optimization schemas: for each
//! concrete optimization, state the schema it instantiates (quoting the
//! paper), run a workload that isolates it, and show the measured effect
//! with its mechanism counters.
//!
//! ```sh
//! cargo run --release --example schemas_tour
//! ```

use ace_core::{Ace, Mode, Optimization};
use ace_runtime::{EngineConfig, OptFlags};

fn main() -> Result<(), String> {
    println!("Three schemas, four optimizations (Gupta & Pontelli, IPPS'97)\n");

    for opt in Optimization::ALL {
        let schema = opt.schema();
        println!("── {} ({})", opt.name(), opt.acronym());
        println!("   schema: {:?} — \"{}\"", schema, schema.statement());

        let (mode, program, query, workers, all) = workload(opt);
        let ace = Ace::load(program)?;
        let mut base_cfg = EngineConfig::default()
            .with_workers(workers)
            .with_opts(baseline(opt));
        base_cfg.max_solutions = if all { None } else { Some(1) };
        let mut opt_cfg = base_cfg.clone();
        opt_cfg.opts = merged(baseline(opt), opt.flags());

        let unopt = ace.run(mode, query, &base_cfg)?;
        let with = ace.run(mode, query, &opt_cfg)?;
        assert_eq!(unopt.solutions.len(), with.solutions.len());

        println!(
            "   workload: {query}  ({} workers, {} solution(s))",
            workers,
            with.solutions.len()
        );
        println!(
            "   virtual time {} → {}  ({:+.1}%)",
            unopt.virtual_time,
            with.virtual_time,
            -unopt.improvement_over(&with)
        );
        match opt {
            Optimization::Lpco => println!(
                "   mechanism: parcall frames {} → {} (slots merged: {})",
                unopt.stats.parcall_frames, with.stats.parcall_frames, with.stats.slots_merged_lpco
            ),
            Optimization::Lao => println!(
                "   mechanism: public tree depth {} → {} (nodes reused {}, \
                 work-finding visits {} → {})",
                unopt.tree_depth.unwrap_or(0),
                with.tree_depth.unwrap_or(0),
                with.stats.cp_reused_lao,
                unopt.stats.tree_visits,
                with.stats.tree_visits
            ),
            Optimization::Spo => println!(
                "   mechanism: markers allocated {} → {} ({} elided)",
                unopt.stats.markers_allocated,
                with.stats.markers_allocated,
                with.stats.markers_elided_spo
            ),
            Optimization::Pdo => println!(
                "   mechanism: {} subgoals merged onto their neighbours' \
                 machines; goal cells copied {} → {}",
                with.stats.pdo_merges, unopt.stats.cells_copied, with.stats.cells_copied
            ),
        }
        println!();
    }
    Ok(())
}

fn baseline(opt: Optimization) -> OptFlags {
    match opt {
        // PDO's adjacency needs the LPCO-flattened frames to exist
        Optimization::Pdo => OptFlags::lpco_only(),
        _ => OptFlags::none(),
    }
}

fn merged(a: OptFlags, b: OptFlags) -> OptFlags {
    OptFlags {
        lpco: a.lpco || b.lpco,
        lao: a.lao || b.lao,
        spo: a.spo || b.spo,
        pdo: a.pdo || b.pdo,
    }
}

fn workload(opt: Optimization) -> (Mode, &'static str, &'static str, usize, bool) {
    match opt {
        Optimization::Lpco => (
            Mode::AndParallel,
            r#"
            tr(X, Y) :- Y is X * 2.
            tr(X, Y) :- Y is X * 2 + 1.
            pmap([], []).
            pmap([H|T], [H2|T2]) :- tr(H, H2) & pmap(T, T2).
            drain :- pmap([1,2,3,4,5,6,7], _), fail.
            drain.
            "#,
            "drain",
            4,
            false,
        ),
        Optimization::Lao => (
            Mode::OrParallel,
            r#"
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
            sq(V, R) :- R is V * V.
            "#,
            "member(V, [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]), sq(V, R)",
            6,
            true,
        ),
        Optimization::Spo => (
            Mode::AndParallel,
            r#"
            f(N, R) :- ( N < 2 -> R = N
                       ; A is N - 1, B is N - 2,
                         ( f(A, RA) & f(B, RB) ),
                         R is RA + RB ).
            "#,
            "f(13, R)",
            4,
            false,
        ),
        Optimization::Pdo => (
            Mode::AndParallel,
            r#"
            w(X, Y) :- Y is (X * 37 + 11) mod 1000.
            row([], []).
            row([X|T], [Y|T2]) :- w(X, Y) & row(T, T2).
            "#,
            "row([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20], R)",
            1,
            false,
        ),
    }
}
