//! Quickstart: load an annotated program, run it sequentially and
//! and-parallel, and inspect what the optimizations changed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags};

fn main() -> Result<(), String> {
    // `&` marks independent subgoals for parallel execution, exactly as in
    // the paper's &ACE system; `,` stays sequential.
    let ace = Ace::load(
        r#"
        fib(N, F) :-
            ( N < 2 -> F = N
            ; N1 is N - 1, N2 is N - 2,
              ( fib(N1, F1) & fib(N2, F2) ),
              F is F1 + F2 ).
        "#,
    )?;

    // Sequential baseline (the "SICStus" stand-in).
    let seq = ace.run(Mode::Sequential, "fib(15, F)", &EngineConfig::default())?;
    println!("sequential:        F = {:?}", seq.solutions);
    println!("  virtual time {}", seq.virtual_time);

    // Unoptimized parallel engine on 4 workers.
    let base_cfg = EngineConfig::default()
        .with_workers(4)
        .with_opts(OptFlags::none());
    let unopt = ace.run(Mode::AndParallel, "fib(15, F)", &base_cfg)?;
    println!("\n4 workers, no optimizations:");
    println!("  virtual time {}", unopt.virtual_time);
    println!(
        "  parcall frames {} / markers {}",
        unopt.stats.parcall_frames, unopt.stats.markers_allocated
    );

    // All four optimizations from the paper's three schemas.
    let opt_cfg = base_cfg.clone().with_opts(OptFlags::all());
    let opt = ace.run(Mode::AndParallel, "fib(15, F)", &opt_cfg)?;
    println!("\n4 workers, LPCO+LAO+SPO+PDO:");
    println!("  virtual time {}", opt.virtual_time);
    println!(
        "  parcall frames {} / markers {} (elided {}) / PDO merges {}",
        opt.stats.parcall_frames,
        opt.stats.markers_allocated,
        opt.stats.markers_elided_spo,
        opt.stats.pdo_merges
    );
    println!(
        "\nimprovement from the optimizations: {:.1}%",
        unopt.improvement_over(&opt)
    );
    assert_eq!(seq.solutions, opt.solutions);
    Ok(())
}
