//! Dump the clause code cache: every user predicate's clauses with the
//! register code they were compiled to at load time, the switch-on-term
//! dispatch buckets, and a side-by-side run showing what the compiled
//! mode saves over the tree-walking interpreter oracle.
//!
//! ```sh
//! cargo run --release --example compiled_dump            # built-in demo
//! cargo run --release --example compiled_dump -- my.pl   # your program
//! ```

use ace_core::{Ace, Mode};
use ace_logic::write::term_to_string;
use ace_runtime::{ClauseExec, EngineConfig};

const DEMO: &str = r#"
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
    kind(0, zero).
    kind(N, pos) :- N > 0.
    kind(N, neg) :- N < 0.
    kind([], empty_list).
    kind([_|_], list).
    kind(f(_), functor).
"#;

fn main() -> Result<(), String> {
    let (program, query) = match std::env::args().nth(1) {
        Some(path) => (
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?,
            None,
        ),
        None => (DEMO.to_string(), Some("nrev([1,2,3,4,5,6,7,8], R)")),
    };
    let ace = Ace::load(&program)?;

    let mut preds: Vec<_> = ace.db().predicates().collect();
    preds.sort_by_key(|&(name, arity)| (ace_logic::sym::sym_name(name), arity));
    for (name, arity) in preds {
        let Some(pred) = ace.db().predicate(name, arity) else {
            continue;
        };
        println!(
            "=== {}/{arity} ({} clause(s)) ===",
            ace_logic::sym::sym_name(name),
            pred.clauses.len()
        );
        for (i, clause) in pred.clauses.iter().enumerate() {
            let (arena, head) = clause.head_in_arena();
            let (_, body) = clause.body_in_arena();
            if clause.code().is_fact() {
                println!("% {i}: {}.", term_to_string(arena, head));
            } else {
                println!(
                    "% {i}: {} :- {}.",
                    term_to_string(arena, head),
                    term_to_string(arena, body)
                );
            }
            for line in clause.code().disassemble() {
                println!("    {line}");
            }
        }
        println!("  switch-on-term dispatch:");
        for (key, chain) in pred.index_buckets() {
            println!("    {key:<18} -> clauses {chain:?}");
        }
        println!();
    }

    // What the code cache buys at run time: same query, same answers,
    // compiled dispatch vs the interpreter oracle.
    if let Some(q) = query {
        let compiled = ace.run(
            Mode::Sequential,
            q,
            &EngineConfig::default().all_solutions(),
        )?;
        let interp = ace.run(
            Mode::Sequential,
            q,
            &EngineConfig::default()
                .all_solutions()
                .with_clause_exec(ClauseExec::Interpreted),
        )?;
        assert_eq!(compiled.solutions, interp.solutions);
        println!("?- {q}.   ({} solution(s))", compiled.solutions.len());
        println!(
            "  interpreter oracle: virtual time {:>8}",
            interp.virtual_time
        );
        println!(
            "  compiled code     : virtual time {:>8}  ({:.2}x, {} code-cache hits, \
             {} clauses skipped by index, {} determinate calls)",
            compiled.virtual_time,
            interp.virtual_time as f64 / compiled.virtual_time.max(1) as f64,
            compiled.stats.code_cache_hits,
            compiled.stats.clauses_skipped_by_index,
            compiled.stats.index_determinate_calls,
        );
    }
    Ok(())
}
