//! A tiny interactive Prolog REPL over the ACE engines.
//!
//! ```sh
//! cargo run --release --example repl -- crates/programs/pl/lists.pl
//! ```
//!
//! Commands:
//! * `?- Goal.` — solve sequentially (all solutions)
//! * `:and N ?- Goal.` — solve on the and-parallel engine with N workers
//! * `:or N ?- Goal.` — solve on the or-parallel engine with N workers
//! * `:memo` — toggle answer memoization (the table persists across
//!   queries and engines until toggled off, which clears it)
//! * `:memo-stats` — table size and hit/miss/store/eviction counters
//! * `:table` — toggle SLG tabling for `:- table(p/n)` predicates
//!   (left recursion terminates; completed tables persist across
//!   queries and engines until toggled off, which clears them)
//! * `:table-stats` — subgoal space size and register/hit/completion
//!   counters
//! * `:metrics` — dump the session's live metrics registry in the
//!   Prometheus text format (every query folds into it)
//! * `:listing p/n` — clause sources with their compiled register code
//!   and the predicate's switch-on-term dispatch buckets
//! * `:quit`

use std::io::{BufRead, Write};
use std::sync::Arc;

use ace_core::{Ace, Mode};
use ace_runtime::{
    EngineConfig, MemoConfig, MemoTable, MetricsRegistry, OptFlags, TableConfig, TableSpace,
};

fn main() {
    let mut program = String::new();
    for path in std::env::args().skip(1) {
        match std::fs::read_to_string(&path) {
            Ok(src) => program.push_str(&src),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if program.is_empty() {
        program.push_str("member(X, [X|_]).\nmember(X, [_|T]) :- member(X, T).\n");
        println!("(no program files given; loaded member/2 as a demo)");
    }
    let ace = match Ace::load(&program) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("load error: {e}");
            std::process::exit(1);
        }
    };
    println!("ACE repl — `?- goal.` to query, `:quit` to exit.");

    // One table for the whole session: answers stored by any engine on
    // any query replay on every later one, until `:memo` toggles off.
    let mut memo: Option<Arc<MemoTable>> = None;
    // Likewise one tabling space: fixpoints completed by any query are
    // pure lookups for every later one, until `:table` toggles off.
    let mut table: Option<Arc<TableSpace>> = None;
    // One metrics registry for the whole session; every query's run folds
    // into it and `:metrics` scrapes it.
    let metrics = MetricsRegistry::shared();

    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":memo" {
            memo = match memo {
                None => {
                    println!("memo on (fresh table).");
                    Some(Arc::new(MemoTable::new(&MemoConfig::enabled())))
                }
                Some(_) => {
                    println!("memo off (table dropped).");
                    None
                }
            };
            continue;
        }
        if line == ":table" {
            table = match table {
                None => {
                    println!("tabling on (fresh space).");
                    Some(Arc::new(TableSpace::new(&TableConfig::enabled())))
                }
                Some(_) => {
                    println!("tabling off (space dropped).");
                    None
                }
            };
            continue;
        }
        if line == ":table-stats" {
            match &table {
                None => println!("tabling is off — `:table` to enable."),
                Some(t) => {
                    let c = t.counters();
                    println!(
                        "{} subgoal(s) ({} complete); {} registered, {} hit(s), \
                         {} completion(s), {} eviction(s)",
                        t.len(),
                        t.complete_len(),
                        c.registered,
                        c.hits,
                        c.completions,
                        c.evictions
                    );
                }
            }
            continue;
        }
        if line == ":metrics" {
            let snap = metrics.snapshot();
            if snap.is_empty() {
                println!("no metrics recorded yet — run a query first.");
            } else {
                print!("{}", snap.render_prometheus());
            }
            continue;
        }
        if let Some(spec) = line.strip_prefix(":listing") {
            listing(&ace, spec.trim());
            continue;
        }
        if line == ":memo-stats" {
            match &memo {
                None => println!("memo is off — `:memo` to enable."),
                Some(t) => {
                    let c = t.counters();
                    println!(
                        "{} tabled call(s); {} hit(s), {} miss(es), {} store(s), \
                         {} eviction(s)",
                        t.len(),
                        c.hits,
                        c.misses,
                        c.stores,
                        c.evictions
                    );
                }
            }
            continue;
        }
        let (mode, workers, rest) = parse_command(line);
        let goal = rest
            .trim()
            .trim_start_matches("?-")
            .trim()
            .trim_end_matches('.');
        if goal.is_empty() {
            println!("usage: ?- goal.   or   :and 4 ?- goal.");
            continue;
        }
        let mut cfg = EngineConfig::default()
            .with_workers(workers)
            .with_opts(OptFlags::all())
            .with_metrics(metrics.clone())
            .all_solutions();
        if let Some(t) = &memo {
            cfg = cfg.with_memo_table(t.clone());
        }
        if let Some(t) = &table {
            cfg = cfg.with_table_space(t.clone());
        }
        match ace.run(mode, goal, &cfg) {
            Ok(r) => {
                if r.solutions.is_empty() {
                    println!("no.");
                } else {
                    for s in &r.solutions {
                        println!("{}", if s.is_empty() { "yes." } else { s });
                    }
                    let lookups = r.stats.memo_hits + r.stats.memo_misses;
                    let memo_note = if lookups > 0 {
                        format!(", memo {}/{} hit(s)", r.stats.memo_hits, lookups)
                    } else {
                        String::new()
                    };
                    let tabled = r.stats.table_subgoals + r.stats.table_hits;
                    let table_note = if tabled > 0 {
                        format!(
                            ", table {} subgoal(s)/{} hit(s)",
                            r.stats.table_subgoals, r.stats.table_hits
                        )
                    } else {
                        String::new()
                    };
                    println!(
                        "({} solution(s), virtual time {}{memo_note}{table_note})",
                        r.solutions.len(),
                        r.virtual_time
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

/// `:listing p/n` — print each clause of the predicate (reconstructed
/// from its arena) together with the register code it was compiled to at
/// load time, then the switch-on-term dispatch table.
fn listing(ace: &Ace, spec: &str) {
    use ace_logic::write::term_to_string;

    let parsed = spec
        .rsplit_once('/')
        .and_then(|(n, a)| a.trim().parse::<u32>().ok().map(|a| (n.trim(), a)));
    let Some((name, arity)) = parsed else {
        println!("usage: :listing name/arity   (e.g. :listing member/2)");
        return;
    };
    let Some(pred) = ace.db().predicate(ace_logic::sym::sym(name), arity) else {
        println!("no clauses for {name}/{arity}.");
        return;
    };
    for (i, clause) in pred.clauses.iter().enumerate() {
        let (arena, head) = clause.head_in_arena();
        let (_, body) = clause.body_in_arena();
        let head_txt = term_to_string(arena, head);
        let body_txt = term_to_string(arena, body);
        if clause.code().is_fact() {
            println!("% clause {i}: {head_txt}.");
        } else {
            println!("% clause {i}: {head_txt} :- {body_txt}.");
        }
        for l in clause.code().disassemble() {
            println!("    {l}");
        }
    }
    println!("% switch-on-term dispatch:");
    for (key, chain) in pred.index_buckets() {
        println!("%   {key:<18} -> clauses {chain:?}");
    }
}

fn parse_command(line: &str) -> (Mode, usize, &str) {
    if let Some(rest) = line.strip_prefix(":and") {
        let mut parts = rest.trim_start().splitn(2, ' ');
        let n = parts.next().and_then(|p| p.parse().ok()).unwrap_or(4);
        return (Mode::AndParallel, n, parts.next().unwrap_or(""));
    }
    if let Some(rest) = line.strip_prefix(":or") {
        let mut parts = rest.trim_start().splitn(2, ' ');
        let n = parts.next().and_then(|p| p.parse().ok()).unwrap_or(4);
        return (Mode::OrParallel, n, parts.next().unwrap_or(""));
    }
    (Mode::Sequential, 1, line)
}
