//! A tiny interactive Prolog REPL over the ACE engines.
//!
//! ```sh
//! cargo run --release --example repl -- crates/programs/pl/lists.pl
//! ```
//!
//! Commands:
//! * `?- Goal.` — solve sequentially (all solutions)
//! * `:and N ?- Goal.` — solve on the and-parallel engine with N workers
//! * `:or N ?- Goal.` — solve on the or-parallel engine with N workers
//! * `:quit`

use std::io::{BufRead, Write};

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags};

fn main() {
    let mut program = String::new();
    for path in std::env::args().skip(1) {
        match std::fs::read_to_string(&path) {
            Ok(src) => program.push_str(&src),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if program.is_empty() {
        program.push_str("member(X, [X|_]).\nmember(X, [_|T]) :- member(X, T).\n");
        println!("(no program files given; loaded member/2 as a demo)");
    }
    let ace = match Ace::load(&program) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("load error: {e}");
            std::process::exit(1);
        }
    };
    println!("ACE repl — `?- goal.` to query, `:quit` to exit.");

    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        let (mode, workers, rest) = parse_command(line);
        let goal = rest
            .trim()
            .trim_start_matches("?-")
            .trim()
            .trim_end_matches('.');
        if goal.is_empty() {
            println!("usage: ?- goal.   or   :and 4 ?- goal.");
            continue;
        }
        let cfg = EngineConfig::default()
            .with_workers(workers)
            .with_opts(OptFlags::all())
            .all_solutions();
        match ace.run(mode, goal, &cfg) {
            Ok(r) => {
                if r.solutions.is_empty() {
                    println!("no.");
                } else {
                    for s in &r.solutions {
                        println!("{}", if s.is_empty() { "yes." } else { s });
                    }
                    println!(
                        "({} solution(s), virtual time {})",
                        r.solutions.len(),
                        r.virtual_time
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

fn parse_command(line: &str) -> (Mode, usize, &str) {
    if let Some(rest) = line.strip_prefix(":and") {
        let mut parts = rest.trim_start().splitn(2, ' ');
        let n = parts.next().and_then(|p| p.parse().ok()).unwrap_or(4);
        return (Mode::AndParallel, n, parts.next().unwrap_or(""));
    }
    if let Some(rest) = line.strip_prefix(":or") {
        let mut parts = rest.trim_start().splitn(2, ' ');
        let n = parts.next().and_then(|p| p.parse().ok()).unwrap_or(4);
        return (Mode::OrParallel, n, parts.next().unwrap_or(""));
    }
    (Mode::Sequential, 1, line)
}
