//! And-parallel matrix multiplication: a miniature speedup study showing
//! how each optimization contributes at increasing worker counts.
//!
//! ```sh
//! cargo run --release --example matrix_speedup -- 12
//! #                                               matrix size (n x n)
//! ```

use ace_core::{Ace, Mode};
use ace_programs::gen;
use ace_runtime::{EngineConfig, OptFlags};

fn main() -> Result<(), String> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let b = ace_programs::benchmark("matrix").expect("corpus");
    let ace = Ace::load(&(b.program)(n))?;
    let query = format!(
        "matrix({}, {}, C)",
        gen::matrix(n, n, 5),
        gen::matrix(n, n, 9)
    );

    let seq = ace.run(Mode::Sequential, &query, &EngineConfig::default())?;
    println!(
        "{n}x{n} matrix multiplication; sequential time {}\n",
        seq.virtual_time
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "workers", "none", "spo", "pdo", "spo+pdo"
    );

    let variants = [
        OptFlags::none(),
        OptFlags::spo_only(),
        OptFlags::pdo_only(),
        OptFlags {
            spo: true,
            pdo: true,
            ..OptFlags::none()
        },
    ];
    for workers in [1, 2, 4, 6, 8, 10] {
        print!("{workers:>8}");
        for opts in variants {
            let cfg = EngineConfig::default()
                .with_workers(workers)
                .with_opts(opts);
            let r = ace.run(Mode::AndParallel, &query, &cfg)?;
            print!(" {:>12}", r.virtual_time);
        }
        println!();
    }

    println!(
        "\n(speedup = column value at 1 worker divided by value at N; \
         lower is better)"
    );
    Ok(())
}
