//! Trace tour: run a query with virtual-time event tracing enabled,
//! print the compact text timeline, and write a Chrome `trace_event`
//! JSON file you can open in Perfetto (https://ui.perfetto.dev) or
//! `chrome://tracing`.
//!
//! ```sh
//! cargo run --release --example trace_dump            # timeline to stdout
//! cargo run --release --example trace_dump trace.json # + Perfetto JSON
//! ```

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags, TraceChecker, TraceConfig};

fn main() -> Result<(), String> {
    let ace = Ace::load(
        r#"
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        pick(X, Y) :- member(X, [1,2,3,4]), member(Y, [a,b,c]).
        "#,
    )?;

    // `lifecycle` adds phase start/end markers on top of the semantic
    // events — more volume, nicer Perfetto lanes.
    let cfg = EngineConfig::default()
        .with_workers(4)
        .with_opts(OptFlags::all())
        .with_trace(TraceConfig::enabled().with_lifecycle())
        .all_solutions();

    let r = ace.run(Mode::OrParallel, "pick(X, Y)", &cfg)?;
    let trace = r.trace.as_ref().expect("tracing was enabled");

    println!(
        "{} solutions, virtual time {}",
        r.solutions.len(),
        r.virtual_time
    );
    println!(
        "{} events from {} worker(s), {} dropped\n",
        trace.len(),
        trace.workers(),
        trace.dropped
    );
    println!("{}", trace.timeline());

    // Every trace should satisfy the scheduler invariants.
    TraceChecker::check(trace).map_err(|v| format!("trace invariants violated: {v:?}"))?;
    println!("trace invariants: OK");

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
        println!("wrote {path} — load it at https://ui.perfetto.dev");
    }
    Ok(())
}
