//! # ace-table — shared tabling space for non-determinate predicates
//!
//! The tabling counterpart to `ace-memo`: where the memo table publishes
//! complete answer sets of *determinate* calls, this table space backs
//! SLG-style evaluation of declared tabled predicates whose answer sets
//! are produced incrementally by a generator/consumer fixpoint. The
//! machine evaluates each tabled strongly-connected component locally
//! (suspension, resumption and leader-based completion live in
//! `ace-machine`); this crate holds the *shared* state those machines
//! coordinate through:
//!
//! * **Subgoal registration**: the first machine to call a tabled
//!   variant registers it as [`RegisterOutcome::Fresh`] and becomes its
//!   generator. Later machines see [`RegisterOutcome::InProgress`] and
//!   evaluate the subgoal privately (a *shadow* evaluation) — there is no
//!   cross-machine suspension, so a worker death can never strand a
//!   remote consumer. Confluence makes the shadow's answer set equal to
//!   the original's; whichever completes first publishes.
//! * **Completion publication**: [`TableSpace::publish_as`] upgrades the
//!   subgoal to [`TableState::Complete`] with its full answer set in
//!   relocatable [`TermArena`] snapshots. First completer wins; later
//!   completions of the same key are dropped (equal sets, by confluence).
//!   Once complete, every later call on any machine is a pure lookup —
//!   the same `is_complete` fast path the memo table gives the
//!   or-engine's claim short-circuit.
//! * **Complete-only eviction**: tenant quotas and shard capacity mirror
//!   `ace-memo`'s fairness rules, but only [`TableState::Complete`]
//!   entries are ever victims. An in-progress subgoal is pinned: evicting
//!   it would tear the generator/shadow protocol (a machine that
//!   registered it still expects to publish), so pending entries survive
//!   any amount of churn.
//! * **Poison tolerance**: shard locks are `std::sync::Mutex` acquired
//!   with `unwrap_or_else(PoisonError::into_inner)`, consistent with the
//!   fault model — a worker death mid-registration must not take the
//!   table down. Entries only ever move Pending → Complete, so a
//!   poisoned shard is never structurally torn.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ace_logic::{CanonKey, TermArena};

/// Tabling knobs, threaded through `EngineConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableConfig {
    /// Master switch. Off by default: no table space is allocated and
    /// every tabled-call check in the machine is a single branch.
    pub enabled: bool,
    /// Number of independent shards (lock granularity).
    pub shards: usize,
    /// Maximum entries per shard; LRU eviction beyond — but only
    /// completed tables are eviction victims, so the live set of
    /// in-progress subgoals can exceed this bound.
    pub capacity_per_shard: usize,
    /// Per-tenant cap on *completed* tables per shard, mirroring the
    /// memo table's fairness knob: a tenant at its cap recycles its own
    /// least-recently-used completed tables, and capacity pressure
    /// prefers the inserting tenant's completed tables as victims.
    /// In-progress tables never count and are never evicted.
    pub tenant_quota: Option<usize>,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            enabled: false,
            shards: 16,
            capacity_per_shard: 256,
            tenant_quota: None,
        }
    }
}

impl TableConfig {
    /// A config with tabling switched on (default sizing).
    pub fn enabled() -> Self {
        TableConfig {
            enabled: true,
            ..TableConfig::default()
        }
    }

    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    pub fn with_capacity_per_shard(mut self, capacity: usize) -> Self {
        self.capacity_per_shard = capacity.max(1);
        self
    }

    pub fn with_tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = Some(quota.max(1));
        self
    }
}

/// One completed tabled subgoal: the full answer set, immutable.
#[derive(Debug)]
pub struct TableEntry {
    /// Globally monotone completion epoch (trace correlation).
    pub epoch: u64,
    /// Hash of the subgoal key (trace correlation).
    pub key_hash: u64,
    /// Globally monotone subgoal id, assigned at registration (trace
    /// correlation: `table-*` events carry it).
    pub subgoal_id: u64,
    /// The answers: each arena holds one fully-instantiated copy of the
    /// tabled call term, replayed by thawing and unifying with the live
    /// call. Duplicate-free by the generator's insertion-time dedup.
    pub answers: Vec<TermArena>,
}

/// Lifecycle of a subgoal in the shared space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableState {
    /// Registered by a generator, fixpoint not yet reached. Pinned:
    /// never an eviction victim.
    Pending,
    /// Answer set complete and published; later calls are pure lookups.
    Complete,
}

/// Outcome of [`TableSpace::register`].
#[derive(Debug, Clone)]
pub enum RegisterOutcome {
    /// First registration anywhere: the caller is the subgoal's
    /// generator and owes the space a completion.
    Fresh { subgoal_id: u64 },
    /// Another machine registered this subgoal and has not completed it:
    /// the caller evaluates it privately (shadow evaluation) and races
    /// to publish.
    InProgress { subgoal_id: u64 },
    /// Already complete: drain the answers, no evaluation at all.
    Complete(Arc<TableEntry>),
}

/// Outcome of [`TableSpace::publish_as`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TablePublish {
    /// The answer set was installed under a fresh epoch; `evicted`
    /// completed tables were dropped to make room.
    Stored { epoch: u64, evicted: u64 },
    /// A racing completion got there first (equal answer sets by
    /// confluence); the new answers were dropped.
    AlreadyComplete { epoch: u64 },
}

enum SlotState {
    Pending { subgoal_id: u64 },
    Complete(Arc<TableEntry>),
}

struct SlotEnt {
    state: SlotState,
    last_used: u64,
    /// Tenant whose run completed (or registered) the subgoal; quota
    /// accounting only — lookups stay cross-tenant.
    tenant: u32,
}

impl SlotEnt {
    fn is_complete(&self) -> bool {
        matches!(self.state, SlotState::Complete(_))
    }
}

struct Shard {
    entries: HashMap<Vec<u8>, SlotEnt>,
    /// Per-shard LRU clock (bumped on every touch).
    clock: u64,
}

/// Aggregate space-lifetime counters (session-wide, across runs — the
/// per-run engine `Stats` carry their own table counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCounters {
    /// Lookups that found a completed table.
    pub hits: u64,
    /// Registrations of subgoals new to the space.
    pub registered: u64,
    /// Completions installed (first completer per subgoal).
    pub completions: u64,
    /// Completed tables evicted by quota or capacity pressure.
    pub evictions: u64,
}

/// The shared, sharded tabling space. Cheaply shareable via `Arc`;
/// engines attach one handle per machine.
pub struct TableSpace {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    tenant_quota: Option<usize>,
    /// Completion epochs (trace correlation).
    epoch: AtomicU64,
    /// Subgoal ids (trace correlation; also handed to shadow
    /// registrations so all machines name the subgoal consistently).
    next_subgoal: AtomicU64,
    hits: AtomicU64,
    registered: AtomicU64,
    completions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for TableSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableSpace")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("len", &self.len())
            .field("counters", &self.counters())
            .finish()
    }
}

impl TableSpace {
    pub fn new(cfg: &TableConfig) -> TableSpace {
        let shards = cfg.shards.max(1);
        TableSpace {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            capacity_per_shard: cfg.capacity_per_shard.max(1),
            tenant_quota: cfg.tenant_quota.map(|q| q.max(1)),
            epoch: AtomicU64::new(0),
            next_subgoal: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            registered: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Poison-tolerant shard lock: entries only move Pending → Complete
    /// and LRU metadata is self-healing, so a panic elsewhere never
    /// leaves a shard in a state worth refusing.
    fn shard_for(&self, key: &CanonKey) -> MutexGuard<'_, Shard> {
        let idx = (key.hash as usize) % self.shards.len();
        self.shards[idx]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Register a tabled subgoal as `tenant`. The first caller anywhere
    /// becomes the generator ([`RegisterOutcome::Fresh`]); callers that
    /// arrive while it is pending shadow-evaluate
    /// ([`RegisterOutcome::InProgress`], same subgoal id); callers after
    /// completion get the finished entry.
    pub fn register(&self, tenant: u32, key: &CanonKey) -> RegisterOutcome {
        let mut shard = self.shard_for(key);
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(slot) = shard.entries.get_mut(&key.bytes) {
            slot.last_used = clock;
            return match &slot.state {
                SlotState::Pending { subgoal_id } => RegisterOutcome::InProgress {
                    subgoal_id: *subgoal_id,
                },
                SlotState::Complete(entry) => {
                    let entry = entry.clone();
                    drop(shard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    RegisterOutcome::Complete(entry)
                }
            };
        }
        let subgoal_id = self.next_subgoal.fetch_add(1, Ordering::Relaxed) + 1;
        shard.entries.insert(
            key.bytes.clone(),
            SlotEnt {
                state: SlotState::Pending { subgoal_id },
                last_used: clock,
                tenant,
            },
        );
        drop(shard);
        self.registered.fetch_add(1, Ordering::Relaxed);
        RegisterOutcome::Fresh { subgoal_id }
    }

    /// Is the subgoal's table already complete? (Claim short-circuit:
    /// no LRU bump, no counter noise.)
    pub fn is_complete(&self, key: &CanonKey) -> bool {
        let shard = self.shard_for(key);
        shard
            .entries
            .get(&key.bytes)
            .is_some_and(|s| s.is_complete())
    }

    /// The completed answer set for `key`, if any, bumping its LRU slot.
    pub fn lookup_complete(&self, key: &CanonKey) -> Option<Arc<TableEntry>> {
        let mut shard = self.shard_for(key);
        shard.clock += 1;
        let clock = shard.clock;
        let slot = shard.entries.get_mut(&key.bytes)?;
        slot.last_used = clock;
        match &slot.state {
            SlotState::Complete(entry) => {
                let entry = entry.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            SlotState::Pending { .. } => None,
        }
    }

    /// Publish the complete, duplicate-free answer set of `key`,
    /// charging the completed table to `tenant`. Upgrades the pending
    /// slot regardless of which machine registered it — under faults the
    /// registering generator may be dead, and any shadow that reached the
    /// fixpoint may complete on its behalf. First completer wins; racing
    /// completions (equal sets by confluence) are dropped.
    pub fn publish_as(&self, tenant: u32, key: &CanonKey, answers: Vec<TermArena>) -> TablePublish {
        let mut shard = self.shard_for(key);
        if let Some(slot) = shard.entries.get(&key.bytes) {
            if let SlotState::Complete(entry) = &slot.state {
                return TablePublish::AlreadyComplete { epoch: entry.epoch };
            }
        }
        let mut evicted = 0u64;
        // Quota: self-evict completed tables down to one-below-cap.
        if let Some(quota) = self.tenant_quota {
            while shard
                .entries
                .values()
                .filter(|s| s.tenant == tenant && s.is_complete())
                .count()
                >= quota
            {
                match evict_lru_complete(&mut shard, Some(tenant)) {
                    true => evicted += 1,
                    false => break,
                }
            }
        }
        // Capacity: completed tables of the inserting tenant are the
        // preferred victims; global completed LRU only as a last resort.
        // Pending slots are pinned, so the shard may transiently exceed
        // capacity when the live in-progress set is large. Upgrading a
        // pending slot in place does not grow the shard, so it only
        // triggers eviction when the shard is already over capacity.
        let net_growth = usize::from(!shard.entries.contains_key(&key.bytes));
        while shard.entries.len() + net_growth > self.capacity_per_shard {
            if !evict_lru_complete(&mut shard, Some(tenant))
                && !evict_lru_complete(&mut shard, None)
            {
                break;
            }
            evicted += 1;
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        shard.clock += 1;
        let clock = shard.clock;
        // Keep the registration-time subgoal id when upgrading a pending
        // slot; a publish with no prior registration (possible after the
        // pending slot's shard was poisoned and healed) mints a fresh id.
        let subgoal_id = match shard.entries.get(&key.bytes) {
            Some(SlotEnt {
                state: SlotState::Pending { subgoal_id },
                ..
            }) => *subgoal_id,
            _ => self.next_subgoal.fetch_add(1, Ordering::Relaxed) + 1,
        };
        shard.entries.insert(
            key.bytes.clone(),
            SlotEnt {
                state: SlotState::Complete(Arc::new(TableEntry {
                    epoch,
                    key_hash: key.hash,
                    subgoal_id,
                    answers,
                })),
                last_used: clock,
                tenant,
            },
        );
        drop(shard);
        self.completions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        TablePublish::Stored { epoch, evicted }
    }

    /// Completed tables held by `tenant` across all shards.
    pub fn tenant_len(&self, tenant: u32) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .entries
                    .values()
                    .filter(|e| e.tenant == tenant && e.is_complete())
                    .count()
            })
            .sum()
    }

    /// Total entries (pending + complete) across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
            .sum()
    }

    /// Completed tables across all shards.
    pub fn complete_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .entries
                    .values()
                    .filter(|e| e.is_complete())
                    .count()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of independent shards (lock granularity). Fresh per-run
    /// spaces are sized to the fleet by
    /// `EngineConfig::resolve_table_space`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Space-lifetime counters (REPL `:table-stats`, diagnostics).
    pub fn counters(&self) -> TableCounters {
        TableCounters {
            hits: self.hits.load(Ordering::Relaxed),
            registered: self.registered.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Remove the least-recently-used **completed** entry in `shard`,
/// restricted to `tenant`'s entries when given. Pending entries are
/// pinned — a generator or suspended consumer still depends on them —
/// so they are never candidates. Returns whether a victim was found.
fn evict_lru_complete(shard: &mut Shard, tenant: Option<u32>) -> bool {
    let victim = shard
        .entries
        .iter()
        .filter(|(_, s)| s.is_complete() && tenant.is_none_or(|t| s.tenant == t))
        .min_by_key(|(_, s)| s.last_used)
        .map(|(k, _)| k.clone());
    match victim {
        Some(k) => {
            shard.entries.remove(&k);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_logic::{parse_term, CanonKey, Heap};

    fn key(src: &str) -> (Heap, CanonKey, ace_logic::Cell) {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, src).unwrap();
        let k = CanonKey::of(&h, t);
        (h, k, t)
    }

    fn answers(h: &Heap, roots: &[ace_logic::Cell]) -> Vec<TermArena> {
        roots.iter().map(|&r| TermArena::freeze(h, r)).collect()
    }

    #[test]
    fn register_then_complete_round_trips() {
        let space = TableSpace::new(&TableConfig::enabled());
        let (h, k, t) = key("path(a, X)");
        let RegisterOutcome::Fresh { subgoal_id } = space.register(0, &k) else {
            panic!("first registration must be fresh");
        };
        assert_eq!(subgoal_id, 1);
        assert!(!space.is_complete(&k));
        assert!(space.lookup_complete(&k).is_none());
        // a variant registration while pending shadows, same id
        let (_, k2, _) = key("path(a, Y)");
        let RegisterOutcome::InProgress { subgoal_id: id2 } = space.register(0, &k2) else {
            panic!("pending registration must be in-progress");
        };
        assert_eq!(id2, subgoal_id);
        let out = space.publish_as(0, &k, answers(&h, &[t]));
        let TablePublish::Stored { epoch, evicted } = out else {
            panic!("first completion must store: {out:?}");
        };
        assert_eq!((epoch, evicted), (1, 0));
        assert!(space.is_complete(&k));
        let RegisterOutcome::Complete(entry) = space.register(0, &k2) else {
            panic!("registration after completion must be a lookup");
        };
        assert_eq!(entry.subgoal_id, subgoal_id);
        assert_eq!(entry.answers.len(), 1);
        let c = space.counters();
        assert_eq!((c.hits, c.registered, c.completions), (1, 1, 1));
    }

    #[test]
    fn racing_completions_first_writer_wins() {
        let space = TableSpace::new(&TableConfig::enabled());
        let (h, k, t) = key("sg(a, X)");
        space.register(0, &k);
        let TablePublish::Stored { epoch, .. } = space.publish_as(0, &k, answers(&h, &[t])) else {
            panic!()
        };
        // a shadow evaluation completing later is dropped
        let again = space.publish_as(1, &k, answers(&h, &[t, t]));
        assert_eq!(again, TablePublish::AlreadyComplete { epoch });
        assert_eq!(space.lookup_complete(&k).unwrap().answers.len(), 1);
        assert_eq!(space.counters().completions, 1);
    }

    #[test]
    fn publish_without_registration_is_fault_safe() {
        // a shadow may outlive a dead generator whose registration was
        // lost; completion must still install
        let space = TableSpace::new(&TableConfig::enabled());
        let (h, k, t) = key("orphan(X)");
        assert!(matches!(
            space.publish_as(0, &k, answers(&h, &[t])),
            TablePublish::Stored { .. }
        ));
        assert!(space.is_complete(&k));
    }

    #[test]
    fn incomplete_tables_are_never_eviction_victims() {
        // single shard, capacity 2: two pending registrations pin the
        // shard over capacity and completions churn past them
        let cfg = TableConfig::enabled()
            .with_shards(1)
            .with_capacity_per_shard(2);
        let space = TableSpace::new(&cfg);
        let (_, k_gen, _) = key("gen(a, X)");
        let (_, k_gen2, _) = key("gen2(a, X)");
        space.register(0, &k_gen);
        space.register(0, &k_gen2);
        for i in 0..6 {
            let (h, k, t) = key(&format!("done({i}, X)"));
            space.register(0, &k);
            space.publish_as(0, &k, answers(&h, &[t]));
        }
        // both pending slots survived arbitrary completion churn
        assert!(matches!(
            space.register(0, &k_gen),
            RegisterOutcome::InProgress { .. }
        ));
        assert!(matches!(
            space.register(0, &k_gen2),
            RegisterOutcome::InProgress { .. }
        ));
        assert!(space.counters().evictions > 0, "completed tables churned");
        // pending slots never complete-count
        assert_eq!(space.tenant_len(0), space.complete_len());
    }

    #[test]
    fn tenant_quota_self_evicts_only_completed_tables() {
        let cfg = TableConfig::enabled()
            .with_shards(1)
            .with_capacity_per_shard(64)
            .with_tenant_quota(2);
        let space = TableSpace::new(&cfg);
        // tenant 1 keeps one subgoal in progress the whole time
        let (_, k_pin, _) = key("pinned(X)");
        space.register(1, &k_pin);
        for i in 0..5 {
            let (h, k, t) = key(&format!("t1({i}, X)"));
            space.register(1, &k);
            space.publish_as(1, &k, answers(&h, &[t]));
        }
        // the flooding tenant holds at most its quota of completed tables
        assert_eq!(space.tenant_len(1), 2);
        assert_eq!(space.counters().evictions, 3);
        // ... and the pinned in-progress subgoal was untouched
        assert!(matches!(
            space.register(1, &k_pin),
            RegisterOutcome::InProgress { .. }
        ));
        let (_, k4, _) = key("t1(4, X)");
        let (_, k0, _) = key("t1(0, X)");
        assert!(space.lookup_complete(&k4).is_some());
        assert!(space.lookup_complete(&k0).is_none());
    }

    #[test]
    fn tenant_flood_cannot_evict_another_tenants_completed_tables() {
        let cfg = TableConfig::enabled()
            .with_shards(1)
            .with_capacity_per_shard(4)
            .with_tenant_quota(2);
        let space = TableSpace::new(&cfg);
        let (h_a, k_a, t_a) = key("warm(a, X)");
        let (h_b, k_b, t_b) = key("warm(b, X)");
        space.register(1, &k_a);
        space.publish_as(1, &k_a, answers(&h_a, &[t_a]));
        space.register(1, &k_b);
        space.publish_as(1, &k_b, answers(&h_b, &[t_b]));
        for i in 0..16 {
            let (h, k, t) = key(&format!("flood({i}, X)"));
            space.register(2, &k);
            space.publish_as(2, &k, answers(&h, &[t]));
        }
        assert!(
            space.lookup_complete(&k_a).is_some(),
            "warm table a evicted"
        );
        assert!(
            space.lookup_complete(&k_b).is_some(),
            "warm table b evicted"
        );
        assert_eq!(space.tenant_len(1), 2);
        assert_eq!(space.tenant_len(2), 2);
        // completed tables stay shared across tenants
        let (_, k_var, _) = key("warm(a, Y)");
        assert!(space.is_complete(&k_var));
    }

    #[test]
    fn subgoal_ids_are_globally_monotone() {
        let space = TableSpace::new(&TableConfig::enabled().with_shards(4));
        let mut ids = Vec::new();
        for i in 0..16 {
            let (_, k, _) = key(&format!("m({i}, X)"));
            let RegisterOutcome::Fresh { subgoal_id } = space.register(0, &k) else {
                panic!()
            };
            ids.push(subgoal_id);
        }
        for w in ids.windows(2) {
            assert!(w[1] > w[0], "ids must be strictly increasing: {ids:?}");
        }
    }

    #[test]
    fn space_survives_a_poisoned_shard_lock() {
        let cfg = TableConfig::enabled().with_shards(1);
        let space = Arc::new(TableSpace::new(&cfg));
        let (h, k, t) = key("pois(1, X)");
        space.register(0, &k);
        space.publish_as(0, &k, answers(&h, &[t]));
        let s2 = space.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s2.shards[0].lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(
            space.lookup_complete(&k).is_some(),
            "poisoned lock must be tolerated"
        );
        let (_, k2, _) = key("pois(2, X)");
        assert!(matches!(
            space.register(0, &k2),
            RegisterOutcome::Fresh { .. }
        ));
    }

    #[test]
    fn concurrent_racing_registrations_name_one_generator() {
        let space = Arc::new(TableSpace::new(&TableConfig::enabled()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = space.clone();
            handles.push(std::thread::spawn(move || {
                let mut h = Heap::new();
                let (c, _) = parse_term(&mut h, "race(X)").unwrap();
                let k = CanonKey::of(&h, c);
                s.register(0, &k)
            }));
        }
        let outcomes: Vec<RegisterOutcome> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let fresh = outcomes
            .iter()
            .filter(|o| matches!(o, RegisterOutcome::Fresh { .. }))
            .count();
        assert_eq!(fresh, 1, "exactly one racer generates: {outcomes:?}");
        assert_eq!(space.len(), 1);
    }
}
