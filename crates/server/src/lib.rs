//! # ace-server — a multi-tenant query server over one worker fleet
//!
//! The engines answer one query at a time; real deployments multiplex many.
//! [`QueryServer`] owns a small fleet of serving threads and turns every
//! submitted query into a [`Session`](SessionHandle) with a priority class,
//! a tenant id, an optional wall-clock deadline and a cancellation token
//! wired into the engines' existing cancel checkpoints.
//!
//! The serving contract:
//!
//! - **Admission control.** At most [`ServerConfig::max_in_flight`] sessions
//!   are admitted (queued + running). [`QueryServer::submit`] rejects past
//!   the high-water mark with [`AceError::Overloaded`];
//!   [`QueryServer::submit_blocking`] applies backpressure instead, blocking
//!   the producer until space frees up.
//! - **Streaming.** Answers are delivered over the session's channel while
//!   the or-tree is still being explored (the engines' [`AnswerSink`] hook).
//!   `max_answers` gives `take(n)` semantics: the sink's `Stop` verdict
//!   propagates into the engines as cooperative early termination.
//! - **Deadlines.** A watchdog thread cancels sessions (queued or running)
//!   whose wall deadline passes; the fleet thread is reclaimed at the next
//!   engine cancel checkpoint.
//! - **Isolation.** Each session runs under supervised `catch_unwind`: a panicking
//!   query degrades to a sequential replay (already-streamed answers are
//!   deduplicated so the client never sees an answer twice) and the fleet
//!   survives. Every session ends in exactly one [`SessionEnd`] state.
//! - **Observability.** With tracing enabled the server emits session
//!   lifecycle events (admit / reject / cancel / first-answer / drain) with
//!   a server-global causal sequence number, so the runtime
//!   [`TraceChecker`](ace_runtime::trace::TraceChecker) can prove that no
//!   answer was streamed after its session's cancel event.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ace_core::error::OVERLOAD_ERROR_PREFIX;
use ace_core::{Ace, AceError, Mode, RunReport};
use ace_runtime::fault::INJECTED_DEATH;
use ace_runtime::trace::{TraceConfig, TraceSink};
use ace_runtime::{
    supervised, AnswerSink, CancelToken, EngineConfig, EventKind, FaultAction, FaultInjector,
    FaultPlan, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, SinkVerdict, Trace,
};

// ---------------------------------------------------------------------------
// Public request / outcome types
// ---------------------------------------------------------------------------

/// Scheduling class of a session. Higher priorities are always dispatched
/// before lower ones; within a class dispatch is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    High,
    Normal,
    Low,
}

impl Priority {
    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// One query submission.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Which engine executes the query.
    pub mode: Mode,
    /// The query text.
    pub query: String,
    /// Base engine configuration. The server overlays the session's
    /// cancellation token, tenant id and streaming sink on top of it.
    pub cfg: EngineConfig,
    /// Tenant id: scopes memo-table insertions under per-tenant quotas.
    pub tenant: u32,
    /// Scheduling class.
    pub priority: Priority,
    /// Wall-clock deadline measured from admission. `None` falls back to
    /// [`ServerConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Stop after this many streamed answers (`take(n)`). `None` runs the
    /// query to exhaustion (or its `max_solutions` bound).
    pub max_answers: Option<usize>,
}

impl QueryRequest {
    /// A normal-priority request with no deadline override.
    pub fn new(mode: Mode, query: impl Into<String>, cfg: EngineConfig) -> QueryRequest {
        QueryRequest {
            mode,
            query: query.into(),
            cfg,
            tenant: 0,
            priority: Priority::Normal,
            deadline: None,
            max_answers: None,
        }
    }

    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn take(mut self, n: usize) -> Self {
        self.max_answers = Some(n);
        self
    }
}

/// How a session ended. Every admitted session ends in exactly one of
/// these states; rejected submissions never become sessions (they fail
/// synchronously with [`AceError::Overloaded`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEnd {
    /// The query ran to completion (or to its `take(n)` bound).
    Completed,
    /// The wall-clock deadline passed; the watchdog cancelled the session.
    DeadlineCancelled,
    /// The client cancelled via [`SessionHandle::cancel`].
    ClientCancelled,
    /// The parallel run was killed by an infrastructure failure (worker
    /// death, injected fault, panic in the dispatch window) and the query
    /// was replayed on the sequential engine. Already-streamed answers
    /// were deduplicated; the recovery is recorded on the report.
    Degraded,
    /// The query itself failed (parse or program error), or the degraded
    /// replay failed too.
    Failed(AceError),
}

impl SessionEnd {
    fn name(&self) -> &'static str {
        match self {
            SessionEnd::Completed => "completed",
            SessionEnd::DeadlineCancelled => "deadline-cancelled",
            SessionEnd::ClientCancelled => "client-cancelled",
            SessionEnd::Degraded => "degraded",
            SessionEnd::Failed(_) => "failed",
        }
    }
}

/// Final state of a finished session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    pub end: SessionEnd,
    /// The run report, when an engine run (or degraded replay) finished.
    /// Cancelled and failed sessions may have none.
    pub report: Option<RunReport>,
}

// ---------------------------------------------------------------------------
// Server configuration and stats
// ---------------------------------------------------------------------------

/// Server-level configuration (engine-level knobs ride on each request's
/// [`EngineConfig`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Serving threads: how many sessions run concurrently.
    pub fleet: usize,
    /// Admission high-water mark: maximum admitted (queued + running)
    /// sessions. `submit` rejects past it; `submit_blocking` blocks.
    pub max_in_flight: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Faults injected at serving-layer checkpoints (admission, the
    /// dispatch window, per-answer delivery). Engine-level faults belong
    /// on the request's `EngineConfig`.
    pub fault_plan: Option<FaultPlan>,
    /// Session lifecycle tracing (admit / cancel / stream / drain events).
    pub trace: TraceConfig,
    /// Live metrics registry. When set, the server publishes admission,
    /// latency and queue-depth families into it and overlays it on every
    /// session's engine config (engine/memo families accumulate there
    /// too). `None` (the default) disables scraping at one branch per
    /// site — the same contract as [`EngineConfig::with_metrics`].
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            fleet: 2,
            max_in_flight: 32,
            default_deadline: None,
            fault_plan: None,
            trace: TraceConfig::default(),
            metrics: None,
        }
    }
}

impl ServerConfig {
    pub fn with_fleet(mut self, fleet: usize) -> Self {
        self.fleet = fleet.max(1);
        self
    }

    pub fn with_max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    pub fn with_default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = Some(d);
        self
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }
}

/// Monotonic serving counters (snapshot via [`QueryServer::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub deadline_cancelled: u64,
    pub client_cancelled: u64,
    pub degraded: u64,
    pub failed: u64,
    pub answers_streamed: u64,
}

#[derive(Default)]
struct AtomicStats {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    deadline_cancelled: AtomicU64,
    client_cancelled: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    answers_streamed: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            deadline_cancelled: self.deadline_cancelled.load(Ordering::Relaxed),
            client_cancelled: self.client_cancelled.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            answers_streamed: self.answers_streamed.load(Ordering::Relaxed),
        }
    }
}

/// Pre-resolved serving-layer metric handles. Gauges and latency
/// histograms are labeled by priority only (three handles each, resolved
/// once); the per-tenant admission counters carry a dynamic tenant label
/// and are resolved through the registry at each admission/rejection —
/// those paths already hold the queue lock, so the registry lookup is
/// never on an answer-streaming hot path.
struct ServerLive {
    registry: Arc<MetricsRegistry>,
    queue_depth: [Gauge; 3],
    in_flight: Gauge,
    first_answer_us: [Histogram; 3],
    completion_us: [Histogram; 3],
}

const PRIORITY_NAMES: [&str; 3] = ["high", "normal", "low"];

impl ServerLive {
    fn new(registry: Arc<MetricsRegistry>) -> ServerLive {
        registry.describe(
            "ace_server_sessions_admitted_total",
            "sessions admitted, by tenant and priority",
        );
        registry.describe(
            "ace_server_sessions_rejected_total",
            "submissions rejected by admission control, by tenant and priority",
        );
        registry.describe(
            "ace_server_deadline_misses_total",
            "sessions cancelled by the deadline watchdog, by tenant and priority",
        );
        registry.describe(
            "ace_server_queue_depth",
            "admitted sessions waiting for a fleet thread, by priority",
        );
        registry.describe(
            "ace_server_in_flight",
            "admitted sessions queued or running",
        );
        registry.describe(
            "ace_server_first_answer_latency_us",
            "microseconds from submission to first streamed answer, by priority",
        );
        registry.describe(
            "ace_server_completion_latency_us",
            "microseconds from submission to session end, by priority",
        );
        let queue_depth =
            PRIORITY_NAMES.map(|p| registry.gauge("ace_server_queue_depth", &[("priority", p)]));
        let first_answer_us = PRIORITY_NAMES
            .map(|p| registry.histogram("ace_server_first_answer_latency_us", &[("priority", p)]));
        let completion_us = PRIORITY_NAMES
            .map(|p| registry.histogram("ace_server_completion_latency_us", &[("priority", p)]));
        let in_flight = registry.gauge("ace_server_in_flight", &[]);
        ServerLive {
            registry,
            queue_depth,
            in_flight,
            first_answer_us,
            completion_us,
        }
    }

    fn admitted(&self, tenant: u32, priority: Priority) {
        self.registry
            .counter(
                "ace_server_sessions_admitted_total",
                &[
                    ("tenant", &tenant.to_string()),
                    ("priority", priority.name()),
                ],
            )
            .inc(0);
    }

    fn rejected(&self, tenant: u32, priority: Priority) {
        self.registry
            .counter(
                "ace_server_sessions_rejected_total",
                &[
                    ("tenant", &tenant.to_string()),
                    ("priority", priority.name()),
                ],
            )
            .inc(0);
    }

    fn deadline_miss(&self, tenant: u32, priority: Priority) {
        self.registry
            .counter(
                "ace_server_deadline_misses_total",
                &[
                    ("tenant", &tenant.to_string()),
                    ("priority", priority.name()),
                ],
            )
            .inc(0);
    }
}

// ---------------------------------------------------------------------------
// Session plumbing
// ---------------------------------------------------------------------------

/// Shared per-session control block. The `gate` mutex makes the pair
/// "check the cancel flag, then emit the answer event" atomic against the
/// pair "emit the cancel event, then set the cancel flag", which is what
/// lets the trace checker prove no answer was streamed after a cancel.
struct SessionCtl {
    id: u64,
    cancel: CancelToken,
    gate: Mutex<()>,
    finished: AtomicBool,
    deadline_fired: AtomicBool,
    client_cancelled: AtomicBool,
    /// Set by whichever cancel path emits the session's cancel trace
    /// event first, so repeated cancels (client + shutdown) stay
    /// single-event in the trace.
    cancel_emitted: AtomicBool,
}

struct SessionDone {
    outcome: SessionOutcome,
}

struct DoneCell {
    state: Mutex<Option<SessionDone>>,
    cv: Condvar,
}

struct Session {
    ctl: Arc<SessionCtl>,
    req: QueryRequest,
    tx: Sender<String>,
    done: Arc<DoneCell>,
    streamed: Arc<AtomicU64>,
    /// Stamped at the top of `submit`/`submit_blocking` — *before* any
    /// backpressure wait — so latency histograms measure what the client
    /// experienced, matching a client-side clock started at submission.
    born: Instant,
}

/// Client handle to one admitted session: a live answer stream plus
/// cancellation and completion.
pub struct SessionHandle {
    ctl: Arc<SessionCtl>,
    inner: Arc<Inner>,
    answers: Receiver<String>,
    done: Arc<DoneCell>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.ctl.id)
            .finish_non_exhaustive()
    }
}

impl SessionHandle {
    pub fn id(&self) -> u64 {
        self.ctl.id
    }

    /// The live answer stream. The channel closes when the session ends,
    /// so iterating the receiver terminates.
    pub fn answers(&self) -> &Receiver<String> {
        &self.answers
    }

    /// Block for the next streamed answer; `None` once the session ended
    /// and the stream drained.
    pub fn next_answer(&self) -> Option<String> {
        self.answers.recv().ok()
    }

    /// Cancel the session. Idempotent; a session that already finished is
    /// unaffected.
    pub fn cancel(&self) {
        self.inner.cancel_session(&self.ctl);
    }

    /// Block until the session ends.
    pub fn wait(&self) -> SessionOutcome {
        let mut st = self.done.state.lock().unwrap();
        loop {
            if let Some(done) = st.as_ref() {
                return done.outcome.clone();
            }
            st = self.done.cv.wait(st).unwrap();
        }
    }

    /// Convenience: wait for the end of the session and collect every
    /// streamed answer.
    pub fn drain(&self) -> (Vec<String>, SessionOutcome) {
        let outcome = self.wait();
        let mut answers = Vec::new();
        while let Ok(a) = self.answers.try_recv() {
            answers.push(a);
        }
        (answers, outcome)
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

struct QueueState {
    queues: [std::collections::VecDeque<Session>; 3],
    in_flight: usize,
    shutdown: bool,
}

struct WatchEntry {
    at: Instant,
    ctl: Arc<SessionCtl>,
    inner_weak: std::sync::Weak<Inner>,
}

struct Watchdog {
    entries: Mutex<Vec<WatchEntry>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

struct Inner {
    ace: Ace,
    cfg: ServerConfig,
    queue: Mutex<QueueState>,
    work_cv: Condvar,
    space_cv: Condvar,
    injector: Option<FaultInjector>,
    sink_events: Option<TraceSink>,
    seq: AtomicU64,
    next_id: AtomicU64,
    stats: AtomicStats,
    /// Every admitted, not-yet-finished session, so shutdown can cancel
    /// in-flight work instead of waiting forever on an infinite
    /// enumeration. Pruned of finished entries on each admission.
    live: Mutex<Vec<std::sync::Weak<SessionCtl>>>,
    /// Serving-layer metric handles (`None` unless `cfg.metrics` is set).
    metrics: Option<ServerLive>,
}

impl Inner {
    /// Emit a session lifecycle event stamped with the next value of the
    /// server-global sequence counter (causal order across sessions).
    fn emit(&self, kind: EventKind) {
        if let Some(sink) = &self.sink_events {
            let t = self.seq.fetch_add(1, Ordering::Relaxed);
            sink.emit(t, 0, kind);
        }
    }

    /// Cancel one session: flag it, emit its cancel event once (under the
    /// gate, so the no-answer-after-cancel trace invariant holds), and
    /// fire the token every engine root is parented under.
    fn cancel_session(&self, ctl: &SessionCtl) {
        ctl.client_cancelled.store(true, Ordering::Release);
        let _gate = ctl.gate.lock().unwrap();
        if !ctl.finished.load(Ordering::Acquire) && !ctl.cancel_emitted.swap(true, Ordering::AcqRel)
        {
            self.emit(EventKind::SessionCancel { session: ctl.id });
        }
        ctl.cancel.cancel();
    }
}

/// The multi-tenant query server. See the crate docs for the contract.
pub struct QueryServer {
    inner: Arc<Inner>,
    fleet: Vec<JoinHandle<()>>,
    watchdog: Arc<Watchdog>,
    watchdog_thread: Option<JoinHandle<()>>,
}

/// `Ace::serve(cfg)` — the facade entry point to the serving layer.
pub trait Serve {
    fn serve(&self, cfg: ServerConfig) -> QueryServer;
}

impl Serve for Ace {
    fn serve(&self, cfg: ServerConfig) -> QueryServer {
        QueryServer::new(self.clone(), cfg)
    }
}

impl QueryServer {
    pub fn new(ace: Ace, cfg: ServerConfig) -> QueryServer {
        let injector = cfg
            .fault_plan
            .as_ref()
            .map(|plan| FaultInjector::new(plan, cfg.fleet.max(1)));
        let sink_events = cfg.trace.enabled.then(|| TraceSink::new(&cfg.trace));
        let inner = Arc::new(Inner {
            ace,
            cfg: cfg.clone(),
            queue: Mutex::new(QueueState {
                queues: Default::default(),
                in_flight: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            injector,
            sink_events,
            seq: AtomicU64::new(1),
            next_id: AtomicU64::new(1),
            stats: AtomicStats::default(),
            live: Mutex::new(Vec::new()),
            metrics: cfg.metrics.clone().map(ServerLive::new),
        });
        let watchdog = Arc::new(Watchdog {
            entries: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let fleet = (0..cfg.fleet.max(1))
            .map(|w| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("ace-serve-{w}"))
                    .spawn(move || fleet_loop(&inner, w))
                    .expect("spawn serving thread")
            })
            .collect();
        let watchdog_thread = {
            let wd = watchdog.clone();
            Some(
                std::thread::Builder::new()
                    .name("ace-serve-watchdog".into())
                    .spawn(move || watchdog_loop(&wd))
                    .expect("spawn watchdog thread"),
            )
        };
        QueryServer {
            inner,
            fleet,
            watchdog,
            watchdog_thread,
        }
    }

    /// Submit a query. Rejects with [`AceError::Overloaded`] when the
    /// admission high-water mark is reached (or an admission fault fires).
    pub fn submit(&self, req: QueryRequest) -> Result<SessionHandle, AceError> {
        let born = Instant::now();
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let injected_reject = self
            .inner
            .injector
            .as_ref()
            .is_some_and(|inj| inj.admit_rejects(0));
        let mut q = self.inner.queue.lock().unwrap();
        if q.shutdown {
            return self.reject(
                format!("{OVERLOAD_ERROR_PREFIX} server shutting down"),
                &req,
            );
        }
        if injected_reject {
            return self.reject(
                format!("{OVERLOAD_ERROR_PREFIX} admission brown-out (injected)"),
                &req,
            );
        }
        if q.in_flight >= self.inner.cfg.max_in_flight {
            return self.reject(
                format!(
                    "{OVERLOAD_ERROR_PREFIX} {} sessions in flight (limit {})",
                    q.in_flight, self.inner.cfg.max_in_flight
                ),
                &req,
            );
        }
        Ok(self.admit(&mut q, req, born))
    }

    /// Submit with backpressure: block until the admission controller has
    /// room instead of rejecting. Returns `Err` only during shutdown.
    pub fn submit_blocking(&self, req: QueryRequest) -> Result<SessionHandle, AceError> {
        let born = Instant::now();
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let mut q = self.inner.queue.lock().unwrap();
        while q.in_flight >= self.inner.cfg.max_in_flight && !q.shutdown {
            q = self.inner.space_cv.wait(q).unwrap();
        }
        if q.shutdown {
            return self.reject(
                format!("{OVERLOAD_ERROR_PREFIX} server shutting down"),
                &req,
            );
        }
        Ok(self.admit(&mut q, req, born))
    }

    fn reject(&self, msg: String, req: &QueryRequest) -> Result<SessionHandle, AceError> {
        self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.inner.metrics {
            m.rejected(req.tenant, req.priority);
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.emit(EventKind::SessionReject { session: id });
        Err(AceError::Overloaded(msg))
    }

    fn admit(&self, q: &mut QueueState, req: QueryRequest, born: Instant) -> SessionHandle {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let ctl = Arc::new(SessionCtl {
            id,
            cancel: CancelToken::new(),
            gate: Mutex::new(()),
            finished: AtomicBool::new(false),
            deadline_fired: AtomicBool::new(false),
            client_cancelled: AtomicBool::new(false),
            cancel_emitted: AtomicBool::new(false),
        });
        {
            let mut live = self.inner.live.lock().unwrap();
            live.retain(|w| {
                w.upgrade()
                    .is_some_and(|c| !c.finished.load(Ordering::Acquire))
            });
            live.push(Arc::downgrade(&ctl));
        }
        let (tx, rx) = channel();
        let done = Arc::new(DoneCell {
            state: Mutex::new(None),
            cv: Condvar::new(),
        });
        self.inner.stats.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.inner.metrics {
            m.admitted(req.tenant, req.priority);
            m.queue_depth[req.priority.index()].inc();
            m.in_flight.inc();
        }
        self.inner.emit(EventKind::SessionAdmit { session: id });
        if let Some(deadline) = req.deadline.or(self.inner.cfg.default_deadline) {
            let mut entries = self.watchdog.entries.lock().unwrap();
            entries.push(WatchEntry {
                at: Instant::now() + deadline,
                ctl: ctl.clone(),
                inner_weak: Arc::downgrade(&self.inner),
            });
            self.watchdog.cv.notify_one();
        }
        let session = Session {
            ctl: ctl.clone(),
            req,
            tx,
            done: done.clone(),
            streamed: Arc::new(AtomicU64::new(0)),
            born,
        };
        q.in_flight += 1;
        q.queues[session.req.priority.index()].push_back(session);
        self.inner.work_cv.notify_one();
        SessionHandle {
            ctl,
            inner: self.inner.clone(),
            answers: rx,
            done,
        }
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats.snapshot()
    }

    /// Point-in-time snapshot of the attached metrics registry (empty
    /// when [`ServerConfig::metrics`] is unset). Includes the serving
    /// families plus whatever the engines folded in.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner.metrics {
            Some(m) => m.registry.snapshot(),
            None => MetricsSnapshot::empty(),
        }
    }

    /// The current metrics snapshot in the Prometheus text exposition
    /// format (empty string when metrics are disabled).
    pub fn metrics_prometheus(&self) -> String {
        let snap = self.metrics();
        if snap.is_empty() {
            String::new()
        } else {
            snap.render_prometheus()
        }
    }

    /// Admitted sessions currently queued or running.
    pub fn in_flight(&self) -> usize {
        self.inner.queue.lock().unwrap().in_flight
    }

    /// Take the session lifecycle trace recorded so far (empty when
    /// tracing is disabled). Event timestamps are the server's causal
    /// sequence numbers, so the merged trace is checker-ready.
    pub fn take_trace(&self) -> Trace {
        let extra = self
            .inner
            .sink_events
            .as_ref()
            .map(TraceSink::drain)
            .unwrap_or_default();
        Trace::merge(Vec::new(), extra)
    }

    /// Stop the fleet and join every thread. New submissions are
    /// rejected, and every in-flight session (queued or running) is
    /// cancelled — a runaway enumeration cannot hang the shutdown. A
    /// session cancelled this way ends [`SessionEnd::ClientCancelled`]
    /// (the server's owner is its client). Drop performs the same
    /// sequence.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        for h in self.fleet.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog_thread.take() {
            let _ = h.join();
        }
        self.inner.stats.snapshot()
    }

    fn begin_shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        self.inner.space_cv.notify_all();
        self.watchdog.shutdown.store(true, Ordering::Release);
        self.watchdog.cv.notify_all();
        // Cancel every live session so the fleet joins below cannot block
        // on a session that would never finish on its own.
        let live: Vec<Arc<SessionCtl>> = {
            let reg = self.inner.live.lock().unwrap();
            reg.iter()
                .filter_map(std::sync::Weak::upgrade)
                .filter(|c| !c.finished.load(Ordering::Acquire))
                .collect()
        };
        for ctl in live {
            self.inner.cancel_session(&ctl);
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.fleet.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog_thread.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet and watchdog loops
// ---------------------------------------------------------------------------

fn fleet_loop(inner: &Arc<Inner>, worker: usize) {
    loop {
        let session = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(s) = q.queues.iter_mut().find_map(|d| d.pop_front()) {
                    if let Some(m) = &inner.metrics {
                        m.queue_depth[s.req.priority.index()].dec();
                    }
                    break s;
                }
                if q.shutdown {
                    return;
                }
                q = inner.work_cv.wait(q).unwrap();
            }
        };
        serve_session(inner, worker, session);
        let mut q = inner.queue.lock().unwrap();
        q.in_flight -= 1;
        // Gauge updated under the queue lock: an `in_flight()` observer
        // that reads 0 is guaranteed to see the matching gauge value.
        if let Some(m) = &inner.metrics {
            m.in_flight.dec();
        }
        drop(q);
        inner.space_cv.notify_one();
    }
}

fn watchdog_loop(wd: &Watchdog) {
    let mut entries = wd.entries.lock().unwrap();
    loop {
        if wd.shutdown.load(Ordering::Acquire) {
            return;
        }
        entries.retain(|e| !e.ctl.finished.load(Ordering::Acquire));
        let next = entries.iter().map(|e| e.at).min();
        let now = Instant::now();
        match next {
            Some(at) if at <= now => {
                let mut fired = Vec::new();
                entries.retain(|e| {
                    if e.at <= now {
                        fired.push((e.ctl.clone(), e.inner_weak.clone()));
                        false
                    } else {
                        true
                    }
                });
                for (ctl, inner_weak) in fired {
                    // Emit-then-cancel under the session gate: any answer
                    // event sequenced after this one must observe the flag.
                    let _gate = ctl.gate.lock().unwrap();
                    ctl.deadline_fired.store(true, Ordering::Release);
                    if !ctl.finished.load(Ordering::Acquire) {
                        if let Some(inner) = inner_weak.upgrade() {
                            inner.emit(EventKind::SessionDeadlineCancel { session: ctl.id });
                        }
                    }
                    ctl.cancel.cancel();
                }
            }
            Some(at) => {
                let (g, _) = wd.cv.wait_timeout(entries, at - now).unwrap();
                entries = g;
            }
            None => {
                entries = wd.cv.wait(entries).unwrap();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Session execution
// ---------------------------------------------------------------------------

/// The streaming sink handed to the engines, plus the multiset record the
/// degraded replay uses to skip answers the client already received.
fn session_sink(
    inner: &Arc<Inner>,
    worker: usize,
    session: &Session,
    seen: Arc<Mutex<HashMap<String, u64>>>,
    replay: bool,
) -> AnswerSink {
    let inner = inner.clone();
    let ctl = session.ctl.clone();
    let tx = session.tx.clone();
    let streamed = session.streamed.clone();
    let max_answers = session.req.max_answers;
    let born = session.born;
    let priority_idx = session.req.priority.index();
    AnswerSink::new(move |answer: &str| {
        // Per-answer fault checkpoint (serving-layer plan only; never
        // armed on replay because injector events are consumed once).
        if !replay {
            if let Some(inj) = &inner.injector {
                match inj.poll(worker) {
                    Some(FaultAction::Die) => panic!("{INJECTED_DEATH}"),
                    Some(FaultAction::Stall(cost)) => {
                        std::thread::sleep(Duration::from_micros(cost.min(1000)));
                    }
                    Some(FaultAction::Cancel) => ctl.cancel.cancel(),
                    None => {}
                }
            }
        }
        let _gate = ctl.gate.lock().unwrap();
        if ctl.cancel.is_cancelled() {
            return SinkVerdict::Stop;
        }
        if replay {
            // Skip the prefix the client already received from the failed
            // parallel attempt (multiset semantics: one skip per copy).
            let mut seen = seen.lock().unwrap();
            if let Some(n) = seen.get_mut(answer) {
                if *n > 0 {
                    *n -= 1;
                    return SinkVerdict::Continue;
                }
            }
        } else {
            *seen.lock().unwrap().entry(answer.to_string()).or_insert(0) += 1;
        }
        let n = streamed.fetch_add(1, Ordering::Relaxed) + 1;
        inner.stats.answers_streamed.fetch_add(1, Ordering::Relaxed);
        if n == 1 {
            if let Some(m) = &inner.metrics {
                m.first_answer_us[priority_idx].observe(born.elapsed().as_micros() as u64);
            }
        }
        inner.emit(if n == 1 {
            EventKind::SessionFirstAnswer { session: ctl.id }
        } else {
            EventKind::AnswerStreamed { session: ctl.id }
        });
        let _ = tx.send(answer.to_string());
        if max_answers.is_some_and(|m| n as usize >= m) {
            SinkVerdict::Stop
        } else {
            SinkVerdict::Continue
        }
    })
}

fn serve_session(inner: &Arc<Inner>, worker: usize, session: Session) {
    // Dispatch-window fault checkpoint: a Die here panics on the serving
    // thread itself (inside catch_unwind below), a Stall delays dispatch,
    // a Cancel kills the session before the engine starts.
    let mut dispatch_panic = false;
    if let Some(inj) = &inner.injector {
        match inj.poll(worker) {
            Some(FaultAction::Die) => dispatch_panic = true,
            Some(FaultAction::Stall(cost)) => {
                std::thread::sleep(Duration::from_micros(cost.min(1000)));
            }
            Some(FaultAction::Cancel) => session.ctl.cancel.cancel(),
            None => {}
        }
    }

    // A session cancelled while queued never reaches an engine.
    if session.ctl.cancel.is_cancelled() {
        let end = cancelled_end(&session.ctl);
        finish(inner, &session, end, None);
        return;
    }

    let seen = Arc::new(Mutex::new(HashMap::new()));
    let sink = session_sink(inner, worker, &session, seen.clone(), false);
    let mut run_cfg = session
        .req
        .cfg
        .clone()
        .with_memo_tenant(session.req.tenant)
        .with_cancel(session.ctl.cancel.clone())
        .with_answer_sink(sink);
    // Engine-level folds (virtual time, stats, per-tenant memo traffic)
    // land in the server's registry so one scrape covers the whole stack.
    if let Some(m) = &inner.metrics {
        run_cfg = run_cfg.with_metrics(m.registry.clone());
    }

    // `supervised` = catch_unwind without the default hook's stderr
    // backtrace: a contained session panic is supervision, not a crash.
    let attempt = supervised(|| {
        if dispatch_panic {
            panic!("{INJECTED_DEATH}");
        }
        inner
            .ace
            .run_strict(session.req.mode, &session.req.query, &run_cfg)
    });

    let (end, report) = match attempt {
        Ok(Ok(report)) => {
            if session.ctl.cancel.is_cancelled() {
                (cancelled_end(&session.ctl), Some(report))
            } else {
                (SessionEnd::Completed, Some(report))
            }
        }
        Ok(Err(err)) => {
            if session.ctl.cancel.is_cancelled() {
                (cancelled_end(&session.ctl), None)
            } else if err.is_recoverable() && session.req.mode != Mode::Sequential {
                degrade(inner, worker, &session, seen, &err.to_string())
            } else {
                (SessionEnd::Failed(err), None)
            }
        }
        Err(panic) => {
            // The fleet thread survives a panicking query. If the panic
            // raced a cancellation, the cancellation wins; otherwise the
            // session degrades to a sequential replay.
            let what = panic_text(panic.as_ref());
            if session.ctl.cancel.is_cancelled() {
                (cancelled_end(&session.ctl), None)
            } else {
                degrade(inner, worker, &session, seen, &format!("panic: {what}"))
            }
        }
    };
    finish(inner, &session, end, report);
}

/// Sequential replay of a session whose parallel attempt was killed by the
/// infrastructure. The replay streams through a deduplicating sink so the
/// client's answer stream stays a prefix of the sequential oracle.
fn degrade(
    inner: &Arc<Inner>,
    worker: usize,
    session: &Session,
    seen: Arc<Mutex<HashMap<String, u64>>>,
    cause: &str,
) -> (SessionEnd, Option<RunReport>) {
    let sink = session_sink(inner, worker, session, seen, true);
    let mut run_cfg = session
        .req
        .cfg
        .clone()
        .with_memo_tenant(session.req.tenant)
        .with_cancel(session.ctl.cancel.clone())
        .with_answer_sink(sink);
    if let Some(m) = &inner.metrics {
        run_cfg = run_cfg.with_metrics(m.registry.clone());
    }
    match inner
        .ace
        .run_strict(Mode::Sequential, &session.req.query, &run_cfg)
    {
        Ok(mut report) => {
            report.recovery.push(format!(
                "session {} degraded ({cause}); recovered via sequential replay",
                session.ctl.id
            ));
            if session.ctl.cancel.is_cancelled() {
                (cancelled_end(&session.ctl), Some(report))
            } else {
                (SessionEnd::Degraded, Some(report))
            }
        }
        Err(_) if session.ctl.cancel.is_cancelled() => (cancelled_end(&session.ctl), None),
        Err(err) => (SessionEnd::Failed(err), None),
    }
}

fn cancelled_end(ctl: &SessionCtl) -> SessionEnd {
    if ctl.client_cancelled.load(Ordering::Acquire) {
        SessionEnd::ClientCancelled
    } else if ctl.deadline_fired.load(Ordering::Acquire) {
        SessionEnd::DeadlineCancelled
    } else {
        // Cancelled by an injected fault rather than a client or the
        // watchdog: account it as a deadline-class reclamation.
        SessionEnd::DeadlineCancelled
    }
}

fn finish(inner: &Arc<Inner>, session: &Session, end: SessionEnd, report: Option<RunReport>) {
    {
        let _gate = session.ctl.gate.lock().unwrap();
        session.ctl.finished.store(true, Ordering::Release);
        inner.emit(EventKind::SessionDrain {
            session: session.ctl.id,
            outcome: end.name(),
            answers: session.streamed.load(Ordering::Relaxed),
        });
    }
    let counter = match &end {
        SessionEnd::Completed => &inner.stats.completed,
        SessionEnd::DeadlineCancelled => &inner.stats.deadline_cancelled,
        SessionEnd::ClientCancelled => &inner.stats.client_cancelled,
        SessionEnd::Degraded => &inner.stats.degraded,
        SessionEnd::Failed(_) => &inner.stats.failed,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    if let Some(m) = &inner.metrics {
        m.completion_us[session.req.priority.index()]
            .observe(session.born.elapsed().as_micros() as u64);
        if end == SessionEnd::DeadlineCancelled {
            m.deadline_miss(session.req.tenant, session.req.priority);
        }
    }
    let mut st = session.done.state.lock().unwrap();
    *st = Some(SessionDone {
        outcome: SessionOutcome { end, report },
    });
    session.done.cv.notify_all();
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use ace_runtime::fault::FaultKind;
    use ace_runtime::trace::TraceChecker;
    use ace_runtime::OptFlags;

    const PROG: &str = r#"
        double(X, Y) :- Y is X * 2.
        p(1). p(2). p(3).
        pl([], []).
        pl([H|T], [H2|T2]) :- double(H, H2) & pl(T, T2).
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        d(0). d(1). d(2). d(3). d(4).
        stream(X) :- d(X).
        stream(X) :- stream(X).
    "#;

    fn ace() -> Ace {
        Ace::load(PROG).unwrap()
    }

    fn engine_cfg() -> EngineConfig {
        EngineConfig::default()
            .with_workers(2)
            .with_opts(OptFlags::all())
            .all_solutions()
    }

    fn req(query: &str) -> QueryRequest {
        QueryRequest::new(Mode::Sequential, query, engine_cfg())
    }

    /// Wait (bounded) for every admitted session's slot to be released —
    /// the fleet thread frees it just after posting the outcome.
    fn wait_for_idle(server: &QueryServer) {
        for _ in 0..2000 {
            if server.in_flight() == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("server never went idle: {} in flight", server.in_flight());
    }

    #[test]
    fn streams_answers_and_completes() {
        let server = ace().serve(ServerConfig::default());
        let h = server.submit(req("member(X, [1,2,3])")).unwrap();
        let (answers, outcome) = h.drain();
        assert_eq!(answers, vec!["X=1", "X=2", "X=3"]);
        assert_eq!(outcome.end, SessionEnd::Completed);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.answers_streamed, 3);
    }

    #[test]
    fn take_n_terminates_an_infinite_enumeration() {
        let server = ace().serve(ServerConfig::default());
        let h = server.submit(req("stream(X)").take(3)).unwrap();
        let (answers, outcome) = h.drain();
        assert_eq!(answers.len(), 3);
        assert_eq!(answers[0], "X=0");
        assert_eq!(outcome.end, SessionEnd::Completed);
        server.shutdown();
    }

    #[test]
    fn shutdown_cancels_runaway_sessions_instead_of_hanging() {
        // Three infinite sessions saturate a two-thread fleet (one also
        // still queued); shutdown must cancel all of them and join.
        let server = ace().serve(ServerConfig::default().with_fleet(2).with_max_in_flight(8));
        let handles: Vec<_> = (0..3)
            .map(|_| server.submit(req("stream(X)")).unwrap())
            .collect();
        // Prove the running sessions are genuinely mid-stream.
        handles[0].next_answer().expect("live stream");
        handles[1].next_answer().expect("live stream");
        let stats = server.shutdown();
        for h in &handles {
            let (_, outcome) = h.drain();
            assert_eq!(outcome.end, SessionEnd::ClientCancelled);
        }
        assert_eq!(stats.client_cancelled, 3);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn drop_cancels_runaway_sessions_instead_of_hanging() {
        let server = ace().serve(ServerConfig::default().with_fleet(1));
        let h = server.submit(req("stream(X)")).unwrap();
        h.next_answer().expect("live stream");
        drop(server);
        let (_, outcome) = h.drain();
        assert_eq!(outcome.end, SessionEnd::ClientCancelled);
    }

    #[test]
    fn deadline_cancels_a_runaway_session() {
        let server = ace().serve(ServerConfig::default());
        let h = server
            .submit(req("stream(X)").with_deadline(Duration::from_millis(30)))
            .unwrap();
        let outcome = h.wait();
        assert_eq!(outcome.end, SessionEnd::DeadlineCancelled);
        let stats = server.shutdown();
        assert_eq!(stats.deadline_cancelled, 1);
    }

    #[test]
    fn client_cancel_mid_stream() {
        let server = ace().serve(ServerConfig::default());
        let h = server.submit(req("stream(X)")).unwrap();
        // Wait for proof the stream is live, then cancel.
        let first = h.next_answer().expect("one streamed answer");
        assert_eq!(first, "X=0");
        h.cancel();
        let outcome = h.wait();
        assert_eq!(outcome.end, SessionEnd::ClientCancelled);
        server.shutdown();
    }

    #[test]
    fn admission_rejects_past_high_water_then_recovers() {
        let server = ace().serve(ServerConfig::default().with_fleet(1).with_max_in_flight(1));
        let h = server.submit(req("stream(X)")).unwrap();
        let err = server
            .submit(req("member(X, [1])"))
            .expect_err("second session must be rejected at admission");
        assert!(matches!(err, AceError::Overloaded(_)), "{err:?}");
        h.cancel();
        h.wait();
        // Space freed: the next submission is admitted again. (The slot is
        // released by the fleet thread just after the outcome is posted.)
        wait_for_idle(&server);
        let h2 = server.submit(req("member(X, [1])")).unwrap();
        assert_eq!(h2.wait().end, SessionEnd::Completed);
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.admitted, 2);
    }

    #[test]
    fn submit_blocking_applies_backpressure() {
        let server =
            Arc::new(ace().serve(ServerConfig::default().with_fleet(1).with_max_in_flight(1)));
        let h = server.submit(req("stream(X)").take(5_000)).unwrap();
        let s2 = server.clone();
        let blocked = std::thread::spawn(move || {
            let h2 = s2.submit_blocking(req("member(X, [7])")).unwrap();
            h2.wait().end
        });
        // The first session eventually finishes its take(n) bound, space
        // frees up, and the blocked producer gets served.
        assert_eq!(h.wait().end, SessionEnd::Completed);
        assert_eq!(blocked.join().unwrap(), SessionEnd::Completed);
        Arc::try_unwrap(server).ok().map(QueryServer::shutdown);
    }

    #[test]
    fn injected_death_in_parallel_run_degrades_with_dedup() {
        // Engine-level Die: the and-engine's supervision contains it, the
        // server replays sequentially, and the client sees the oracle
        // exactly once.
        let a = ace();
        let oracle = a.sequential_solutions("pl([1,2,3], Out)").unwrap();
        let server = a.serve(ServerConfig::default());
        let cfg = engine_cfg().with_fault_plan(FaultPlan::new(0).with(0, 2, FaultKind::Die));
        let h = server
            .submit(QueryRequest::new(
                Mode::AndParallel,
                "pl([1,2,3], Out)",
                cfg,
            ))
            .unwrap();
        let (answers, outcome) = h.drain();
        assert_eq!(outcome.end, SessionEnd::Degraded);
        assert_eq!(answers, oracle);
        let report = outcome.report.expect("degraded replay produces a report");
        assert!(
            report
                .recovery
                .iter()
                .any(|l| l.contains("sequential replay")),
            "{:?}",
            report.recovery
        );
        server.shutdown();
    }

    #[test]
    fn dispatch_window_death_degrades_and_fleet_survives() {
        let server = ace().serve(
            ServerConfig::default()
                .with_fleet(1)
                .with_fault_plan(FaultPlan::new(0).with(0, 1, FaultKind::Die)),
        );
        let h = server
            .submit(QueryRequest::new(
                Mode::AndParallel,
                "pl([1,2], Out)",
                engine_cfg(),
            ))
            .unwrap();
        let (answers, outcome) = h.drain();
        assert_eq!(outcome.end, SessionEnd::Degraded);
        assert_eq!(answers, vec!["Out=[2,4]"]);
        // The single fleet thread survived the panic and serves again.
        let h2 = server.submit(req("member(X, [9])")).unwrap();
        assert_eq!(h2.drain().0, vec!["X=9"]);
        server.shutdown();
    }

    #[test]
    fn session_trace_passes_the_checker() {
        let server = ace().serve(
            ServerConfig::default()
                .with_max_in_flight(1)
                .with_fleet(1)
                .with_trace(TraceConfig {
                    enabled: true,
                    ..TraceConfig::default()
                }),
        );
        let h = server.submit(req("member(X, [1,2,3])")).unwrap();
        h.wait();
        // A live long-running session makes the next reject deterministic.
        wait_for_idle(&server);
        let h2 = server.submit(req("stream(X)")).unwrap();
        h2.next_answer().unwrap();
        let reject = server.submit(req("member(X, [1])"));
        assert!(reject.is_err(), "high-water reject while a session runs");
        h2.cancel();
        h2.wait();
        let trace = server.take_trace();
        let report = TraceChecker::check(&trace);
        assert!(report.is_ok(), "{report:?}");
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SessionDrain { .. })));
        server.shutdown();
    }

    #[test]
    fn tenant_quota_rides_the_session() {
        use ace_runtime::{MemoConfig, MemoTable};
        let a = Ace::load(
            r#"
            append([], L, L).
            append([H|T], L, [H|R]) :- append(T, L, R).
            nrev([], []).
            nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
            "#,
        )
        .unwrap();
        let table = Arc::new(MemoTable::new(&MemoConfig::enabled().with_tenant_quota(4)));
        let server = a.serve(ServerConfig::default());
        let cfg = engine_cfg().with_memo_table(table.clone());
        let h = server
            .submit(
                QueryRequest::new(Mode::Sequential, "nrev([1,2,3,4,5,6], R)", cfg).with_tenant(7),
            )
            .unwrap();
        assert_eq!(h.wait().end, SessionEnd::Completed);
        assert!(table.tenant_len(7) > 0, "session memoized under its tenant");
        assert_eq!(
            table.tenant_len(0),
            0,
            "nothing leaked to the default tenant"
        );
        server.shutdown();
    }

    #[test]
    fn metrics_disabled_snapshot_is_empty() {
        let server = ace().serve(ServerConfig::default());
        let h = server.submit(req("member(X, [1,2])")).unwrap();
        h.drain();
        assert!(server.metrics().is_empty());
        assert_eq!(server.metrics_prometheus(), "");
        server.shutdown();
    }

    #[test]
    fn metrics_cover_admissions_rejections_and_latency() {
        let registry = MetricsRegistry::shared();
        let server = ace().serve(
            ServerConfig::default()
                .with_max_in_flight(1)
                .with_fleet(1)
                .with_metrics(registry.clone()),
        );
        // An infinite enumeration pins the only slot, so the second
        // submission is deterministically rejected; it is then cancelled
        // to make room for a session that completes normally.
        let pinned = server.submit(req("stream(X)").with_tenant(3)).unwrap();
        let rejected = server.submit(req("member(X, [1])").with_tenant(9));
        assert!(matches!(rejected, Err(AceError::Overloaded(_))));
        pinned.cancel();
        pinned.wait();
        wait_for_idle(&server);
        let h = server
            .submit(
                QueryRequest::new(Mode::OrParallel, "member(X, [1,2,3])", engine_cfg())
                    .with_tenant(3)
                    .with_priority(Priority::High),
            )
            .unwrap();
        let (answers, outcome) = h.drain();
        assert_eq!(answers.len(), 3);
        assert_eq!(outcome.end, SessionEnd::Completed);
        wait_for_idle(&server);

        let snap = server.metrics();
        assert_eq!(
            snap.counter_value(
                "ace_server_sessions_admitted_total",
                &[("tenant", "3"), ("priority", "high")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(
                "ace_server_sessions_admitted_total",
                &[("tenant", "3"), ("priority", "normal")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(
                "ace_server_sessions_rejected_total",
                &[("tenant", "9"), ("priority", "normal")]
            ),
            Some(1)
        );
        // First-answer and completion latency recorded under the session's
        // priority; the engine fold landed in the same registry.
        let first = snap
            .histogram(
                "ace_server_first_answer_latency_us",
                &[("priority", "high")],
            )
            .expect("first-answer histogram");
        assert_eq!(first.count, 1);
        let done = snap
            .histogram("ace_server_completion_latency_us", &[("priority", "high")])
            .expect("completion histogram");
        assert_eq!(done.count, 1);
        assert!(done.quantile(0.99) >= first.quantile(0.5));
        assert_eq!(
            snap.counter_value("ace_engine_runs_total", &[("engine", "or")]),
            Some(1)
        );
        // In-flight and queue gauges net to zero once the server is idle.
        assert_eq!(snap.gauge_value("ace_server_in_flight", &[]), Some(0));
        assert_eq!(
            snap.gauge_value("ace_server_queue_depth", &[("priority", "high")]),
            Some(0)
        );
        // The Prometheus rendering carries the serving families.
        let text = server.metrics_prometheus();
        assert!(
            text.contains("ace_server_sessions_admitted_total{"),
            "{text}"
        );
        assert!(
            text.contains("ace_server_first_answer_latency_us_bucket{"),
            "{text}"
        );
        server.shutdown();
    }
}
