//! Bit-set finite domains over `0..=63`.

/// A finite domain as a 64-bit set: bit `v` set ⇔ value `v` is possible.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BitDomain(pub u64);

impl BitDomain {
    /// The domain `{lo, lo+1, …, hi}` (inclusive; both ≤ 63).
    pub fn range(lo: u32, hi: u32) -> BitDomain {
        assert!(lo <= hi && hi <= 63, "BitDomain supports values 0..=63");
        let width = hi - lo + 1;
        let mask = if width == 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << lo
        };
        BitDomain(mask)
    }

    /// The singleton `{v}`.
    pub fn singleton(v: u32) -> BitDomain {
        BitDomain(1u64 << v)
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn contains(self, v: u32) -> bool {
        v <= 63 && self.0 & (1 << v) != 0
    }

    /// Number of possible values.
    pub fn size(self) -> u32 {
        self.0.count_ones()
    }

    /// The single value, if the domain is a singleton.
    pub fn value(self) -> Option<u32> {
        if self.size() == 1 {
            Some(self.0.trailing_zeros())
        } else {
            None
        }
    }

    pub fn min(self) -> Option<u32> {
        if self.is_empty() {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }

    pub fn max(self) -> Option<u32> {
        if self.is_empty() {
            None
        } else {
            Some(63 - self.0.leading_zeros())
        }
    }

    /// Remove `v`; reports whether the domain changed.
    pub fn remove(&mut self, v: u32) -> bool {
        if self.contains(v) {
            self.0 &= !(1 << v);
            true
        } else {
            false
        }
    }

    /// Remove every value `< bound`; reports change.
    pub fn remove_below(&mut self, bound: u32) -> bool {
        let keep = if bound >= 64 { 0 } else { u64::MAX << bound };
        let new = self.0 & keep;
        let changed = new != self.0;
        self.0 = new;
        changed
    }

    /// Remove every value `> bound`; reports change.
    pub fn remove_above(&mut self, bound: u32) -> bool {
        let keep = if bound >= 63 {
            u64::MAX
        } else {
            (1u64 << (bound + 1)) - 1
        };
        let new = self.0 & keep;
        let changed = new != self.0;
        self.0 = new;
        changed
    }

    /// Iterate the values in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let v = bits.trailing_zeros();
                bits &= bits - 1;
                Some(v)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_contains() {
        let d = BitDomain::range(2, 5);
        assert_eq!(d.size(), 4);
        assert!(d.contains(2) && d.contains(5));
        assert!(!d.contains(1) && !d.contains(6));
        assert_eq!(d.min(), Some(2));
        assert_eq!(d.max(), Some(5));
    }

    #[test]
    fn full_width_range() {
        let d = BitDomain::range(0, 63);
        assert_eq!(d.size(), 64);
    }

    #[test]
    fn singleton_and_value() {
        let d = BitDomain::singleton(7);
        assert_eq!(d.value(), Some(7));
        assert_eq!(BitDomain::range(1, 2).value(), None);
    }

    #[test]
    fn removals() {
        let mut d = BitDomain::range(0, 7);
        assert!(d.remove(3));
        assert!(!d.remove(3));
        assert!(d.remove_below(2));
        assert!(d.remove_above(5));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![2, 4, 5]);
    }

    #[test]
    fn empty_behaviour() {
        let mut d = BitDomain::singleton(0);
        d.remove(0);
        assert!(d.is_empty());
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
        assert_eq!(d.value(), None);
    }

    #[test]
    fn iter_order() {
        let d = BitDomain(0b101010);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }
}
