//! Constraint propagation to fixpoint (forward checking + bounds).

use crate::domain::BitDomain;
use crate::problem::{Constraint, Problem};

/// Result of a propagation run: consistent (with prune count for cost
/// accounting) or failed (some domain emptied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Fixpoint reached; `prunes` values were removed on the way.
    Consistent {
        prunes: u32,
    },
    Failed,
}

/// Propagate all constraints of `problem` over `domains` to fixpoint,
/// seeded by changes to variable `seed` (pass `None` to propagate
/// everything, e.g. at the root).
pub fn propagate(problem: &Problem, domains: &mut [BitDomain], seed: Option<usize>) -> Outcome {
    let mut agenda: Vec<usize> = match seed {
        Some(v) => problem.watches[v].clone(),
        None => (0..problem.constraints.len()).collect(),
    };
    let mut prunes = 0u32;
    while let Some(ci) = agenda.pop() {
        let (changed_vars, ok) = apply(problem.constraints[ci], domains, &mut prunes);
        if !ok {
            return Outcome::Failed;
        }
        for v in changed_vars {
            for &w in &problem.watches[v] {
                if w != ci && !agenda.contains(&w) {
                    agenda.push(w);
                }
            }
        }
    }
    Outcome::Consistent { prunes }
}

/// Apply one constraint; returns the variables whose domains changed and
/// whether all domains remain non-empty.
fn apply(c: Constraint, domains: &mut [BitDomain], prunes: &mut u32) -> (Vec<usize>, bool) {
    let mut changed = Vec::new();
    match c {
        Constraint::Ne(a, b) => {
            ne_offset(a, b, 0, domains, prunes, &mut changed);
        }
        Constraint::NeOffset(a, b, k) => {
            ne_offset(a, b, k, domains, prunes, &mut changed);
        }
        Constraint::Lt(a, b) => {
            // x[a] < x[b]: a's max < b's max bound, b's min > a's min
            if let Some(bmax) = domains[b].max() {
                if bmax == 0 {
                    domains[a] = BitDomain(0);
                    changed.push(a);
                } else if domains[a].remove_above(bmax - 1) {
                    *prunes += 1;
                    changed.push(a);
                }
            }
            if let Some(amin) = domains[a].min() {
                if domains[b].remove_below(amin + 1) {
                    *prunes += 1;
                    changed.push(b);
                }
            }
        }
    }
    let ok = changed.iter().all(|&v| !domains[v].is_empty());
    (changed, ok)
}

/// Forward checking for `x[a] != x[b] + k`.
fn ne_offset(
    a: usize,
    b: usize,
    k: i32,
    domains: &mut [BitDomain],
    prunes: &mut u32,
    changed: &mut Vec<usize>,
) {
    if let Some(vb) = domains[b].value() {
        let forbidden = vb as i64 + k as i64;
        if (0..=63).contains(&forbidden) && domains[a].remove(forbidden as u32) {
            *prunes += 1;
            changed.push(a);
        }
    }
    if let Some(va) = domains[a].value() {
        let forbidden = va as i64 - k as i64;
        if (0..=63).contains(&forbidden) && domains[b].remove(forbidden as u32) {
            *prunes += 1;
            changed.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn ne_forward_checks_on_singletons() {
        let mut p = Problem::new(2, 0, 3);
        p.ne(0, 1);
        let mut d = p.domains.clone();
        d[0] = BitDomain::singleton(2);
        let out = propagate(&p, &mut d, Some(0));
        assert!(matches!(out, Outcome::Consistent { prunes: 1 }));
        assert!(!d[1].contains(2));
        assert_eq!(d[1].size(), 3);
    }

    #[test]
    fn ne_offset_prunes_diagonals() {
        let mut p = Problem::new(2, 0, 3);
        p.ne_offset(0, 1, 1); // x0 != x1 + 1
        let mut d = p.domains.clone();
        d[1] = BitDomain::singleton(2);
        assert!(matches!(
            propagate(&p, &mut d, Some(1)),
            Outcome::Consistent { .. }
        ));
        assert!(!d[0].contains(3));
    }

    #[test]
    fn lt_tightens_bounds() {
        let mut p = Problem::new(2, 0, 5);
        p.lt(0, 1);
        let mut d = p.domains.clone();
        assert!(matches!(
            propagate(&p, &mut d, None),
            Outcome::Consistent { .. }
        ));
        assert_eq!(d[0].max(), Some(4));
        assert_eq!(d[1].min(), Some(1));
    }

    #[test]
    fn chain_of_lt_propagates_transitively() {
        let mut p = Problem::new(4, 0, 3);
        p.lt(0, 1);
        p.lt(1, 2);
        p.lt(2, 3);
        let mut d = p.domains.clone();
        assert!(matches!(
            propagate(&p, &mut d, None),
            Outcome::Consistent { .. }
        ));
        // forced: 0 < 1 < 2 < 3 with 4 values each
        for (i, dom) in d.iter().enumerate() {
            assert_eq!(dom.value(), Some(i as u32), "var {i}");
        }
    }

    #[test]
    fn failure_detected() {
        let mut p = Problem::new(2, 0, 0); // both {0}
        p.ne(0, 1);
        let mut d = p.domains.clone();
        assert_eq!(propagate(&p, &mut d, None), Outcome::Failed);
    }
}
