//! Constraint problems: variables, domains, and a small constraint
//! vocabulary sufficient for the classic benchmarks.

use crate::domain::BitDomain;

/// Binary constraints over variables (indices into the domain vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// `x[a] != x[b]`
    Ne(usize, usize),
    /// `x[a] != x[b] + k` (k may be negative) — queens diagonals.
    NeOffset(usize, usize, i32),
    /// `x[a] < x[b]`
    Lt(usize, usize),
}

/// A finite-domain constraint problem.
#[derive(Debug, Clone)]
pub struct Problem {
    pub domains: Vec<BitDomain>,
    pub constraints: Vec<Constraint>,
    /// Constraints indexed by participating variable (propagation agenda).
    pub watches: Vec<Vec<usize>>,
}

impl Problem {
    /// `n` variables, all with domain `{lo..=hi}`.
    pub fn new(n: usize, lo: u32, hi: u32) -> Problem {
        Problem {
            domains: vec![BitDomain::range(lo, hi); n],
            constraints: Vec::new(),
            watches: vec![Vec::new(); n],
        }
    }

    pub fn n_vars(&self) -> usize {
        self.domains.len()
    }

    /// Restrict one variable's domain.
    pub fn set_domain(&mut self, var: usize, d: BitDomain) {
        self.domains[var] = d;
    }

    fn push_constraint(&mut self, c: Constraint) {
        let idx = self.constraints.len();
        self.constraints.push(c);
        let (a, b) = match c {
            Constraint::Ne(a, b) | Constraint::NeOffset(a, b, _) | Constraint::Lt(a, b) => (a, b),
        };
        self.watches[a].push(idx);
        self.watches[b].push(idx);
    }

    pub fn ne(&mut self, a: usize, b: usize) {
        self.push_constraint(Constraint::Ne(a, b));
    }

    pub fn ne_offset(&mut self, a: usize, b: usize, k: i32) {
        self.push_constraint(Constraint::NeOffset(a, b, k));
    }

    pub fn lt(&mut self, a: usize, b: usize) {
        self.push_constraint(Constraint::Lt(a, b));
    }

    /// `all_different` over a set of variables (pairwise `Ne`).
    pub fn all_different(&mut self, vars: &[usize]) {
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                self.ne(vars[i], vars[j]);
            }
        }
    }
}

/// The classic N-queens model: `q[i]` = row of the queen in column `i`.
pub fn queens(n: usize) -> Problem {
    assert!((1..=63).contains(&n));
    let mut p = Problem::new(n, 0, (n - 1) as u32);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = (j - i) as i32;
            p.ne(i, j);
            p.ne_offset(i, j, d);
            p.ne_offset(i, j, -d);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_watches() {
        let mut p = Problem::new(3, 0, 4);
        p.ne(0, 1);
        p.lt(1, 2);
        assert_eq!(p.constraints.len(), 2);
        assert_eq!(p.watches[1], vec![0, 1]);
        assert_eq!(p.watches[0], vec![0]);
        assert_eq!(p.watches[2], vec![1]);
    }

    #[test]
    fn all_different_pairs() {
        let mut p = Problem::new(4, 0, 3);
        p.all_different(&[0, 1, 2, 3]);
        assert_eq!(p.constraints.len(), 6);
    }

    #[test]
    fn queens_model_size() {
        let p = queens(8);
        assert_eq!(p.n_vars(), 8);
        // 3 constraints per pair
        assert_eq!(p.constraints.len(), 3 * 8 * 7 / 2);
        assert_eq!(p.domains[0].size(), 8);
    }
}
