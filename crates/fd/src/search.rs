//! Or-parallel labeling search with the Last Alternative Optimization.
//!
//! Workers run first-fail labeling with **private** choice points (plain
//! depth-first backtracking — the paper's *sequentialization* schema).
//! When idle workers exist, the oldest private choice point is
//! **published** into a shared tree by copying the domain state (MUSE-style
//! state copying; domains are flat bit vectors, so a snapshot is one
//! memcpy). Idle workers traverse the public tree to claim untried values,
//! paying per node visited — and **LAO** keeps that tree shallow by
//! reusing a drained node for the next choice point instead of deepening
//! the chain, exactly as in the Prolog or-engine (paper §3.2 / Figure 7;
//! its reference \[6\] = LAO for parallel CLP(FD)).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ace_runtime::{
    Agent, CostModel, DriverKind, EngineConfig, EventKind, Phase, RunOutcome, SimDriver, Stats,
    ThreadsDriver, Trace, TraceBuf, TraceSink, Tracer,
};
use parking_lot::Mutex;

use crate::domain::BitDomain;
use crate::problem::Problem;
use crate::propagate::{propagate, Outcome as Prop};

static NODE_IDS: AtomicU64 = AtomicU64::new(1);

/// Claimable content of a public node (replaced wholesale by LAO reuse).
struct Payload {
    epoch: u64,
    var: usize,
    values: VecDeque<u32>,
    /// Domain state at the choice point.
    state: Arc<Vec<BitDomain>>,
}

/// One public choice point of the labeling tree.
pub struct FdNode {
    pub id: u64,
    pub depth: u32,
    payload: Mutex<Option<Payload>>,
    children: Mutex<Vec<Arc<FdNode>>>,
    total_alts: Arc<AtomicUsize>,
}

impl FdNode {
    fn root(total: Arc<AtomicUsize>) -> Arc<FdNode> {
        Arc::new(FdNode {
            id: 0,
            depth: 0,
            payload: Mutex::new(None),
            children: Mutex::new(Vec::new()),
            total_alts: total,
        })
    }

    fn publish(
        parent: &Arc<FdNode>,
        var: usize,
        values: VecDeque<u32>,
        state: Arc<Vec<BitDomain>>,
        total: Arc<AtomicUsize>,
    ) -> Arc<FdNode> {
        total.fetch_add(values.len(), Ordering::AcqRel);
        let node = Arc::new(FdNode {
            id: NODE_IDS.fetch_add(1, Ordering::Relaxed),
            depth: parent.depth + 1,
            payload: Mutex::new(Some(Payload {
                epoch: 0,
                var,
                values,
                state,
            })),
            children: Mutex::new(Vec::new()),
            total_alts: total,
        });
        parent.children.lock().push(node.clone());
        node
    }

    /// LAO: atomically install a new choice point into this (drained)
    /// node; `None` if it still has unclaimed values.
    fn try_reuse(
        &self,
        var: usize,
        values: VecDeque<u32>,
        state: Arc<Vec<BitDomain>>,
    ) -> Option<u64> {
        let mut p = self.payload.lock();
        if p.as_ref().is_some_and(|p| !p.values.is_empty()) {
            return None;
        }
        let epoch = p.as_ref().map_or(0, |p| p.epoch) + 1;
        self.total_alts.fetch_add(values.len(), Ordering::AcqRel);
        *p = Some(Payload {
            epoch,
            var,
            values,
            state,
        });
        Some(epoch)
    }

    fn claim(&self) -> Option<(usize, u32, u64, Arc<Vec<BitDomain>>)> {
        let mut p = self.payload.lock();
        let payload = p.as_mut()?;
        let v = payload.values.pop_front()?;
        self.total_alts.fetch_sub(1, Ordering::AcqRel);
        Some((payload.var, v, payload.epoch, payload.state.clone()))
    }

    fn claim_epoch(&self, epoch: u64) -> Option<u32> {
        let mut p = self.payload.lock();
        let payload = p.as_mut()?;
        if payload.epoch != epoch {
            return None;
        }
        let v = payload.values.pop_front()?;
        self.total_alts.fetch_sub(1, Ordering::AcqRel);
        Some(v)
    }
}

/// A private (unpublished or owner-held) choice point.
enum LocalCp {
    Private {
        state: Vec<BitDomain>,
        var: usize,
        values: VecDeque<u32>,
    },
    /// Published: remaining values live in the shared node.
    Shared {
        state: Vec<BitDomain>,
        var: usize,
        node: Arc<FdNode>,
        epoch: u64,
    },
}

struct SharedState {
    problem: Problem,
    cfg: EngineConfig,
    root: Arc<FdNode>,
    total_alts: Arc<AtomicUsize>,
    busy: AtomicUsize,
    idle: AtomicUsize,
    done: AtomicBool,
    solutions: Mutex<Vec<Vec<u32>>>,
    nsolutions: AtomicUsize,
    max_depth: AtomicUsize,
    worker_stats: Mutex<Vec<Stats>>,
    trace_bufs: Mutex<Vec<TraceBuf>>,
}

struct Run {
    domains: Vec<BitDomain>,
    stack: Vec<LocalCp>,
    origin: Arc<FdNode>,
    last_published: Option<Arc<FdNode>>,
}

struct FdWorker {
    #[allow(dead_code)]
    id: usize,
    sh: Arc<SharedState>,
    /// The run's immutable cost model, hoisted out of the hot paths.
    costs: Arc<CostModel>,
    current: Option<Run>,
    stats: Stats,
    phase_cost: u64,
    reported: bool,
    marked_idle: bool,
    idle_streak: u32,
    /// Event tracing (no-op unless enabled in the config).
    tracer: Tracer,
    /// Sum of phase costs already returned to the driver; `vclock +
    /// phase_cost` is this worker's current virtual time (event stamps).
    vclock: u64,
}

impl FdWorker {
    fn charge(&mut self, units: u64) {
        self.stats.charge(units);
        self.phase_cost += units;
    }

    #[inline]
    fn now(&self) -> u64 {
        self.vclock + self.phase_cost
    }

    fn mark_idle(&mut self, idle: bool) {
        if idle != self.marked_idle {
            self.marked_idle = idle;
            if idle {
                self.sh.idle.fetch_add(1, Ordering::AcqRel);
            } else {
                self.sh.idle.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    fn others_idle(&self) -> bool {
        self.sh.idle.load(Ordering::Acquire) > usize::from(self.marked_idle)
    }

    /// Publish the oldest private choice point (demand-driven), applying
    /// LAO when the publish target is drained.
    fn maybe_publish(&mut self) {
        if !self.others_idle() {
            return;
        }
        let costs = self.costs.clone();
        let lao = self.sh.cfg.opts.lao;
        let total_alts = self.sh.total_alts.clone();
        let (copy_cost, reused, depth, node_id, epoch, nalts, var) = {
            let Some(run) = self.current.as_mut() else {
                return;
            };
            let Some(pos) = run
                .stack
                .iter()
                .position(|cp| matches!(cp, LocalCp::Private { .. }))
            else {
                return;
            };
            let LocalCp::Private { state, var, values } = std::mem::replace(
                &mut run.stack[pos],
                LocalCp::Private {
                    state: Vec::new(),
                    var: 0,
                    values: VecDeque::new(),
                },
            ) else {
                unreachable!()
            };
            let snapshot = Arc::new(state.clone());
            let copy_cost = state.len() as u64 * costs.heap_cell;
            let nalts = values.len();
            let candidate = run
                .last_published
                .clone()
                .or_else(|| (run.origin.id != 0).then(|| run.origin.clone()));
            let mut reuse_hit = None;
            if lao {
                if let Some(n) = &candidate {
                    if let Some(e) = n.try_reuse(var, values.clone(), snapshot.clone()) {
                        reuse_hit = Some((n.clone(), e));
                    }
                }
            }
            let (node, epoch, reused, depth) = match reuse_hit {
                Some((n, e)) => (n, e, true, 0),
                None => {
                    let parent = run
                        .last_published
                        .clone()
                        .unwrap_or_else(|| run.origin.clone());
                    let n = FdNode::publish(&parent, var, values.clone(), snapshot, total_alts);
                    let d = n.depth;
                    (n, 0, false, d)
                }
            };
            run.stack[pos] = LocalCp::Shared {
                state,
                var,
                node: node.clone(),
                epoch,
            };
            let node_id = node.id;
            run.last_published = Some(node);
            (copy_cost, reused, depth, node_id, epoch, nalts, var)
        };
        if lao {
            self.charge(costs.lao_check);
        }
        if reused {
            self.stats.cp_reused_lao += 1;
            self.charge(costs.lao_reuse + copy_cost);
        } else {
            self.sh
                .max_depth
                .fetch_max(depth as usize, Ordering::AcqRel);
            self.stats.nodes_published += 1;
            self.charge(costs.publish_node + copy_cost);
        }
        let t = self.now();
        self.tracer.emit(t, || {
            // FD splits have no predicate; label frames by the branched
            // variable instead (built in-closure: disabled tracing is free).
            let pred = format!("fd.v{var}");
            if reused {
                EventKind::LaoReuse {
                    node: node_id,
                    epoch,
                    alts: nalts,
                    pred,
                }
            } else {
                EventKind::Publish {
                    node: node_id,
                    epoch,
                    alts: nalts,
                    pred,
                }
            }
        });
    }

    /// One bounded amount of labeling work.
    fn run_current(&mut self) -> Phase {
        self.maybe_publish();
        let costs = self.costs.clone();
        let quantum = self.sh.cfg.quantum;
        let start = self.phase_cost;
        while self.phase_cost - start < quantum {
            let Some(run) = self.current.as_mut() else {
                break;
            };
            // fully labeled?
            if run.domains.iter().all(|d| d.size() == 1) {
                let sol: Vec<u32> = run.domains.iter().map(|d| d.value().unwrap()).collect();
                self.sh.solutions.lock().push(sol);
                self.stats.solutions += 1;
                let t = self.now();
                self.tracer.emit(t, || EventKind::Solution);
                let n = self.sh.nsolutions.fetch_add(1, Ordering::AcqRel) + 1;
                if self.sh.cfg.max_solutions.is_some_and(|max| n >= max) {
                    self.sh.done.store(true, Ordering::Release);
                    return Phase::Busy(self.phase_cost.max(1));
                }
                if !self.backtrack() {
                    break;
                }
                continue;
            }
            // first-fail: smallest non-singleton domain
            let (var, _) = run
                .domains
                .iter()
                .enumerate()
                .filter(|(_, d)| d.size() > 1)
                .min_by_key(|(_, d)| d.size())
                .expect("non-singleton exists");
            let mut values: VecDeque<u32> = run.domains[var].iter().collect();
            let first = values.pop_front().expect("domain non-empty");
            let snapshot_cells = run.domains.len() as u64;
            run.stack.push(LocalCp::Private {
                state: run.domains.clone(),
                var,
                values,
            });
            self.stats.choice_points += 1;
            self.charge(costs.choice_point_alloc + snapshot_cells * costs.heap_cell);
            self.assign_and_propagate(var, first);
        }
        Phase::Busy(self.phase_cost.max(1))
    }

    fn assign_and_propagate(&mut self, var: usize, value: u32) {
        let costs = self.costs.clone();
        let outcome = {
            let run = self.current.as_mut().expect("assign without run");
            run.domains[var] = BitDomain::singleton(value);
            propagate(&self.sh.problem, &mut run.domains, Some(var))
        };
        self.stats.calls += 1;
        self.charge(costs.call_dispatch);
        match outcome {
            Prop::Consistent { prunes } => {
                self.stats.unify_steps += prunes as u64;
                self.charge(prunes as u64 * costs.unify_step + costs.builtin);
            }
            Prop::Failed => {
                self.charge(costs.builtin);
                self.backtrack();
            }
        }
    }

    /// Take the next alternative from the youngest choice point; `false`
    /// when the local computation is exhausted.
    fn backtrack(&mut self) -> bool {
        let costs = self.costs.clone();
        self.stats.backtracks += 1;
        loop {
            let Some(run) = self.current.as_mut() else {
                return false;
            };
            let Some(top) = run.stack.last_mut() else {
                // exhausted: drop the run
                self.finish_run();
                return false;
            };
            self.stats.charge(costs.choice_point_retry);
            self.phase_cost += costs.choice_point_retry;
            match top {
                LocalCp::Private { state, var, values } => {
                    if let Some(v) = values.pop_front() {
                        let (var, state) = (*var, state.clone());
                        run.domains = state;
                        self.assign_and_propagate(var, v);
                        return true;
                    }
                    run.stack.pop();
                }
                LocalCp::Shared {
                    state,
                    var,
                    node,
                    epoch,
                } => {
                    self.stats.alternatives_claimed += 1;
                    self.stats.charge(costs.claim_alternative);
                    self.phase_cost += costs.claim_alternative;
                    match node.claim_epoch(*epoch) {
                        Some(v) => {
                            let (var, state) = (*var, state.clone());
                            let (node_id, ep) = (node.id, *epoch);
                            run.domains = state;
                            let t = self.vclock + self.phase_cost;
                            self.tracer.emit(t, || EventKind::Claim {
                                node: node_id,
                                epoch: ep,
                                alt: v as usize,
                            });
                            self.assign_and_propagate(var, v);
                            return true;
                        }
                        None => {
                            run.stack.pop();
                        }
                    }
                }
            }
        }
    }

    fn finish_run(&mut self) {
        if self.current.take().is_some() {
            self.sh.busy.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Hunt the public tree for an untried value.
    fn find_work(&mut self) -> bool {
        let costs = self.costs.clone();
        self.sh.busy.fetch_add(1, Ordering::AcqRel);
        let t = self.now();
        self.tracer.emit(t, || EventKind::StealAttempt);
        let mut stack = vec![self.sh.root.clone()];
        while let Some(node) = stack.pop() {
            self.stats.tree_visits += 1;
            self.charge(costs.tree_visit);
            if let Some((var, value, epoch, state)) = node.claim() {
                self.stats.alternatives_claimed += 1;
                self.charge(
                    costs.claim_alternative
                        + costs.install_state
                        + state.len() as u64 * costs.heap_cell,
                );
                let t = self.now();
                let node_id = node.id;
                self.tracer.emit(t, || EventKind::Claim {
                    node: node_id,
                    epoch,
                    alt: value as usize,
                });
                self.tracer.emit(t, || EventKind::StealSuccess);
                self.current = Some(Run {
                    domains: (*state).clone(),
                    stack: Vec::new(),
                    origin: node,
                    last_published: None,
                });
                self.assign_and_propagate(var, value);
                return true;
            }
            stack.extend(node.children.lock().iter().cloned());
        }
        self.sh.busy.fetch_sub(1, Ordering::AcqRel);
        let t = self.now();
        self.tracer.emit(t, || EventKind::StealFail);
        false
    }
}

impl FdWorker {
    fn phase_inner(&mut self) -> Phase {
        if self.sh.done.load(Ordering::Acquire) {
            if !self.reported {
                self.reported = true;
                self.sh.worker_stats.lock().push(self.stats);
                if let Some(buf) = self.tracer.take() {
                    self.sh.trace_bufs.lock().push(buf);
                }
            }
            return Phase::Done;
        }
        if self.current.is_some() {
            self.mark_idle(false);
            self.idle_streak = 0;
            return self.run_current();
        }
        self.mark_idle(true);
        if self.find_work() {
            self.mark_idle(false);
            self.idle_streak = 0;
            return Phase::Busy(self.phase_cost.max(1));
        }
        if self.sh.busy.load(Ordering::Acquire) == 0
            && self.sh.total_alts.load(Ordering::Acquire) == 0
        {
            self.sh.done.store(true, Ordering::Release);
            return Phase::Busy(1);
        }
        let base = self.costs.idle_probe;
        let p = (base << self.idle_streak.min(6)).min(self.sh.cfg.quantum.max(base));
        self.idle_streak = self.idle_streak.saturating_add(1);
        self.stats.charge_idle(p);
        let t = self.vclock;
        self.tracer.emit(t, || EventKind::IdleProbe { cost: p });
        Phase::Idle(p)
    }
}

impl Agent for FdWorker {
    fn phase(&mut self) -> Phase {
        // Reset before anything can emit: a stale partial cost from the
        // previous phase would inflate event timestamps past this phase's
        // clock advance.
        self.phase_cost = 0;
        let start = self.vclock;
        let p = self.phase_inner();
        if let Phase::Busy(c) | Phase::Idle(c) = p {
            self.vclock += c;
            if self.tracer.lifecycle() {
                let phase = if matches!(p, Phase::Busy(_)) {
                    "busy"
                } else {
                    "idle"
                };
                self.tracer.emit(start, || EventKind::PhaseStart { phase });
                let end = self.vclock;
                self.tracer.emit(end, || EventKind::PhaseEnd { phase });
            }
        }
        p
    }
}

/// Result of an FD search.
#[derive(Debug)]
pub struct FdReport {
    /// Complete assignments, one `Vec<u32>` per solution (values by
    /// variable index). Discovery order is scheduling-dependent.
    pub solutions: Vec<Vec<u32>>,
    pub outcome: RunOutcome,
    pub stats: Stats,
    /// Maximum public-tree depth observed (the Figure-7 shape metric).
    pub max_tree_depth: u32,
    /// Merged event trace (present only when tracing was enabled).
    pub trace: Option<Trace>,
}

/// The FD solver front end.
pub struct Fd {
    problem: Problem,
}

impl Fd {
    pub fn new(problem: Problem) -> Fd {
        Fd { problem }
    }

    /// Find all solutions (or up to `cfg.max_solutions`).
    pub fn solve_all(&self, cfg: &EngineConfig) -> FdReport {
        let total = Arc::new(AtomicUsize::new(0));
        let sh = Arc::new(SharedState {
            problem: self.problem.clone(),
            cfg: cfg.clone(),
            root: FdNode::root(total.clone()),
            total_alts: total,
            busy: AtomicUsize::new(1),
            idle: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            solutions: Mutex::new(Vec::new()),
            nsolutions: AtomicUsize::new(0),
            max_depth: AtomicUsize::new(0),
            worker_stats: Mutex::new(Vec::new()),
            trace_bufs: Mutex::new(Vec::new()),
        });

        let costs = Arc::new(cfg.costs.clone());
        let mut workers: Vec<FdWorker> = (0..cfg.workers.max(1))
            .map(|id| FdWorker {
                id,
                sh: sh.clone(),
                costs: costs.clone(),
                current: None,
                stats: Stats::new(),
                phase_cost: 0,
                reported: false,
                marked_idle: false,
                idle_streak: 0,
                tracer: Tracer::new(&cfg.trace, id),
                vclock: 0,
            })
            .collect();

        // Root run: propagate the initial constraints, then label.
        let mut domains = self.problem.domains.clone();
        let root_ok = !matches!(propagate(&self.problem, &mut domains, None), Prop::Failed);
        if root_ok {
            workers[0].current = Some(Run {
                domains,
                stack: Vec::new(),
                origin: sh.root.clone(),
                last_published: None,
            });
        } else {
            sh.busy.store(0, Ordering::Release);
        }

        let sink = cfg.trace.enabled.then(|| TraceSink::new(&cfg.trace));
        let outcome = match cfg.driver {
            DriverKind::Sim => {
                let agents: Vec<Box<dyn Agent>> = workers
                    .into_iter()
                    .map(|w| Box::new(w) as Box<dyn Agent>)
                    .collect();
                let mut driver = SimDriver::new(cfg.virtual_time_limit);
                if let Some(s) = &sink {
                    driver = driver.with_trace(s.clone());
                }
                driver.run(agents)
            }
            DriverKind::Threads => {
                let agents: Vec<Box<dyn Agent + Send>> = workers
                    .into_iter()
                    .map(|w| Box::new(w) as Box<dyn Agent + Send>)
                    .collect();
                let mut driver = ThreadsDriver::new(cfg.threads_deadline, None);
                if let Some(s) = &sink {
                    driver = driver.with_trace(s.clone());
                }
                driver.run(agents)
            }
        };

        let per_worker = sh.worker_stats.lock().clone();
        let mut stats = Stats::new();
        for w in &per_worker {
            stats += *w;
        }
        let mut solutions = std::mem::take(&mut *sh.solutions.lock());
        if let Some(max) = cfg.max_solutions {
            solutions.truncate(max);
        }
        let trace =
            sink.map(|s| Trace::merge(std::mem::take(&mut *sh.trace_bufs.lock()), s.drain()));
        FdReport {
            solutions,
            outcome,
            stats,
            max_tree_depth: sh.max_depth.load(Ordering::Acquire) as u32,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::queens;
    use ace_runtime::OptFlags;

    fn cfg(workers: usize, opts: OptFlags) -> EngineConfig {
        let mut c = EngineConfig::default()
            .with_workers(workers)
            .with_opts(opts);
        c.max_solutions = None;
        c
    }

    #[test]
    fn queens_counts() {
        for (n, expect) in [(4usize, 2usize), (5, 10), (6, 4), (7, 40)] {
            let r = Fd::new(queens(n)).solve_all(&cfg(1, OptFlags::none()));
            assert_eq!(r.solutions.len(), expect, "queens({n})");
        }
    }

    #[test]
    fn solutions_satisfy_constraints() {
        let r = Fd::new(queens(6)).solve_all(&cfg(2, OptFlags::none()));
        for sol in &r.solutions {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    assert_ne!(sol[i], sol[j]);
                    let d = (j - i) as i64;
                    assert_ne!(sol[i] as i64 - sol[j] as i64, d);
                    assert_ne!(sol[j] as i64 - sol[i] as i64, d);
                }
            }
        }
    }

    #[test]
    fn parallel_workers_find_the_same_multiset() {
        let baseline = {
            let mut s = Fd::new(queens(7))
                .solve_all(&cfg(1, OptFlags::none()))
                .solutions;
            s.sort();
            s
        };
        for workers in [2, 4, 8] {
            for opts in [OptFlags::none(), OptFlags::lao_only()] {
                let mut s = Fd::new(queens(7)).solve_all(&cfg(workers, opts)).solutions;
                s.sort();
                assert_eq!(s, baseline, "workers={workers} {}", opts.label());
            }
        }
    }

    #[test]
    fn lao_keeps_fd_tree_shallow() {
        let unopt = Fd::new(queens(8)).solve_all(&cfg(6, OptFlags::none()));
        let opt = Fd::new(queens(8)).solve_all(&cfg(6, OptFlags::lao_only()));
        assert_eq!(unopt.solutions.len(), 92);
        assert_eq!(opt.solutions.len(), 92);
        assert!(opt.stats.cp_reused_lao > 0);
        assert!(
            opt.max_tree_depth < unopt.max_tree_depth,
            "lao {} !< unopt {}",
            opt.max_tree_depth,
            unopt.max_tree_depth
        );
        assert!(opt.stats.tree_visits < unopt.stats.tree_visits);
    }

    #[test]
    fn first_solution_mode() {
        let mut c = cfg(4, OptFlags::lao_only());
        c.max_solutions = Some(1);
        let r = Fd::new(queens(8)).solve_all(&c);
        assert_eq!(r.solutions.len(), 1);
    }

    #[test]
    fn unsatisfiable_problem_terminates_empty() {
        let mut p = Problem::new(2, 0, 0);
        p.ne(0, 1);
        let r = Fd::new(p).solve_all(&cfg(3, OptFlags::lao_only()));
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn threads_driver_works() {
        let mut c = cfg(3, OptFlags::lao_only());
        c.driver = DriverKind::Threads;
        let r = Fd::new(queens(6)).solve_all(&c);
        assert_eq!(r.solutions.len(), 4);
    }

    #[test]
    fn sim_deterministic() {
        let c = cfg(4, OptFlags::lao_only());
        let a = Fd::new(queens(6)).solve_all(&c);
        let b = Fd::new(queens(6)).solve_all(&c);
        assert_eq!(a.outcome.virtual_time, b.outcome.virtual_time);
        assert_eq!(a.solutions, b.solutions);
    }
}
