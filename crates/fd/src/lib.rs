//! # ace-fd — the optimization schemas on a second nondeterministic system
//!
//! The paper closes by claiming its schemas "can be readily applied to
//! other nondeterministic systems such as parallel theorem proving
//! systems, parallel rule based and AI systems, and parallel
//! implementations of constraint and concurrent constraint languages",
//! and its reference \[6\] applies LAO to a parallel CLP(FD). This crate
//! substantiates that claim inside this reproduction: a small but real
//! **finite-domain constraint solver** (bit-set domains, propagation to
//! fixpoint, first-fail labeling) whose or-parallel labeling search reuses
//! the same runtime substrate (drivers, cost model, cancellation) and
//! implements the **Last Alternative Optimization** on its choice-point
//! tree.
//!
//! The structure mirrors the Prolog or-engine deliberately:
//!
//! * a labeling step is a choice point (variable × remaining values);
//! * publishing one copies the domain state into a shared node
//!   (MUSE-style state copying — domains are plain bit vectors, so the
//!   copy is cheap and exact);
//! * idle workers hunt for work by traversing the public tree (charged per
//!   node — the cost LAO's flattening attacks);
//! * **LAO**: taking the last value of node `B1` and immediately creating
//!   the next labeling choice point reuses `B1` in place, keeping the
//!   public tree shallow.
//!
//! ```
//! use ace_fd::{queens, Fd};
//! use ace_runtime::{EngineConfig, OptFlags};
//!
//! let problem = queens(6);
//! let cfg = EngineConfig::default()
//!     .with_workers(4)
//!     .with_opts(OptFlags::lao_only())
//!     .all_solutions();
//! let report = Fd::new(problem).solve_all(&cfg);
//! assert_eq!(report.solutions.len(), 4);
//! ```

pub mod domain;
pub mod problem;
pub mod propagate;
pub mod search;

pub use domain::BitDomain;
pub use problem::{queens, Constraint, Problem};
pub use propagate::propagate;
pub use search::{Fd, FdReport};
