//! Property tests: the parallel FD search agrees with brute-force
//! enumeration on random problems, under every optimization/worker mix.

use proptest::prelude::*;

use ace_fd::{BitDomain, Constraint, Fd, Problem};
use ace_runtime::{EngineConfig, OptFlags};

/// Generate a random small problem: up to 5 variables over 0..=4 with up
/// to 8 random binary constraints.
fn problem_strategy() -> impl Strategy<Value = Problem> {
    let var_count = 2usize..=5;
    var_count.prop_flat_map(|n| {
        let constraint =
            (0usize..n, 0usize..n, 0u8..3, -3i32..=3).prop_map(move |(a, b, kind, k)| match kind {
                0 => Constraint::Ne(a, b),
                1 => Constraint::NeOffset(a, b, k),
                _ => Constraint::Lt(a, b),
            });
        prop::collection::vec(constraint, 0..8).prop_map(move |cs| {
            let mut p = Problem::new(n, 0, 4);
            for c in cs {
                match c {
                    Constraint::Ne(a, b) if a != b => p.ne(a, b),
                    Constraint::NeOffset(a, b, k) if a != b => p.ne_offset(a, b, k),
                    Constraint::Lt(a, b) if a != b => p.lt(a, b),
                    _ => {}
                }
            }
            p
        })
    })
}

/// All satisfying assignments by brute force.
fn brute_force(p: &Problem) -> Vec<Vec<u32>> {
    let n = p.n_vars();
    let mut out = Vec::new();
    let mut assignment = vec![0u32; n];
    fn sat(c: &Constraint, a: &[u32]) -> bool {
        match *c {
            Constraint::Ne(x, y) => a[x] != a[y],
            Constraint::NeOffset(x, y, k) => a[x] as i64 != a[y] as i64 + k as i64,
            Constraint::Lt(x, y) => a[x] < a[y],
        }
    }
    fn rec(p: &Problem, i: usize, assignment: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if i == assignment.len() {
            if p.constraints.iter().all(|c| sat(c, assignment)) {
                out.push(assignment.clone());
            }
            return;
        }
        for v in p.domains[i].iter() {
            assignment[i] = v;
            rec(p, i + 1, assignment, out);
        }
    }
    rec(p, 0, &mut assignment, &mut out);
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fd_search_matches_brute_force(
        p in problem_strategy(),
        workers in 1usize..5,
        lao in any::<bool>(),
    ) {
        let expected = brute_force(&p);
        let opts = if lao { OptFlags::lao_only() } else { OptFlags::none() };
        let cfg = EngineConfig::default()
            .with_workers(workers)
            .with_opts(opts)
            .all_solutions();
        let mut got = Fd::new(p).solve_all(&cfg).solutions;
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// Propagation never removes a value that participates in a solution
    /// (soundness of pruning).
    #[test]
    fn propagation_is_sound(p in problem_strategy()) {
        let solutions = brute_force(&p);
        let mut domains = p.domains.clone();
        let _ = ace_fd::propagate(&p, &mut domains, None);
        for sol in &solutions {
            for (var, &v) in sol.iter().enumerate() {
                prop_assert!(
                    domains[var].contains(v),
                    "propagation pruned value {v} of var {var} used by {sol:?}"
                );
            }
        }
    }

    /// Domain ops respect set semantics on random masks.
    #[test]
    fn bitdomain_ops(bits in any::<u64>(), v in 0u32..64) {
        let d = BitDomain(bits);
        prop_assert_eq!(d.size() as usize, d.iter().count());
        let mut d2 = d;
        let removed = d2.remove(v);
        prop_assert_eq!(removed, d.contains(v));
        prop_assert!(!d2.contains(v));
        if let (Some(lo), Some(hi)) = (d.min(), d.max()) {
            prop_assert!(d.contains(lo) && d.contains(hi));
            prop_assert!(lo <= hi);
        }
    }
}
