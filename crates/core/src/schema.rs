//! The paper's optimization taxonomy as data.
//!
//! The paper's central distinction is between an **optimization schema**
//! ("general guidelines that form the underpinning of a class of specific
//! optimizations") and the **actual optimizations** derived from it. This
//! module encodes that taxonomy so tooling (the `tables` harness, examples,
//! docs) can enumerate and describe what is being toggled.

use ace_runtime::OptFlags;

/// The three optimization schemas of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schema {
    /// "Flatten the tree structure, reducing the levels of nesting
    /// whenever possible, preserving the operational semantics." (§3)
    Flattening,
    /// "The execution of an operation that constitutes an overhead should
    /// be delayed until its effects are needed by the rest of the
    /// computation." (§4)
    Procrastination,
    /// "Two consecutive branches of the same node of the computation tree
    /// executed by the same computing agent should produce minimal
    /// overhead." (§4)
    Sequentialization,
}

impl Schema {
    pub fn statement(&self) -> &'static str {
        match self {
            Schema::Flattening => {
                "Flatten the tree structure, reducing the levels of nesting \
                 whenever possible, preserving the operational semantics."
            }
            Schema::Procrastination => {
                "The execution of an operation that constitutes an overhead \
                 should be delayed until its effects are needed by the rest \
                 of the computation."
            }
            Schema::Sequentialization => {
                "Two consecutive branches of the same node of the \
                 computation tree executed by the same computing agent \
                 should produce minimal overhead."
            }
        }
    }
}

/// The four concrete optimizations implemented in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimization {
    /// Last Parallel Call Optimization (§3.1).
    Lpco,
    /// Last Alternative Optimization (§3.2).
    Lao,
    /// Shallow Parallelism Optimization (§4.1).
    Spo,
    /// Processor Determinacy Optimization (§4.2).
    Pdo,
}

impl Optimization {
    pub const ALL: [Optimization; 4] = [
        Optimization::Lpco,
        Optimization::Lao,
        Optimization::Spo,
        Optimization::Pdo,
    ];

    /// Which schema this optimization instantiates.
    pub fn schema(&self) -> Schema {
        match self {
            Optimization::Lpco | Optimization::Lao => Schema::Flattening,
            Optimization::Spo => Schema::Procrastination,
            Optimization::Pdo => Schema::Sequentialization,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Optimization::Lpco => "Last Parallel Call Optimization",
            Optimization::Lao => "Last Alternative Optimization",
            Optimization::Spo => "Shallow Parallelism Optimization",
            Optimization::Pdo => "Processor Determinacy Optimization",
        }
    }

    pub fn acronym(&self) -> &'static str {
        match self {
            Optimization::Lpco => "LPCO",
            Optimization::Lao => "LAO",
            Optimization::Spo => "SPO",
            Optimization::Pdo => "PDO",
        }
    }

    /// The flag set enabling exactly this optimization.
    pub fn flags(&self) -> OptFlags {
        match self {
            Optimization::Lpco => OptFlags::lpco_only(),
            Optimization::Lao => OptFlags::lao_only(),
            Optimization::Spo => OptFlags::spo_only(),
            Optimization::Pdo => OptFlags::pdo_only(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_assignment_matches_paper() {
        assert_eq!(Optimization::Lpco.schema(), Schema::Flattening);
        assert_eq!(Optimization::Lao.schema(), Schema::Flattening);
        assert_eq!(Optimization::Spo.schema(), Schema::Procrastination);
        assert_eq!(Optimization::Pdo.schema(), Schema::Sequentialization);
    }

    #[test]
    fn flags_are_singletons() {
        for opt in Optimization::ALL {
            let f = opt.flags();
            let on = [f.lpco, f.lao, f.spo, f.pdo].iter().filter(|b| **b).count();
            assert_eq!(on, 1, "{opt:?}");
        }
    }

    #[test]
    fn statements_are_nonempty() {
        for s in [
            Schema::Flattening,
            Schema::Procrastination,
            Schema::Sequentialization,
        ] {
            assert!(!s.statement().is_empty());
        }
    }
}
