//! # ace-core — the ACE system facade
//!
//! One entry point over the whole reproduction: load a program, pick an
//! execution mode ([`Mode`]), a worker count and an optimization set
//! ([`ace_runtime::OptFlags`]), run a query, get a [`RunReport`] with the
//! solutions, the virtual execution time and the full statistics sheet.
//!
//! ```
//! use ace_core::{Ace, Mode};
//! use ace_runtime::{EngineConfig, OptFlags};
//!
//! let ace = Ace::load(r#"
//!     double(X, Y) :- Y is X * 2.
//!     pair(A, B) :- double(1, A) & double(2, B).
//! "#).unwrap();
//!
//! let cfg = EngineConfig::default()
//!     .with_workers(4)
//!     .with_opts(OptFlags::all())
//!     .all_solutions();
//! let report = ace.run(Mode::AndParallel, "pair(A, B)", &cfg).unwrap();
//! assert_eq!(report.solutions, vec!["A=2, B=4"]);
//! ```

pub mod error;
pub mod report;
pub mod schema;

use std::sync::Arc;

use ace_and::AndEngine;
use ace_logic::Database;
use ace_machine::Solver;
use ace_or::OrEngine;
use ace_runtime::{CostModel, EngineConfig, EventKind, Trace, TraceEvent};

pub use error::AceError;
pub use report::RunReport;
pub use schema::{Optimization, Schema};

/// Which engine executes the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Pure sequential baseline (the "SICStus" stand-in): `&` behaves as
    /// `,`, no parallel machinery at all.
    Sequential,
    /// Independent and-parallel execution (&ACE model): honours `&`,
    /// LPCO/SPO/PDO apply.
    AndParallel,
    /// Or-parallel execution (MUSE model): alternatives explored in
    /// parallel, LAO applies. Programs must not contain `&`.
    OrParallel,
}

/// The loaded system: a program database plus both engines.
///
/// Cloning is cheap (the database is shared behind an `Arc`), so a server
/// can hand one handle to every session worker.
#[derive(Clone)]
pub struct Ace {
    db: Arc<Database>,
}

impl Ace {
    /// Parse and load `program`.
    pub fn load(program: &str) -> Result<Ace, String> {
        let db = Database::load(program).map_err(|e| e.to_string())?;
        Ok(Ace { db: Arc::new(db) })
    }

    /// Load from an already-built database.
    pub fn from_db(db: Arc<Database>) -> Ace {
        Ace { db }
    }

    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Run `query` under `mode` and `cfg` (legacy string-error API).
    ///
    /// Thin wrapper over [`Ace::run_query`]: the same [`AceError`]
    /// classification and graceful degradation, with the typed error
    /// flattened back to its message string. Kept for callers that predate
    /// the structured API; new code should use [`Ace::run_query`]
    /// (degrading) or [`Ace::run_strict`] (every failure surfaces).
    pub fn run(&self, mode: Mode, query: &str, cfg: &EngineConfig) -> Result<RunReport, String> {
        self.run_query(mode, query, cfg).map_err(|e| e.to_string())
    }

    /// Run `query` strictly: every failure surfaces as a classified
    /// [`AceError`], including recoverable infrastructure failures that
    /// [`Ace::run_query`] would absorb via sequential fallback. The
    /// serving layer builds on this entry point so it stays in control of
    /// its own degraded replays (and of what has already been streamed).
    pub fn run_strict(
        &self,
        mode: Mode,
        query: &str,
        cfg: &EngineConfig,
    ) -> Result<RunReport, AceError> {
        self.run_once(mode, query, cfg)
    }

    /// Run `query` under `mode` and `cfg` with structured errors and
    /// graceful degradation: if a *parallel* run is killed by something
    /// that is not the program's fault — a worker panic, an injected
    /// fault, a driver abort — the query is replayed on the sequential
    /// engine and the recovery is recorded on the report. Program and
    /// parse errors always surface.
    pub fn run_query(
        &self,
        mode: Mode,
        query: &str,
        cfg: &EngineConfig,
    ) -> Result<RunReport, AceError> {
        match self.run_once(mode, query, cfg) {
            Ok(r) => Ok(r),
            Err(e) if e.is_recoverable() && mode != Mode::Sequential => {
                let mut r = self.run_once(Mode::Sequential, query, cfg)?;
                let reason =
                    format!("parallel run failed ({e}); recovered via sequential fallback");
                if cfg.trace.enabled {
                    // The parallel run's buffers died with it; record the
                    // degradation itself so traced runs are never silent
                    // about the fallback.
                    r.trace = Some(Trace::merge(
                        Vec::new(),
                        vec![TraceEvent {
                            t: r.virtual_time,
                            worker: 0,
                            kind: EventKind::Degraded {
                                reason: reason.clone(),
                            },
                        }],
                    ));
                }
                r.recovery.push(reason);
                Ok(r)
            }
            Err(e) => Err(e),
        }
    }

    fn run_once(&self, mode: Mode, query: &str, cfg: &EngineConfig) -> Result<RunReport, AceError> {
        let mut report = match mode {
            Mode::Sequential => self.run_sequential(query, cfg)?,
            Mode::AndParallel => {
                let engine = AndEngine::new(self.db.clone());
                let r = engine.run(query, cfg).map_err(AceError::classify)?;
                RunReport {
                    solutions: r.solutions.iter().map(|s| s.render()).collect(),
                    virtual_time: r.outcome.virtual_time,
                    wall: r.outcome.wall,
                    clocks: r.outcome.clocks,
                    stats: r.stats,
                    per_worker: r.per_worker,
                    tree_depth: None,
                    recovery: Vec::new(),
                    trace: r.trace,
                }
            }
            Mode::OrParallel => {
                let engine = OrEngine::new(self.db.clone());
                let r = engine.run(query, cfg).map_err(AceError::classify)?;
                RunReport {
                    solutions: r.solutions,
                    virtual_time: r.outcome.virtual_time,
                    wall: r.outcome.wall,
                    clocks: r.outcome.clocks,
                    stats: r.stats,
                    per_worker: r.per_worker,
                    tree_depth: Some(r.max_tree_depth),
                    recovery: Vec::new(),
                    trace: r.trace,
                }
            }
        };
        if report.stats.faults_injected > 0 {
            report.recovery.push(format!(
                "absorbed {} injected fault(s) ({} steal retries, {} publish \
                 retries, {} stalls) without losing answers",
                report.stats.faults_injected,
                report.stats.steal_retries,
                report.stats.publish_retries,
                report.stats.fault_stalls,
            ));
        }
        Ok(report)
    }

    fn run_sequential(&self, query: &str, cfg: &EngineConfig) -> Result<RunReport, AceError> {
        let start = std::time::Instant::now();
        let mut solver = Solver::new(self.db.clone(), Arc::new(cfg.costs.clone()), query)
            .map_err(|e| AceError::classify(e.to_string()))?;
        // The sequential path shares the same answer table as the parallel
        // engines (a warm table from a parallel run keeps paying off here).
        // No tracer exists in this mode, so event buffering stays off.
        solver
            .machine_mut()
            .set_memo(cfg.resolve_memo_table(), false);
        solver
            .machine_mut()
            .set_table(cfg.resolve_table_space(), false);
        solver.machine_mut().set_memo_tenant(cfg.memo_tenant);
        solver.machine_mut().set_clause_exec(cfg.clause_exec);
        if let Some(parent) = &cfg.cancel {
            solver.set_cancel(parent.child());
        }
        // Stream each answer through the sink as it is found — the same
        // contract as the parallel engines' publication points — honouring
        // an early `Stop` exactly like a `max_solutions` bound.
        let mut solutions: Vec<String> = Vec::new();
        let mut streamed = 0u64;
        let mut sink_stops = 0u64;
        while cfg.max_solutions.is_none_or(|max| solutions.len() < max) {
            let sol = match solver
                .next_solution()
                .map_err(|e| AceError::classify(e.to_string()))?
            {
                Some(sol) => sol,
                None => break,
            };
            let rendered = sol.render();
            let stop = match &cfg.sink {
                Some(sink) => {
                    streamed += 1;
                    sink.deliver(&rendered).is_stop()
                }
                None => false,
            };
            solutions.push(rendered);
            if stop {
                sink_stops += 1;
                break;
            }
        }
        let mut stats = solver.machine().stats;
        stats.answers_streamed = streamed;
        stats.sink_stops = sink_stops;
        if let Some(metrics) = &cfg.metrics {
            metrics.record_run("sequential", cfg.memo_tenant, &stats, stats.total_cost());
        }
        Ok(RunReport {
            solutions,
            virtual_time: stats.total_cost(),
            wall: start.elapsed(),
            clocks: vec![stats.total_cost()],
            stats,
            per_worker: vec![stats],
            tree_depth: None,
            recovery: Vec::new(),
            trace: None,
        })
    }

    /// Convenience: the sequential solution list (oracle for tests).
    pub fn sequential_solutions(&self, query: &str) -> Result<Vec<String>, String> {
        let cfg = EngineConfig {
            max_solutions: None,
            costs: CostModel::default(),
            ..EngineConfig::default()
        };
        Ok(self.run(Mode::Sequential, query, &cfg)?.solutions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_runtime::OptFlags;

    const PROG: &str = r#"
        double(X, Y) :- Y is X * 2.
        p(1). p(2). p(3).
        pl([], []).
        pl([H|T], [H2|T2]) :- double(H, H2) & pl(T, T2).
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
    "#;

    fn cfg(workers: usize, opts: OptFlags) -> EngineConfig {
        EngineConfig::default()
            .with_workers(workers)
            .with_opts(opts)
            .all_solutions()
    }

    #[test]
    fn three_modes_agree_on_solutions() {
        let ace = Ace::load(PROG).unwrap();
        let seq = ace.sequential_solutions("p(X), double(X, Y)").unwrap();
        let and = ace
            .run(
                Mode::AndParallel,
                "p(X), double(X, Y)",
                &cfg(2, OptFlags::all()),
            )
            .unwrap();
        let or = ace
            .run(
                Mode::OrParallel,
                "p(X), double(X, Y)",
                &cfg(2, OptFlags::all()),
            )
            .unwrap();
        let mut or_sols = or.solutions.clone();
        or_sols.sort();
        let mut seq_sorted = seq.clone();
        seq_sorted.sort();
        assert_eq!(and.solutions, seq);
        assert_eq!(or_sols, seq_sorted);
    }

    #[test]
    fn and_parallel_honours_amp() {
        let ace = Ace::load(PROG).unwrap();
        let r = ace
            .run(
                Mode::AndParallel,
                "pl([1,2,3], Out)",
                &cfg(3, OptFlags::all()),
            )
            .unwrap();
        assert_eq!(r.solutions, vec!["Out=[2,4,6]"]);
        assert!(r.virtual_time > 0);
    }

    #[test]
    fn sequential_treats_amp_as_comma() {
        let ace = Ace::load(PROG).unwrap();
        let sols = ace.sequential_solutions("pl([1,2], Out)").unwrap();
        assert_eq!(sols, vec!["Out=[2,4]"]);
    }

    #[test]
    fn or_parallel_reports_tree_depth() {
        let ace = Ace::load(PROG).unwrap();
        let r = ace
            .run(
                Mode::OrParallel,
                "member(X, [1,2,3,4,5])",
                &cfg(3, OptFlags::none()),
            )
            .unwrap();
        assert_eq!(r.solutions.len(), 5);
        assert!(r.tree_depth.is_some());
    }

    #[test]
    fn report_summary_renders() {
        let ace = Ace::load(PROG).unwrap();
        let r = ace
            .run(Mode::AndParallel, "pl([1,2], O)", &cfg(2, OptFlags::all()))
            .unwrap();
        let s = r.summary();
        assert!(s.contains("virtual time"));
    }

    #[test]
    fn memo_table_is_shared_across_modes() {
        use ace_runtime::{MemoConfig, MemoTable};
        let ace = Ace::load(
            r#"
            append([], L, L).
            append([H|T], L, [H|R]) :- append(T, L, R).
            nrev([], []).
            nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
            "#,
        )
        .unwrap();
        let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let q = "nrev([1,2,3,4,5,6], R)";

        // Warm the table on the and-engine...
        let c = cfg(2, OptFlags::all()).with_memo_table(table.clone());
        let warm = ace.run(Mode::AndParallel, q, &c).unwrap();
        assert_eq!(warm.solutions, vec!["R=[6,5,4,3,2,1]"]);
        assert!(warm.stats.memo_stores > 0, "{}", warm.summary());

        // ...then the sequential path replays from it.
        let seq = ace.run(Mode::Sequential, q, &c).unwrap();
        assert_eq!(seq.solutions, warm.solutions);
        assert!(seq.stats.memo_hits > 0, "{}", seq.summary());
        assert_eq!(seq.stats.memo_stores, 0);
        assert!(seq.summary().contains("memo hit-rate"), "{}", seq.summary());
    }

    #[test]
    fn run_degrades_while_run_strict_surfaces() {
        use ace_runtime::fault::{FaultKind, FaultPlan};
        let ace = Ace::load(PROG).unwrap();
        let c =
            cfg(2, OptFlags::all()).with_fault_plan(FaultPlan::new(0).with(0, 2, FaultKind::Die));
        let err = ace
            .run_strict(Mode::AndParallel, "pl([1,2,3], Out)", &c)
            .expect_err("strict path must surface the worker death");
        assert!(err.is_recoverable(), "{err:?}");
        // The legacy string API now rides run_query: same query, same
        // config, but the infrastructure failure degrades to sequential.
        let r = ace.run(Mode::AndParallel, "pl([1,2,3], Out)", &c).unwrap();
        assert_eq!(r.solutions, vec!["Out=[2,4,6]"]);
        assert!(
            r.recovery.iter().any(|l| l.contains("sequential fallback")),
            "{:?}",
            r.recovery
        );
    }

    #[test]
    fn sequential_streams_through_sink_with_early_stop() {
        use ace_runtime::{AnswerSink, SinkVerdict};
        use std::sync::Mutex;
        let ace = Ace::load(PROG).unwrap();
        let got = Arc::new(Mutex::new(Vec::new()));
        let tap = got.clone();
        let sink = AnswerSink::new(move |a: &str| {
            let mut v = tap.lock().unwrap();
            v.push(a.to_string());
            if v.len() >= 2 {
                SinkVerdict::Stop
            } else {
                SinkVerdict::Continue
            }
        });
        let c = EngineConfig::default()
            .all_solutions()
            .with_answer_sink(sink);
        let r = ace
            .run(Mode::Sequential, "member(X, [1,2,3,4,5])", &c)
            .unwrap();
        assert_eq!(r.solutions.len(), 2, "{:?}", r.solutions);
        assert_eq!(*got.lock().unwrap(), r.solutions);
        assert_eq!(r.stats.answers_streamed, 2);
        assert_eq!(r.stats.sink_stops, 1);
    }

    #[test]
    fn sequential_honours_external_cancel() {
        use ace_runtime::CancelToken;
        let ace = Ace::load(PROG).unwrap();
        let tok = CancelToken::new();
        tok.cancel();
        let c = EngineConfig::default().all_solutions().with_cancel(tok);
        let err = ace
            .run_strict(Mode::Sequential, "member(X, [1,2,3])", &c)
            .expect_err("a pre-cancelled token must stop the run");
        assert!(matches!(err, AceError::FaultInjected(_)), "{err:?}");
    }

    #[test]
    fn doc_example_works() {
        let ace = Ace::load(
            r#"
            double(X, Y) :- Y is X * 2.
            pair(A, B) :- double(1, A) & double(2, B).
            "#,
        )
        .unwrap();
        let cfg = EngineConfig::default()
            .with_workers(4)
            .with_opts(OptFlags::all())
            .all_solutions();
        let report = ace.run(Mode::AndParallel, "pair(A, B)", &cfg).unwrap();
        assert_eq!(report.solutions, vec!["A=2, B=4"]);
    }
}
