//! Run reports: solutions plus the measurements every experiment consumes.

use std::time::Duration;

use ace_runtime::{Profile, Stats, Trace};

/// The outcome of one query run under one configuration.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Rendered solutions (`"X=1, Y=2"`), in discovery order.
    pub solutions: Vec<String>,
    /// Simulated execution time in cost units: max over workers of
    /// busy + idle virtual time. This is the number reported in every
    /// reproduced table (the substitute for the paper's Sequent Symmetry
    /// wall-clock seconds).
    pub virtual_time: u64,
    /// Host wall-clock time of the run (informational).
    pub wall: Duration,
    /// Per-worker final virtual clocks.
    pub clocks: Vec<u64>,
    /// Aggregated statistics across workers.
    pub stats: Stats,
    /// Per-worker statistics.
    pub per_worker: Vec<Stats>,
    /// Or-parallel runs: maximum public-tree depth observed.
    pub tree_depth: Option<u32>,
    /// Recovery events: one line per fault absorbed or degradation applied
    /// (e.g. a parallel run replayed on the sequential engine after a
    /// worker died). Empty for an undisturbed run.
    pub recovery: Vec<String>,
    /// Merged virtual-time-ordered event trace (present only when tracing
    /// was enabled in the run's [`ace_runtime::trace::TraceConfig`]).
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Percentage improvement of `optimized` over `self` (the paper's
    /// `(unopt - opt) / unopt` convention, negative = slowdown).
    pub fn improvement_over(&self, optimized: &RunReport) -> f64 {
        if self.virtual_time == 0 {
            return 0.0;
        }
        100.0 * (self.virtual_time as f64 - optimized.virtual_time as f64)
            / self.virtual_time as f64
    }

    /// Speedup of this run relative to a one-worker reference time.
    pub fn speedup_from(&self, one_worker_time: u64) -> f64 {
        if self.virtual_time == 0 {
            return 0.0;
        }
        one_worker_time as f64 / self.virtual_time as f64
    }

    /// Mean or-tree nodes inspected per claimed alternative — the steal
    /// cost the or-engine's alternative pool keeps amortized O(1), and the
    /// number that grows with public-tree size under the traversal
    /// scheduler. `None` when the run claimed no alternatives (sequential
    /// and and-parallel runs, or one-worker or-runs).
    pub fn steal_cost_per_claim(&self) -> Option<f64> {
        (self.stats.alternatives_claimed > 0)
            .then(|| self.stats.tree_visits as f64 / self.stats.alternatives_claimed as f64)
    }

    /// Fraction of memo lookups that hit, in `[0, 1]`. `None` when the
    /// run performed no lookups at all — never `NaN`, so callers can
    /// format it without a zero-guard of their own.
    pub fn memo_hit_rate(&self) -> Option<f64> {
        let lookups = self.stats.memo_hits + self.stats.memo_misses;
        (lookups > 0).then(|| self.stats.memo_hits as f64 / lookups as f64)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} solution(s), virtual time {}, workers {}, {}",
            self.solutions.len(),
            self.virtual_time,
            self.clocks.len(),
            self.stats.summary()
        );
        if let Some(rate) = self.memo_hit_rate() {
            s.push_str(&format!(
                ", memo hit-rate {:.1}% ({}/{} lookups)",
                100.0 * rate,
                self.stats.memo_hits,
                self.stats.memo_hits + self.stats.memo_misses
            ));
        }
        if !self.recovery.is_empty() {
            s.push_str(&format!(
                ", {} recovery event(s): {}",
                self.recovery.len(),
                self.recovery.join("; ")
            ));
        }
        if let Some(trace) = &self.trace {
            if trace.dropped > 0 {
                s.push_str(&format!(
                    ", trace incomplete ({} event(s) dropped)",
                    trace.dropped
                ));
            }
            let profile = Profile::from_trace(trace);
            if !profile.is_empty() {
                s.push('\n');
                s.push_str(&profile.table(5));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(vt: u64) -> RunReport {
        RunReport {
            solutions: vec![],
            virtual_time: vt,
            wall: Duration::ZERO,
            clocks: vec![vt],
            stats: Stats::new(),
            per_worker: vec![],
            tree_depth: None,
            recovery: vec![],
            trace: None,
        }
    }

    #[test]
    fn improvement_math() {
        let unopt = report(200);
        let opt = report(150);
        assert!((unopt.improvement_over(&opt) - 25.0).abs() < 1e-9);
        // slowdown is negative
        assert!(opt.improvement_over(&unopt) < 0.0);
    }

    #[test]
    fn speedup_math() {
        let five_workers = report(40);
        assert!((five_workers.speedup_from(200) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_guards() {
        let z = report(0);
        assert_eq!(z.improvement_over(&report(10)), 0.0);
        assert_eq!(z.speedup_from(100), 0.0);
    }

    #[test]
    fn summary_mentions_recovery_only_when_present() {
        let mut r = report(100);
        assert!(!r.summary().contains("recovery"));
        r.recovery
            .push("parallel run failed; recovered via sequential fallback".into());
        let s = r.summary();
        assert!(s.contains("1 recovery event(s)"), "{s}");
        assert!(s.contains("sequential fallback"), "{s}");
    }

    #[test]
    fn summary_shows_memo_hit_rate_only_when_memo_ran() {
        let mut r = report(100);
        assert!(!r.summary().contains("memo hit-rate"), "{}", r.summary());
        r.stats.memo_hits = 3;
        r.stats.memo_misses = 1;
        let s = r.summary();
        assert!(s.contains("memo hit-rate 75.0% (3/4 lookups)"), "{s}");
    }

    #[test]
    fn zero_lookup_hit_rate_is_none_and_never_nan() {
        // Regression: 0 hits + 0 misses must not render a `NaN`/`-nan%`
        // hit rate — the helper reports None and the summary stays quiet.
        let r = report(100);
        assert_eq!(r.memo_hit_rate(), None);
        let s = r.summary();
        assert!(!s.to_lowercase().contains("nan"), "{s}");
        assert!(!s.contains("hit-rate"), "{s}");

        // All-miss runs are 0.0, not None (lookups did happen).
        let mut misses = report(100);
        misses.stats.memo_misses = 5;
        assert_eq!(misses.memo_hit_rate(), Some(0.0));
        assert!(misses
            .summary()
            .contains("memo hit-rate 0.0% (0/5 lookups)"));
    }

    #[test]
    fn summary_flags_incomplete_trace_and_appends_profile() {
        use ace_runtime::trace::{EventKind, Trace, TraceEvent};
        let mut r = report(100);
        assert!(!r.summary().contains("trace incomplete"));

        // A complete trace with cost to attribute: profile table appended,
        // no incompleteness note.
        r.trace = Some(Trace {
            events: vec![
                TraceEvent {
                    t: 0,
                    worker: 0,
                    kind: EventKind::Publish {
                        node: 1,
                        epoch: 0,
                        alts: 2,
                        pred: "p/1".into(),
                    },
                },
                TraceEvent {
                    t: 40,
                    worker: 0,
                    kind: EventKind::QuantumEnd { cost: 40 },
                },
            ],
            dropped: 0,
        });
        let s = r.summary();
        assert!(!s.contains("trace incomplete"), "{s}");
        assert!(s.contains("frames by virtual cost"), "{s}");
        assert!(s.contains("run;p/1"), "{s}");

        // Dropped events: the summary says so explicitly.
        r.trace.as_mut().unwrap().dropped = 7;
        let s = r.summary();
        assert!(s.contains("trace incomplete (7 event(s) dropped)"), "{s}");
    }

    #[test]
    fn steal_cost_math() {
        let mut r = report(100);
        assert_eq!(r.steal_cost_per_claim(), None, "no claims, no ratio");
        r.stats.tree_visits = 12;
        r.stats.alternatives_claimed = 4;
        assert_eq!(r.steal_cost_per_claim(), Some(3.0));
    }
}
