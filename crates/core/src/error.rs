//! Structured errors for the query path.
//!
//! Engines report failures as strings with stable prefixes (see
//! [`ace_runtime::fault`]); [`AceError::classify`] turns them into a typed
//! error so callers — and [`Ace::run_query`](crate::Ace::run_query)'s
//! sequential-fallback logic — can distinguish *program* errors (which must
//! surface) from *infrastructure* failures (worker death, injected faults,
//! driver aborts) that graceful degradation can recover from.

use ace_runtime::fault::{ABORT_ERROR_PREFIX, FAULT_ERROR_PREFIX, PANIC_ERROR_PREFIX};

/// Stable prefix on admission-control rejections from the serving layer.
pub const OVERLOAD_ERROR_PREFIX: &str = "overloaded:";

/// Why a query run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AceError {
    /// The query text did not parse. Not recoverable — a sequential rerun
    /// would fail identically.
    Parse(String),
    /// The program itself raised an error (type error, bad goal, engine
    /// misuse). Not recoverable — the error is the answer.
    Program(String),
    /// The driver aborted the run: virtual-time limit, livelock guard, or
    /// wall-clock deadline. Recoverable by sequential fallback.
    Aborted(String),
    /// A worker thread died mid-run; the driver contained the panic.
    /// Recoverable by sequential fallback.
    WorkerPanicked(String),
    /// An injected fault (or the cooperative cancellation path) killed the
    /// run. Recoverable by sequential fallback.
    FaultInjected(String),
    /// The serving layer refused the query at admission: too many queries
    /// already in flight. Not recoverable by sequential fallback — the
    /// engine never ran; the client should back off and resubmit.
    Overloaded(String),
}

impl AceError {
    /// Classify an engine error string by its stable prefix.
    pub fn classify(msg: String) -> AceError {
        if msg.starts_with("query parse error") || msg.starts_with("parse error") {
            AceError::Parse(msg)
        } else if msg.starts_with(PANIC_ERROR_PREFIX) {
            AceError::WorkerPanicked(msg)
        } else if msg.starts_with(ABORT_ERROR_PREFIX) {
            AceError::Aborted(msg)
        } else if msg.starts_with(FAULT_ERROR_PREFIX) {
            AceError::FaultInjected(msg)
        } else if msg.starts_with(OVERLOAD_ERROR_PREFIX) {
            AceError::Overloaded(msg)
        } else {
            AceError::Program(msg)
        }
    }

    /// The underlying message (what the legacy string API returned).
    pub fn message(&self) -> &str {
        match self {
            AceError::Parse(m)
            | AceError::Program(m)
            | AceError::Aborted(m)
            | AceError::WorkerPanicked(m)
            | AceError::FaultInjected(m)
            | AceError::Overloaded(m) => m,
        }
    }

    /// True when a sequential rerun of the same query can still produce
    /// the answer: the failure was in the parallel infrastructure, not in
    /// the program.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            AceError::Aborted(_) | AceError::WorkerPanicked(_) | AceError::FaultInjected(_)
        )
    }
}

impl std::fmt::Display for AceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for AceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_prefix() {
        assert!(matches!(
            AceError::classify("query parse error: x".into()),
            AceError::Parse(_)
        ));
        assert!(matches!(
            AceError::classify("worker panic: worker 2 panicked: boom".into()),
            AceError::WorkerPanicked(_)
        ));
        assert!(matches!(
            AceError::classify("driver aborted: livelock".into()),
            AceError::Aborted(_)
        ));
        assert!(matches!(
            AceError::classify("fault: injected cancellation on worker 0".into()),
            AceError::FaultInjected(_)
        ));
        assert!(matches!(
            AceError::classify("overloaded: 32 queries in flight".into()),
            AceError::Overloaded(_)
        ));
        assert!(matches!(
            AceError::classify("type error: expected evaluable".into()),
            AceError::Program(_)
        ));
    }

    #[test]
    fn recoverability_split() {
        assert!(!AceError::classify("query parse error: x".into()).is_recoverable());
        assert!(!AceError::classify("type error".into()).is_recoverable());
        assert!(AceError::classify("driver aborted: deadline".into()).is_recoverable());
        assert!(AceError::classify("worker panic: w0".into()).is_recoverable());
        assert!(AceError::classify("fault: run cancelled".into()).is_recoverable());
        assert!(!AceError::classify("overloaded: full".into()).is_recoverable());
    }

    #[test]
    fn display_is_the_raw_message() {
        let e = AceError::classify("type error: oops".into());
        assert_eq!(e.to_string(), "type error: oops");
    }
}
