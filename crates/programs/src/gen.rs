//! Deterministic input generators: render benchmark inputs as Prolog text.
//!
//! All pseudo-randomness comes from a fixed-seed linear congruential
//! generator so every run of every experiment sees identical inputs.

/// Minimal deterministic LCG (Numerical Recipes constants).
pub struct Lcg(u64);

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Lcg(seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493))
    }

    pub fn next_u32(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }

    /// Uniform in `0..bound`.
    pub fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound.max(1)
    }
}

/// `[a, b, c, ...]` of `n` pseudo-random ints in 0..100.
pub fn int_list(n: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n).map(|_| rng.below(100).to_string()).collect();
    format!("[{}]", items.join(","))
}

/// `[1, 2, ..., n]`.
pub fn range_list(n: usize) -> String {
    let items: Vec<String> = (1..=n).map(|i| i.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// The wide two-level or-tree program: `n` top-level alternatives, each
/// fanning into 8 inner alternatives, each leaf paying a fixed
/// deterministic walk. The top or-node is `n` clauses wide, so a single
/// publication feeds hundreds of thieves — the shape the 64–512 worker
/// scaling grid needs to separate scheduler overhead from work shortage.
pub fn wide_tree(n: usize) -> String {
    let mut src = String::new();
    for i in 1..=n {
        src.push_str(&format!("alt1({i}).\n"));
    }
    for i in 1..=8 {
        src.push_str(&format!("alt2({i}).\n"));
    }
    src.push_str("walk([]).\nwalk([_|T]) :- walk(T).\n");
    src.push_str(&format!("work :- walk({}).\n", range_list(12)));
    src.push_str("wt(X, Y) :- alt1(X), alt2(Y), work.\n");
    src
}

/// `edge/2` facts of an `n`-node directed cycle with chords from every
/// node two and five steps ahead. The cycle makes every node reachable
/// from every node, so the tabled closure from any start has exactly `n`
/// answers — and ordinary left-recursive resolution never terminates.
/// The chords make every answer re-derivable several ways, so the cold
/// fixpoint does real duplicate-suppression work while the completed
/// table replays in O(n).
pub fn cyclic_graph(n: usize) -> String {
    let n = n.max(2);
    let mut out = String::new();
    for i in 0..n {
        out.push_str(&format!("edge(n{i}, n{}).\n", (i + 1) % n));
        out.push_str(&format!("edge(n{i}, n{}).\n", (i + 2) % n));
        out.push_str(&format!("edge(n{i}, n{}).\n", (i + 5) % n));
    }
    out
}

/// Token facts for the string `a + a + ... + a` of `n` operands:
/// `tok(Pos, Kind)` plus successor facts `s(Pos, Pos1)` (the corpus
/// avoids arithmetic builtins inside tabled clauses). Operand `k` sits
/// at position `2k`, the `+` separators at odd positions.
pub fn token_string(n: usize) -> String {
    let n = n.max(1);
    let mut out = String::new();
    for k in 0..n {
        let p = 2 * k;
        out.push_str(&format!("tok({p}, a).\n"));
        out.push_str(&format!("s({p}, {}).\n", p + 1));
        if k + 1 < n {
            out.push_str(&format!("tok({}, plus).\n", p + 1));
            out.push_str(&format!("s({}, {}).\n", p + 1, p + 2));
        }
    }
    out
}

/// `par/2` (child-to-parent) and `n/1` facts of a complete binary tree
/// of depth `d`, nodes `p1..p{2^(d+1)-1}` numbered heap-style.
pub fn samegen_tree(d: usize) -> String {
    let d = d.min(12);
    let total = (1usize << (d + 1)) - 1;
    let mut out = String::new();
    for c in 2..=total {
        out.push_str(&format!("par(p{c}, p{}).\n", c / 2));
    }
    for v in 1..=total {
        out.push_str(&format!("n(p{v}).\n"));
    }
    out
}

/// `k` sublists of `m` pseudo-random digits 0..9.
pub fn list_of_lists(k: usize, m: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let subs: Vec<String> = (0..k)
        .map(|_| {
            let items: Vec<String> = (0..m).map(|_| rng.below(10).to_string()).collect();
            format!("[{}]", items.join(","))
        })
        .collect();
    format!("[{}]", subs.join(","))
}

/// `rows x cols` matrix of small ints as a list of row lists.
pub fn matrix(rows: usize, cols: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let rs: Vec<String> = (0..rows)
        .map(|_| {
            let items: Vec<String> = (0..cols).map(|_| rng.below(10).to_string()).collect();
            format!("[{}]", items.join(","))
        })
        .collect();
    format!("[{}]", rs.join(","))
}

/// Balanced arithmetic expression of the pderiv benchmark:
/// depth `d` over `x` and small constants, alternating plus/times.
pub fn expr(d: usize) -> String {
    fn go(d: usize, idx: &mut u32) -> String {
        if d == 0 {
            *idx += 1;
            if idx.is_multiple_of(2) {
                "x".to_owned()
            } else {
                format!("n({})", *idx % 7)
            }
        } else {
            let l = go(d - 1, idx);
            let r = go(d - 1, idx);
            if d.is_multiple_of(2) {
                format!("plus({l}, {r})")
            } else {
                format!("times({l}, {r})")
            }
        }
    }
    let mut idx = 0;
    go(d, &mut idx)
}

/// Balanced binary tree of depth `d` with small leaf values for the
/// annotator benchmark.
pub fn tree(d: usize, seed: u64) -> String {
    fn go(d: usize, rng: &mut Lcg) -> String {
        if d == 0 {
            format!("leaf({})", rng.below(50))
        } else {
            let l = go(d - 1, rng);
            let r = go(d - 1, rng);
            format!("node({l}, {r})")
        }
    }
    let mut rng = Lcg::new(seed);
    go(d, &mut rng)
}

/// `k` clusters of `m` points each for bt_cluster.
pub fn clusters(k: usize, m: usize) -> String {
    let mut rng = Lcg::new(97);
    let cs: Vec<String> = (0..k)
        .map(|i| {
            let center = (i * 10) % 100;
            let pts: Vec<String> = (0..m).map(|_| rng.below(100).to_string()).collect();
            format!("cluster({center}, [{}])", pts.join(","))
        })
        .collect();
    format!("[{}]", cs.join(","))
}

/// `parent/2` facts of a binary family tree of depth `d` (ancestors).
pub fn family(d: usize) -> String {
    let mut out = String::new();
    let last_parent = (1usize << d.min(16)) - 1;
    for p in 1..=last_parent {
        out.push_str(&format!("parent(p{p}, p{}).\n", 2 * p));
        out.push_str(&format!("parent(p{p}, p{}).\n", 2 * p + 1));
    }
    out
}

/// `n` independent expressions of depth `d` (parallel backward execution).
pub fn exprs(n: usize, d: usize) -> String {
    let items: Vec<String> = (0..n).map(|_| expr(d)).collect();
    format!("[{}]", items.join(","))
}

/// `n` independent trees of depth `d`.
pub fn trees(n: usize, d: usize, seed: u64) -> String {
    let items: Vec<String> = (0..n).map(|i| tree(d, seed + i as u64)).collect();
    format!("[{}]", items.join(","))
}

/// `n` independent `rows x cols` matrices.
pub fn matrices(n: usize, rows: usize, cols: usize, seed: u64) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| matrix(rows, cols, seed + i as u64))
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(int_list(5, 7), int_list(5, 7));
        assert_ne!(int_list(5, 7), int_list(5, 8));
    }

    #[test]
    fn shapes() {
        assert_eq!(range_list(3), "[1,2,3]");
        assert!(matrix(2, 3, 1).starts_with("[["));
        assert_eq!(expr(0), "n(1)");
        assert!(expr(2).starts_with("plus("));
        assert!(tree(1, 3).starts_with("node(leaf("));
        assert!(clusters(1, 2).starts_with("[cluster(0, ["));
    }

    #[test]
    fn family_tree_size() {
        let f = family(2);
        // parents 1..=3, two facts each
        assert_eq!(f.lines().count(), 6);
        assert!(f.contains("parent(p3, p7)."));
    }
}
