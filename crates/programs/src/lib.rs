//! # ace-programs — the benchmark corpus
//!
//! Faithful re-creations of the benchmark programs the paper's evaluation
//! uses (its sources were never published; these are the classic programs
//! the names refer to, annotated with `&` where &ACE exploits independent
//! and-parallelism). Each [`Benchmark`] bundles the Prolog source, a
//! parameterized query generator, the engine mode it targets and the
//! tables/figures it appears in.

pub mod gen;

use ace_core::Mode;

/// One benchmark of the corpus.
#[derive(Clone)]
pub struct Benchmark {
    /// Corpus name (the paper's benchmark name where it has one).
    pub name: &'static str,
    /// Which engine the paper evaluates it on.
    pub mode: Mode,
    /// Produce the full program text for a given size parameter.
    pub program: fn(usize) -> String,
    /// Produce the query for a given size parameter.
    pub query: fn(usize) -> String,
    /// Size used by tests (small) — benches use per-experiment sizes.
    pub test_size: usize,
    /// Size used when reproducing the paper tables.
    pub bench_size: usize,
    /// Ask for every solution (search benchmarks) or just the first.
    pub all_solutions: bool,
    /// Paper tables/figures this benchmark appears in.
    pub appears_in: &'static str,
    pub description: &'static str,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

const LIB: &str = include_str!("../pl/lists.pl");
const MAP: &str = include_str!("../pl/map.pl");
const OCCUR: &str = include_str!("../pl/occur.pl");
const MATRIX: &str = include_str!("../pl/matrix.pl");
const PDERIV: &str = include_str!("../pl/pderiv.pl");
const ANNOTATOR: &str = include_str!("../pl/annotator.pl");
const TAKEUCHI: &str = include_str!("../pl/takeuchi.pl");
const HANOI: &str = include_str!("../pl/hanoi.pl");
const BT_CLUSTER: &str = include_str!("../pl/bt_cluster.pl");
const QUICKSORT: &str = include_str!("../pl/quicksort.pl");
const QUEENS: &str = include_str!("../pl/queens.pl");
const PUZZLE: &str = include_str!("../pl/puzzle.pl");
const MEMBERS: &str = include_str!("../pl/members.pl");
const MAPS: &str = include_str!("../pl/maps.pl");
const ANCESTORS: &str = include_str!("../pl/ancestors.pl");

fn with_lib(src: &str) -> String {
    format!("{LIB}\n{src}")
}

/// The corpus. Names with a `1`/`2`/`_bt` suffix are the paper's variants
/// (forward vs backward execution, alternative formulations).
pub fn all() -> Vec<Benchmark> {
    vec![
        // ------------------------- and-parallel -------------------------
        Benchmark {
            name: "map2",
            mode: Mode::AndParallel,
            program: |_| with_lib(MAP),
            query: |n| format!("map({}, Out)", gen::int_list(n, 7)),
            test_size: 6,
            bench_size: 40,
            all_solutions: false,
            appears_in: "Table 1",
            description: "deterministic parallel list map (forward execution)",
        },
        Benchmark {
            name: "map1",
            mode: Mode::AndParallel,
            program: |_| with_lib(MAP),
            query: |n| format!("pmap_bt({})", gen::list_of_lists(n, 6, 3)),
            test_size: 2,
            bench_size: 12,
            all_solutions: false,
            appears_in: "Table 2, Figure 5 (map)",
            description: "parallel over independent sublists, each \
                          exhausting a nondeterministic map (backward \
                          execution)",
        },
        Benchmark {
            name: "occur",
            mode: Mode::AndParallel,
            program: |_| with_lib(OCCUR),
            query: |n| format!("poccur({}, 5, T)", gen::list_of_lists(n, 24, 11)),
            test_size: 3,
            bench_size: 24,
            all_solutions: false,
            appears_in: "Tables 1 & 4; Table 5/Figure 8 as poccur",
            description: "parallel occurrence counting over a list of lists",
        },
        Benchmark {
            name: "matrix",
            mode: Mode::AndParallel,
            program: |_| with_lib(MATRIX),
            query: |n| {
                format!(
                    "matrix({}, {}, C)",
                    gen::matrix(n, n, 5),
                    gen::matrix(n, n, 9)
                )
            },
            test_size: 3,
            bench_size: 14,
            all_solutions: false,
            appears_in: "Tables 4 & 5 (matrix mult)",
            description: "parallel matrix multiplication, one subgoal per row",
        },
        Benchmark {
            name: "matrix_bt",
            mode: Mode::AndParallel,
            program: |_| with_lib(MATRIX),
            query: |n| {
                format!(
                    "pmatrix_bt({}, {})",
                    gen::matrices(n, 4, 4, 5),
                    gen::matrix(4, 4, 9)
                )
            },
            test_size: 2,
            bench_size: 10,
            all_solutions: false,
            appears_in: "Table 2, Figure 5 (matrix)",
            description: "matrix multiplication with nondeterministically \
                          scaled rows, exhaustive redo (backward execution)",
        },
        Benchmark {
            name: "pderiv",
            mode: Mode::AndParallel,
            program: |_| with_lib(PDERIV),
            query: |n| format!("d({}, D)", gen::expr(n)),
            test_size: 3,
            bench_size: 9,
            all_solutions: false,
            appears_in: "derivative core of Table 2 / Figure 5",
            description: "parallel symbolic differentiation",
        },
        Benchmark {
            name: "pderiv_bt",
            mode: Mode::AndParallel,
            program: |_| with_lib(PDERIV),
            query: |n| format!("ppderiv_bt({})", gen::exprs(n, 3)),
            test_size: 2,
            bench_size: 10,
            all_solutions: false,
            appears_in: "Table 2, Figure 5 (pderiv)",
            description: "differentiate then exhaust overlapping \
                          simplification rules (backward execution)",
        },
        Benchmark {
            name: "annotator",
            mode: Mode::AndParallel,
            program: |_| with_lib(ANNOTATOR),
            query: |n| format!("ann({}, A)", gen::tree(n, 3)),
            test_size: 3,
            bench_size: 10,
            all_solutions: false,
            appears_in: "Tables 2, 4 & 5; Figure 8",
            description: "parallel tree annotation with subtree sizes",
        },
        Benchmark {
            name: "annotator_bt",
            mode: Mode::AndParallel,
            program: |_| with_lib(ANNOTATOR),
            query: |n| format!("pann_bt({})", gen::trees(n, 2, 3)),
            test_size: 2,
            bench_size: 10,
            all_solutions: false,
            appears_in: "Table 2 (annotator, backward)",
            description: "nondeterministic annotation, exhaustive redo",
        },
        Benchmark {
            name: "takeuchi",
            mode: Mode::AndParallel,
            program: |_| with_lib(TAKEUCHI),
            query: |n| format!("tak({}, {}, 0, A)", n, n / 2),
            test_size: 6,
            bench_size: 10,
            all_solutions: false,
            appears_in: "Tables 4 & 5",
            description: "Takeuchi function, three recursive calls in parallel",
        },
        Benchmark {
            name: "hanoi",
            mode: Mode::AndParallel,
            program: |_| with_lib(HANOI),
            query: |n| format!("hanoi({n}, M)"),
            test_size: 4,
            bench_size: 10,
            all_solutions: false,
            appears_in: "Table 4, Figure 8",
            description: "Towers of Hanoi, the two transfers in parallel",
        },
        Benchmark {
            name: "bt_cluster",
            mode: Mode::AndParallel,
            program: |_| with_lib(BT_CLUSTER),
            query: |n| format!("bt_cluster({}, S)", gen::clusters(n, 30)),
            test_size: 3,
            bench_size: 16,
            all_solutions: false,
            appears_in: "Tables 4 & 5",
            description: "parallel cluster scoring",
        },
        Benchmark {
            name: "quick_sort",
            mode: Mode::AndParallel,
            program: |_| with_lib(QUICKSORT),
            query: |n| format!("qsort({}, S)", gen::int_list(n, 13)),
            test_size: 8,
            bench_size: 120,
            all_solutions: false,
            appears_in: "Table 5",
            description: "parallel quicksort",
        },
        // ------------------------- or-parallel --------------------------
        Benchmark {
            name: "queen1",
            mode: Mode::OrParallel,
            program: |_| with_lib(QUEENS),
            query: |n| format!("queens1({n}, Qs)"),
            test_size: 5,
            bench_size: 7,
            all_solutions: true,
            appears_in: "Table 3",
            description: "N-queens via permutation construction",
        },
        Benchmark {
            name: "queen2",
            mode: Mode::OrParallel,
            program: |_| with_lib(QUEENS),
            query: |n| format!("queens2({n}, Qs)"),
            test_size: 5,
            bench_size: 6,
            all_solutions: true,
            appears_in: "Table 3",
            description: "N-queens via per-column row choice",
        },
        Benchmark {
            name: "puzzle",
            mode: Mode::OrParallel,
            program: |_| with_lib(PUZZLE),
            query: |_| "puzzle(Cells)".to_owned(),
            test_size: 1,
            bench_size: 1,
            all_solutions: true,
            appears_in: "Table 3",
            description: "3x3 magic square by constrained selection",
        },
        Benchmark {
            name: "ancestors",
            mode: Mode::OrParallel,
            program: |n| format!("{}\n{}", with_lib(ANCESTORS), gen::family(n)),
            query: |_| "anc(p1, X)".to_owned(),
            test_size: 4,
            bench_size: 10,
            all_solutions: true,
            appears_in: "Table 3",
            description: "all descendants in a generated family tree",
        },
        Benchmark {
            name: "members",
            mode: Mode::OrParallel,
            program: |_| with_lib(MEMBERS),
            query: |n| format!("triples({}, {}, T)", gen::range_list(n), n + 2),
            test_size: 6,
            bench_size: 18,
            all_solutions: true,
            appears_in: "Table 3",
            description: "nested member/2 search for triples with a target sum",
        },
        Benchmark {
            name: "wide_tree",
            mode: Mode::OrParallel,
            program: |n| gen::wide_tree(n),
            query: |_| "wt(X, Y)".to_owned(),
            test_size: 4,
            bench_size: 64,
            all_solutions: true,
            appears_in: "scaling grid (BENCH_or_topology)",
            description: "wide two-level or-tree (n x 8 alternatives, fixed \
                          leaf work) for the 64-512 worker scaling wall",
        },
        Benchmark {
            name: "maps",
            mode: Mode::OrParallel,
            program: |_| with_lib(MAPS),
            query: |_| "maps(Cols)".to_owned(),
            test_size: 1,
            bench_size: 1,
            all_solutions: true,
            appears_in: "Table 3",
            description: "4-colouring of a 10-region map",
        },
    ]
}

/// Look a benchmark up by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

// ---------------------------- tabled corpus ----------------------------

/// A tabled corpus program: left or mutual recursion that ordinary
/// resolution cannot evaluate (or cannot evaluate without exponential
/// recomputation), paired with an exact finite oracle answer count.
///
/// Deliberately *not* part of [`all()`]: the registry's oracle tests run
/// every benchmark with tabling off, and these programs only terminate
/// under SLG evaluation. Use [`tabled()`] / [`tabled_program()`] and run
/// with a table space attached (`EngineConfig::with_table`).
#[derive(Clone)]
pub struct TabledProgram {
    pub name: &'static str,
    /// Full program text (`:- table` directive included) at size `n`.
    pub program: fn(usize) -> String,
    /// The query at size `n`.
    pub query: fn(usize) -> String,
    /// Exact number of distinct answers the query has at size `n`.
    pub oracle: fn(usize) -> usize,
    /// Size used by tests (small).
    pub test_size: usize,
    /// Size used by the tabling benchmark workload.
    pub bench_size: usize,
    pub description: &'static str,
}

impl std::fmt::Debug for TabledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabledProgram")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

const TABLED_PATH: &str = "\
:- table(path/2).
path(X, Y) :- path(X, Z), edge(Z, Y).
path(X, Y) :- edge(X, Y).
";

const TABLED_GRAMMAR: &str = "\
:- table(e/2).
e(I, J) :- e(I, K), tok(K, plus), s(K, K1), t(K1, J).
e(I, J) :- t(I, J).
t(I, J) :- tok(I, a), s(I, J).
";

const TABLED_SAMEGEN: &str = "\
:- table(sg/2).
sg(X, X) :- n(X).
sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
";

/// The tabled corpus: three classic programs tabling makes terminating
/// (left-recursive closure, left-recursive grammar) or tractable
/// (same-generation with shared subgoals).
pub fn tabled() -> Vec<TabledProgram> {
    vec![
        TabledProgram {
            name: "tabled_path",
            program: |n| format!("{TABLED_PATH}{}", gen::cyclic_graph(n)),
            query: |_| "path(n0, X)".to_owned(),
            // The cycle closes over every node.
            oracle: |n| n.max(2),
            test_size: 8,
            bench_size: 48,
            description: "left-recursive transitive closure over a cyclic \
                          graph: nonterminating without tabling",
        },
        TabledProgram {
            name: "tabled_grammar",
            program: |n| format!("{TABLED_GRAMMAR}{}", gen::token_string(n)),
            query: |_| "e(0, J)".to_owned(),
            // One parse span per `a + a + ... + a` prefix.
            oracle: |n| n.max(1),
            test_size: 6,
            bench_size: 40,
            description: "left-recursive expression grammar parsing \
                          `a + a + ... + a`: nonterminating without tabling",
        },
        TabledProgram {
            name: "tabled_samegen",
            program: |d| format!("{TABLED_SAMEGEN}{}", gen::samegen_tree(d)),
            query: |d| format!("sg(p{}, Y)", 1usize << d.min(12)),
            // Every node at the leaf level is same-generation.
            oracle: |d| 1usize << d.min(12),
            test_size: 4,
            bench_size: 9,
            description: "same-generation datalog over a complete binary \
                          tree: exponential re-derivation without tabling",
        },
    ]
}

/// Look a tabled program up by name.
pub fn tabled_program(name: &str) -> Option<TabledProgram> {
    tabled().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::Ace;

    #[test]
    fn corpus_is_complete() {
        let names: Vec<&str> = all().iter().map(|b| b.name).collect();
        for expected in [
            "map1",
            "map2",
            "occur",
            "matrix",
            "matrix_bt",
            "pderiv",
            "pderiv_bt",
            "annotator",
            "annotator_bt",
            "takeuchi",
            "hanoi",
            "bt_cluster",
            "quick_sort",
            "queen1",
            "queen2",
            "puzzle",
            "ancestors",
            "members",
            "wide_tree",
            "maps",
        ] {
            assert!(names.contains(&expected), "missing benchmark {expected}");
        }
    }

    #[test]
    fn every_program_parses_and_loads() {
        for b in all() {
            let src = (b.program)(b.test_size);
            Ace::load(&src).unwrap_or_else(|e| panic!("benchmark {} failed to load: {e}", b.name));
        }
    }

    #[test]
    fn every_query_parses() {
        for b in all() {
            let q = (b.query)(b.test_size);
            let mut heap = ace_logic::Heap::new();
            ace_logic::parse_term(&mut heap, &q).unwrap_or_else(|e| {
                panic!("benchmark {} query {q:?} failed to parse: {e}", b.name)
            });
        }
    }

    #[test]
    fn every_benchmark_solves_sequentially() {
        for b in all() {
            let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
            let sols = ace
                .sequential_solutions(&(b.query)(b.test_size))
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            assert!(
                !sols.is_empty(),
                "benchmark {} produced no solutions at test size",
                b.name
            );
        }
    }

    #[test]
    fn known_answers() {
        // quicksort really sorts
        let b = benchmark("quick_sort").unwrap();
        let ace = Ace::load(&(b.program)(5)).unwrap();
        let sols = ace.sequential_solutions("qsort([3,1,2], S)").unwrap();
        assert_eq!(sols, vec!["S=[1,2,3]"]);

        // hanoi(3) makes 7 moves
        let b = benchmark("hanoi").unwrap();
        let ace = Ace::load(&(b.program)(3)).unwrap();
        let sols = ace.sequential_solutions("hanoi(3, M)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].matches("mv(").count(), 7);

        // tak(6,3,0) per definition
        let b = benchmark("takeuchi").unwrap();
        let ace = Ace::load(&(b.program)(6)).unwrap();
        let sols = ace.sequential_solutions("tak(6, 3, 0, A)").unwrap();
        assert_eq!(sols, vec!["A=3"]); // tak(6,3,0) = 3 (computed by defn)

        // 6-queens has 4 solutions; magic square has 8
        let b = benchmark("queen1").unwrap();
        let ace = Ace::load(&(b.program)(6)).unwrap();
        assert_eq!(ace.sequential_solutions("queens1(6, Qs)").unwrap().len(), 4);
        let b = benchmark("puzzle").unwrap();
        let ace = Ace::load(&(b.program)(1)).unwrap();
        assert_eq!(ace.sequential_solutions("puzzle(C)").unwrap().len(), 8);
    }

    #[test]
    fn tabled_corpus_is_complete_and_loads() {
        let names: Vec<&str> = tabled().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["tabled_path", "tabled_grammar", "tabled_samegen"]
        );
        for p in tabled() {
            let src = (p.program)(p.test_size);
            Ace::load(&src).unwrap_or_else(|e| panic!("{} failed to load: {e}", p.name));
            let q = (p.query)(p.test_size);
            let mut heap = ace_logic::Heap::new();
            ace_logic::parse_term(&mut heap, &q)
                .unwrap_or_else(|e| panic!("{} query {q:?} failed to parse: {e}", p.name));
            assert!(tabled_program(p.name).is_some());
        }
    }

    #[test]
    fn tabled_programs_terminate_with_their_oracle_answer_sets() {
        use ace_runtime::{EngineConfig, TableConfig};
        for p in tabled() {
            let ace = Ace::load(&(p.program)(p.test_size)).unwrap();
            let cfg = EngineConfig::default()
                .all_solutions()
                .with_table(TableConfig::enabled());
            let report = ace
                .run(Mode::Sequential, &(p.query)(p.test_size), &cfg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", p.name));
            assert_eq!(
                report.solutions.len(),
                (p.oracle)(p.test_size),
                "{} answer count at test size",
                p.name
            );
            // Tabling dedups structurally: the answer set has no repeats.
            let mut uniq = report.solutions.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), report.solutions.len(), "{} dedup", p.name);
        }
    }

    #[test]
    fn tabled_oracles_scale_with_size() {
        use ace_runtime::{EngineConfig, TableConfig};
        // Spot-check a second size so the oracle functions are not
        // accidentally constants.
        for (name, size) in [
            ("tabled_path", 12),
            ("tabled_grammar", 9),
            ("tabled_samegen", 5),
        ] {
            let p = tabled_program(name).unwrap();
            let ace = Ace::load(&(p.program)(size)).unwrap();
            let cfg = EngineConfig::default()
                .all_solutions()
                .with_table(TableConfig::enabled());
            let report = ace.run(Mode::Sequential, &(p.query)(size), &cfg).unwrap();
            assert_eq!(
                report.solutions.len(),
                (p.oracle)(size),
                "{name} at size {size}"
            );
        }
    }

    #[test]
    fn queen_formulations_agree() {
        let b = benchmark("queen1").unwrap();
        let ace = Ace::load(&(b.program)(6)).unwrap();
        let n1 = ace.sequential_solutions("queens1(6, Qs)").unwrap().len();
        let n2 = ace.sequential_solutions("queens2(6, Qs)").unwrap().len();
        assert_eq!(n1, n2);
    }
}
