% annotator — annotate every tree node with its subtree size, subtrees in
% parallel (paper Tables 2, 4 and 5; Figure 8).
ann(leaf(V), leaf(V, 1)).
ann(node(L, R), node(AL, AR, S)) :-
    ( ann(L, AL) & ann(R, AR) ),
    size_of(AL, SL), size_of(AR, SR), S is SL + SR + 1.

size_of(leaf(_, S), S).
size_of(node(_, _, S), S).

% -- backward execution: two annotation styles per leaf ------------------
ann_nd(leaf(V), leaf(W, 1)) :- W is V * 2.
ann_nd(leaf(V), leaf(W, 1)) :- W is V * 2 + 1.
ann_nd(node(L, R), node(AL, AR, S)) :-
    ( ann_nd(L, AL) & ann_nd(R, AR) ),
    size_of(AL, SL), size_of(AR, SR), S is SL + SR + 1.

reject(_) :- fail.
annotator_bt(T) :- ann_nd(T, A), reject(A), fail.
annotator_bt(_).

% Parallel backward execution over independent trees.
pann_bt([]).
pann_bt([T|Ts]) :- annotator_bt(T) & pann_bt(Ts).
