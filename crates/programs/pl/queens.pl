% queens — two N-queens formulations (paper Table 3: Queen1, Queen2).
%
% queen1: permutation construction via sel/3.
queens1(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).

place([], Acc, Acc).
place(Un, Acc, Qs) :-
    sel(Q, Un, Rest), safe(Q, 1, Acc), place(Rest, [Q|Acc], Qs).

safe(_, _, []).
safe(Q, D, [P|Ps]) :-
    Q =\= P + D, Q =\= P - D, D1 is D + 1, safe(Q, D1, Ps).

% queen2: column-by-column row choice via member/2 (rows may repeat in the
% candidate pool; the vertical constraint prunes them).
queens2(N, Qs) :- range(1, N, Rows), q2(N, Rows, [], Qs).

q2(0, _, Acc, Acc).
q2(C, Rows, Acc, Qs) :-
    C > 0, member(R, Rows), ok(R, 1, Acc),
    C1 is C - 1, q2(C1, Rows, [R|Acc], Qs).

ok(_, _, []).
ok(R, D, [P|Ps]) :-
    R =\= P, R =\= P + D, R =\= P - D, D1 is D + 1, ok(R, D1, Ps).
