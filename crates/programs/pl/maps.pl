% maps — map colouring by generate-and-test (paper Table 3). Colour a
% 10-region map with 4 colours such that neighbours differ.
col(r). col(g). col(b). col(y).

maps([PT, ES, FR, DE, CH, IT, AT, NL, BE, LU]) :-
    col(PT),
    col(ES), ES \== PT,
    col(FR), FR \== ES,
    col(BE), BE \== FR,
    col(LU), LU \== FR, LU \== BE,
    col(DE), DE \== FR, DE \== BE, DE \== LU,
    col(NL), NL \== BE, NL \== DE,
    col(CH), CH \== FR, CH \== DE,
    col(IT), IT \== FR, IT \== CH,
    col(AT), AT \== DE, AT \== CH, AT \== IT.
