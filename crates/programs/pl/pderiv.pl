% pderiv — parallel symbolic differentiation (paper Table 2, Figure 5).
d(x, n(1)).
d(n(_), n(0)).
d(plus(A, B), plus(DA, DB)) :- d(A, DA) & d(B, DB).
d(times(A, B), plus(times(DA, B), times(A, DB))) :- d(A, DA) & d(B, DB).

% -- backward execution: nondeterministic derivative rules ---------------
% Two representations for d(x): the exhaustive enumeration of their
% combinations is the backward-execution workload; the d_nd tree is a
% trailing parallel call, so LPCO flattens it (Table 2 / Figure 5).
d_nd(x, n(1)).
d_nd(x, one).
d_nd(n(_), n(0)).
d_nd(plus(A, B), plus(DA, DB)) :- d_nd(A, DA) & d_nd(B, DB).
d_nd(times(A, B), plus(times(DA, B), times(A, DB))) :-
    d_nd(A, DA) & d_nd(B, DB).

reject(_) :- fail.
pderiv_bt(E) :- d_nd(E, DE), reject(DE), fail.
pderiv_bt(_).

% Simplification with overlapping rules (library extra; not part of the
% reproduced tables because its trailing tests block LPCO by design).
simp(x, x).
simp(n(X), n(X)).
simp(plus(A, B), S) :- ( simp(A, SA) & simp(B, SB) ), mkplus(SA, SB, S).
simp(times(A, B), S) :- ( simp(A, SA) & simp(B, SB) ), mktimes(SA, SB, S).

mkplus(n(0), X, X).
mkplus(X, n(0), X).
mkplus(X, Y, plus(X, Y)).

mktimes(X, Y, times(X, Y)).

% Parallel backward execution over independent expressions.
ppderiv_bt([]).
ppderiv_bt([E|Es]) :- pderiv_bt(E) & ppderiv_bt(Es).
