% ancestors — transitive closure over a generated family tree
% (paper Table 3). The parent/2 facts are generated per benchmark size.
anc(X, Y) :- parent(X, Y).
anc(X, Y) :- parent(X, Z), anc(Z, Y).
