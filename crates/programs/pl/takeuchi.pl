% takeuchi — the Takeuchi function with its three recursive calls in
% parallel (paper Tables 4 and 5).
tak(X, Y, Z, A) :-
    ( X =< Y -> A = Z
    ; X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
      ( tak(X1, Y, Z, A1) & tak(Y1, Z, X, A2) & tak(Z1, X, Y, A3) ),
      tak(A1, A2, A3, A) ).
