% matrix — parallel matrix multiplication, one subgoal per result row
% (paper Tables 2, 4 and 5; Figure 5 as `matrix mult`).
% The second operand is supplied transposed (`Bt`), so every row product
% is a sequence of dot products.
mmul([], _, []).
mmul([R|Rs], Bt, [OR|ORs]) :- row_mult(Bt, R, OR) & mmul(Rs, Bt, ORs).

% first argument is the column list so clause indexing makes this
% determinate at runtime
row_mult([], _, []).
row_mult([C|Cs], R, [V|Vs]) :- dot(R, C, 0, V), row_mult(Cs, R, Vs).

dot([], [], A, A).
dot([X|Xs], [Y|Ys], A, V) :- A2 is A + X * Y, dot(Xs, Ys, A2, V).

matrix(A, Bt, C) :- mmul(A, Bt, C).

% -- backward execution: rows nondeterministically scaled ---------------
row_nd(R, Bt, OR) :- scale(R, 1, RS), row_mult(Bt, RS, OR).
row_nd(R, Bt, OR) :- scale(R, 2, RS), row_mult(Bt, RS, OR).

scale([], _, []).
scale([X|T], F, [Y|T2]) :- Y is X * F, scale(T, F, T2).

mmul_nd([], _, []).
mmul_nd([R|Rs], Bt, [OR|ORs]) :- row_nd(R, Bt, OR) & mmul_nd(Rs, Bt, ORs).

reject(_) :- fail.
matrix_bt(A, Bt) :- mmul_nd(A, Bt, C), reject(C), fail.
matrix_bt(_, _).

% Parallel backward execution over independent matrix instances.
pmatrix_bt([], _).
pmatrix_bt([A|As], Bt) :- matrix_bt(A, Bt) & pmatrix_bt(As, Bt).
