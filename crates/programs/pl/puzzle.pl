% puzzle — 3x3 magic square by constrained selection (paper Table 3).
% Rows, columns and both diagonals sum to 15; cells are a permutation of
% 1..9. Derived cells prune the search early.
puzzle([A, B, C, D, E, F, G, H, I]) :-
    sel(A, [1,2,3,4,5,6,7,8,9], R1),
    sel(B, R1, R2),
    C is 15 - A - B, sel(C, R2, R3),
    sel(D, R3, R4),
    G is 15 - A - D, sel(G, R4, R5),
    E is 15 - C - G, sel(E, R5, R6),
    I is 15 - A - E, sel(I, R6, R7),
    F is 15 - D - E, sel(F, R7, R8),
    H is 15 - B - E, sel(H, R8, []),
    G + H + I =:= 15.
