% map — parallel list transformation (paper Tables 1 & 2, Figure 5).
%
% `work/3` is the granularity knob: a deterministic arithmetic loop.
work(N, X, R) :-
    ( N =< 0 -> R = X
    ; X1 is (X * 3 + 1) mod 1000, N1 is N - 1, work(N1, X1, R) ).

% -- forward execution (map2): deterministic transformer ----------------
tr_det(X, Y) :- work(160, X, Y).

map([], []).
map([X|T], [Y|T2]) :- tr_det(X, Y) & map(T, T2).

% -- backward execution (map1): nondeterministic transformer ------------
tr_nd(X, Y) :- work(15, X, W), Y is W * 2.
tr_nd(X, Y) :- work(15, X, W), Y is W * 2 + 1.

map_nd([], []).
map_nd([X|T], [Y|T2]) :- tr_nd(X, Y) & map_nd(T, T2).

% Exhaust the full cross product of transformer choices (failure-driven):
% this is the backward-execution workload whose redo traffic LPCO's
% flattening collapses.
reject(_) :- fail.
map_bt(L) :- map_nd(L, Out), reject(Out), fail.
map_bt(_).

% Parallel backward execution: independent sublists, each exhaustively
% enumerated (the per-slot backtracking that Figure 5 measures).
pmap_bt([]).
pmap_bt([L|Ls]) :- map_bt(L) & pmap_bt(Ls).
