% occur / poccur — parallel occurrence counting over a list of lists
% (paper Tables 1, 4 and 5; Figure 8 as `poccur`).
count(L, E, C) :- count_(L, E, 0, C).
count_([], _, A, A).
count_([X|T], E, A, C) :-
    ( X =:= E -> A1 is A + 1 ; A1 = A ),
    count_(T, E, A1, C).

occur_all([], _, []).
occur_all([L|Ls], E, [C|Cs]) :- count(L, E, C) & occur_all(Ls, E, Cs).

poccur(Ls, E, Total) :- occur_all(Ls, E, Cs), sum_list(Cs, Total).
