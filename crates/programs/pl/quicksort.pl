% quick_sort — parallel divide and conquer (paper Table 5).
qsort([], []).
qsort([P|T], S) :-
    partition(T, P, Lo, Hi),
    ( qsort(Lo, SL) & qsort(Hi, SH) ),
    append(SL, [P|SH], S).

partition([], _, [], []).
partition([X|T], P, Lo, Hi) :-
    ( X =< P -> Lo = [X|L1], partition(T, P, L1, Hi)
    ; Hi = [X|H1], partition(T, P, Lo, H1) ).
