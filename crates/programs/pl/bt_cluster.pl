% bt_cluster — score point clusters in parallel (paper Tables 4 and 5).
cluster_scores([], []).
cluster_scores([C|Cs], [S|Ss]) :- score(C, S) & cluster_scores(Cs, Ss).

score(cluster(Center, Points), S) :- sumdist(Points, Center, 0, S).

sumdist([], _, A, A).
sumdist([P|Ps], C, A, S) :-
    D is (P - C) * (P - C), A1 is A + D, sumdist(Ps, C, A1, S).

bt_cluster(Clusters, Best) :- cluster_scores(Clusters, Ss), sum_list(Ss, Best).
