% Shared list library for the benchmark corpus.
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

sel(X, [X|T], T).
sel(X, [Y|T], [Y|R]) :- sel(X, T, R).

sum_list(L, S) :- sum_list_(L, 0, S).
sum_list_([], A, A).
sum_list_([X|T], A, S) :- A1 is A + X, sum_list_(T, A1, S).

range(L, H, R) :- ( L > H -> R = [] ; L1 is L + 1, range(L1, H, T), R = [L|T] ).
