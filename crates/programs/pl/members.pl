% members — nested member/2 search (paper Table 3). All triples from the
% list whose sum hits the target.
triples(L, T, t(X, Y, Z)) :-
    member(X, L), member(Y, L), member(Z, L),
    X + Y + Z =:= T.
