% hanoi — Towers of Hanoi with the two recursive transfers in parallel
% (paper Table 4, Figure 8).
hanoi(N, Moves) :- h(N, a, b, c, Moves).

h(N, A, B, C, M) :-
    ( N =:= 0 -> M = []
    ; N1 is N - 1,
      ( h(N1, A, C, B, M1) & h(N1, C, B, A, M2) ),
      append(M1, [mv(A, B)|M2], M) ).
