//! # ace-and — the independent and-parallel engine (&ACE model)
//!
//! Executes programs annotated with the `&` parallel conjunction in the
//! style of the &ACE system the paper uses as its testbed (§2.3):
//!
//! * reaching a parallel conjunction allocates a **parcall frame** with one
//!   slot per subgoal and publishes the subgoals for pickup by idle
//!   workers (goal shipping — goals are *independent*, so each subgoal is
//!   copied into the executing worker's machine and its solved instance
//!   copied back and unified at integration time);
//! * a worker picking up a remote subgoal allocates an **input marker**,
//!   and an **end marker** on completion, delimiting the subgoal's stack
//!   section exactly as in Figure 2 of the paper;
//! * **inside backtracking**: a subgoal with no solution fails the whole
//!   parallel call in its sibling-cancellation sweep;
//! * **outside backtracking**: when a later goal fails back into the
//!   parcall frame, the rightmost nondeterministic subgoal (kept alive as a
//!   resumable generator machine) produces its next solution; subgoals to
//!   its right are re-executed — standard cross-product order.
//!
//! On top of this baseline the three paper schemas are implemented as
//! toggleable optimizations:
//!
//! * **LPCO** (`flattening`): a determinate, rightmost subgoal whose clause
//!   ends in a parallel call *reuses the enclosing parcall frame* — its new
//!   subgoals become additional slots instead of a nested frame, so
//!   `process_list/2`-style recursion flattens into one wide frame
//!   (paper Figure 4) and failure/redo scan one slot vector instead of a
//!   frame chain.
//! * **SPO** (`procrastination`): marker allocation is delayed until a
//!   choice point is created inside the subgoal; deterministic subgoals
//!   never allocate markers — only their trail section is noted.
//! * **PDO** (`sequentialization`): when the scheduler hands a worker the
//!   subgoal that sequentially follows the one it just finished, the two
//!   run as one contiguous computation on the same machine with no markers
//!   in between — `(a & b & c)` degrades to `((a, b) & c)`.

pub mod engine;
pub mod frame;
pub mod worker;

pub use engine::{AndEngine, AndReport};
pub use frame::{Bundle, FrameStage, FrameState};
