//! And-parallel worker agents.
//!
//! Each worker cooperates through the shared task queue and the
//! [`FrameState`]s of active parallel calls. A worker maintains a stack of
//! *activations*:
//!
//! * `Run` — driving a machine (the root query or a subgoal group);
//! * `Wait` — the machine below raised a parallel call; the worker helps
//!   with other work until the frame's wave completes, then integrates;
//! * `Advance` — outside backtracking: producing the next solution of one
//!   subgoal group (via its kept generator machine or by recomputation).
//!
//! All engine-side operations charge the [`ace_runtime::CostModel`] so the
//! virtual-time driver sees scheduler and data-structure costs exactly
//! where the paper locates them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use ace_logic::copy::copy_term;
use ace_logic::{CanonKey, Cell, Database};
use ace_machine::{Machine, MarkerKind, Solution, Status};
use ace_runtime::{
    fault::FAULT_ERROR_PREFIX, Agent, CancelToken, EngineConfig, EventKind, FaultAction,
    FaultInjector, MemoTable, Phase, Stats, TableSpace, TraceBuf, Tracer,
};
use parking_lot::Mutex;

use crate::frame::{bundle_copy, FrameStage, FrameState, GroupRec, SlotState};

/// A schedulable unit: one slot of one frame.
#[derive(Clone)]
pub struct Task {
    pub frame: Arc<FrameState>,
    pub slot: usize,
    pub creator: usize,
}

/// State shared by all workers of one engine run.
pub struct Shared {
    pub db: Arc<Database>,
    pub cfg: EngineConfig,
    pub queue: Mutex<VecDeque<Task>>,
    /// Workers currently without work — demand signal for goal shipping.
    pub idle_workers: AtomicUsize,
    pub done: AtomicBool,
    pub solutions: Mutex<Vec<Solution>>,
    pub solutions_count: AtomicUsize,
    pub error: Mutex<Option<String>>,
    pub root_cancel: CancelToken,
    pub worker_stats: Mutex<Vec<Stats>>,
    /// Ring buffers deposited by finished workers (tracing enabled only).
    pub trace_bufs: Mutex<Vec<TraceBuf>>,
    /// Fault injection (tests/robustness validation); `None` = no faults.
    pub injector: Option<FaultInjector>,
    /// Answer-memoization table shared by every machine of the run (and,
    /// when the caller passed one in, across runs); `None` = memo off.
    pub memo: Option<Arc<MemoTable>>,
    /// Shared tabling space for non-determinate tabled predicates;
    /// `None` = tabling off.
    pub table: Option<Arc<TableSpace>>,
}

impl Shared {
    fn finish(&self) {
        self.done.store(true, Ordering::Release);
    }

    fn fail_with(&self, msg: String) {
        let mut e = self.error.lock();
        if e.is_none() {
            *e = Some(msg);
        }
        self.finish();
    }
}

/// What a `Run` activation is computing.
enum RunCtx {
    /// The root query (worker 0 starts with it).
    Root,
    /// A group of subgoal slots of `frame`, led by slot `leader`.
    Slot {
        frame: Arc<FrameState>,
        leader: usize,
    },
}

/// How an `Advance` activation obtains the next solution.
enum AdvanceMode {
    /// Resume the kept generator machine.
    Generator,
    /// Re-execute from scratch (sequentially), skipping `skip` solutions.
    Recompute { skip: u64, seen: u64 },
}

/// Bookkeeping for a subgoal the owner machine is executing directly
/// (speculative PDO): where to roll back to if it turns out
/// nondeterministic, and the fence guarding backtracking below it.
struct OwnerSlot {
    frame: Arc<FrameState>,
    slot: usize,
    fence_idx: usize,
    ctrl_len: usize,
    trail: ace_logic::TrailMark,
    heap: ace_logic::heap::HeapMark,
}

enum Act {
    Run {
        machine: Box<Machine>,
        ctx: RunCtx,
        cancel: CancelToken,
        /// Machine-heap cells of each member slot's shipped goal (in group
        /// slot order) — the roots extracted into the solution bundle.
        goal_cells: Vec<Cell>,
        /// Memo keys of the member goals, canonicalized *before* execution
        /// bound them (same order as `goal_cells`; empty when memo is off).
        /// Deterministic groups publish their answers under these keys at
        /// finalization.
        memo_keys: Vec<CanonKey>,
        /// Machine-heap cells of LPCO-merged branch goals awaiting
        /// registration as new slots at group finalization.
        lpco_added: Vec<Cell>,
        /// PDO: a member before the last carried nondeterminism. The
        /// machine cannot serve as a plain generator (backtracking into an
        /// early member would skip re-running the later ones), so redos go
        /// through recomputation instead.
        pdo_nondet_prefix: bool,
        /// Frames whose *inline* (rightmost) branch this machine is
        /// currently executing, outermost first (&ACE model: the owner
        /// runs the last subgoal locally while the others are shipped).
        inline: Vec<Arc<FrameState>>,
        /// Shipped slots being executed directly on this machine instead
        /// (speculative PDO), innermost last; see [`OwnerSlot`].
        owner_slot: Vec<OwnerSlot>,
    },
    Wait {
        frame: Arc<FrameState>,
    },
    Advance {
        frame: Arc<FrameState>,
        leader: usize,
        machine: Box<Machine>,
        mode: AdvanceMode,
        goal_cells: Vec<Cell>,
    },
}

/// One and-parallel worker (an [`Agent`] for either driver).
pub struct AndWorker {
    pub id: usize,
    sh: Arc<Shared>,
    /// The run's immutable cost model, hoisted out of the per-phase hot
    /// paths (one refcount bump instead of a struct clone per use).
    costs: Arc<ace_runtime::CostModel>,
    stack: Vec<Act>,
    #[allow(clippy::vec_box)] // machines move in/out of activations as Box
    pool: Vec<Box<Machine>>,
    pub stats: Stats,
    /// Root query variables (worker 0 only).
    root_vars: Vec<(String, Cell)>,
    phase_cost: u64,
    reported: bool,
    /// Consecutive no-work phases (exponential idle backoff).
    idle_streak: u32,
    /// Counted in [`Shared::idle_workers`].
    marked_idle: bool,
    /// Event tracing (no-op unless enabled in the config).
    tracer: Tracer,
    /// Virtual-clock mirror: the sum of all phase costs already returned
    /// to the driver. `vclock + phase_cost` is this worker's current
    /// virtual time, used to stamp trace events.
    vclock: u64,
}

enum Outcome {
    Worked,
    NoWork,
}

/// `ACE_TRACE=1` enables phase/barrier tracing on stderr (dev aid).
fn trace_enabled() -> bool {
    static T: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *T.get_or_init(|| std::env::var("ACE_TRACE").is_ok())
}

impl AndWorker {
    pub fn new(id: usize, sh: Arc<Shared>) -> Self {
        let costs = Arc::new(sh.cfg.costs.clone());
        let tracer = Tracer::new(&sh.cfg.trace, id);
        AndWorker {
            id,
            sh,
            costs,
            stack: Vec::new(),
            pool: Vec::new(),
            stats: Stats::new(),
            root_vars: Vec::new(),
            phase_cost: 0,
            reported: false,
            idle_streak: 0,
            marked_idle: false,
            tracer,
            vclock: 0,
        }
    }

    /// This worker's current virtual time (trace event timestamps).
    #[inline]
    fn now(&self) -> u64 {
        self.vclock + self.phase_cost
    }

    /// Are there idle workers other than this one? (The demand signal for
    /// goal shipping; a worker's own idle flag from its previous phase
    /// must not count.)
    fn others_idle(&self) -> bool {
        self.sh.idle_workers.load(Ordering::Acquire) > usize::from(self.marked_idle)
    }

    fn mark_idle(&mut self, idle: bool) {
        if idle != self.marked_idle {
            self.marked_idle = idle;
            if idle {
                self.sh.idle_workers.fetch_add(1, Ordering::AcqRel);
            } else {
                self.sh.idle_workers.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Install the root query on this worker (worker 0).
    pub fn install_root(&mut self, machine: Box<Machine>, vars: Vec<(String, Cell)>) {
        let cancel = self.sh.root_cancel.clone();
        self.root_vars = vars;
        self.stack.push(Act::Run {
            machine,
            ctx: RunCtx::Root,
            cancel,
            goal_cells: Vec::new(),
            memo_keys: Vec::new(),
            lpco_added: Vec::new(),
            pdo_nondet_prefix: false,
            inline: Vec::new(),
            owner_slot: Vec::new(),
        });
    }

    #[inline]
    fn charge(&mut self, units: u64) {
        self.stats.charge(units);
        self.phase_cost += units;
    }

    fn costs(&self) -> Arc<ace_runtime::CostModel> {
        self.costs.clone()
    }

    fn get_machine(&mut self) -> Box<Machine> {
        let mut m = match self.pool.pop() {
            Some(m) => m,
            None => Box::new(Machine::new(self.sh.db.clone(), self.costs.clone())),
        };
        if self.sh.memo.is_some() {
            m.set_memo(self.sh.memo.clone(), self.sh.cfg.trace.enabled);
            m.set_memo_tenant(self.sh.cfg.memo_tenant);
        }
        if self.sh.table.is_some() {
            m.set_table(self.sh.table.clone(), self.sh.cfg.trace.enabled);
            m.set_memo_tenant(self.sh.cfg.memo_tenant);
        }
        m.set_clause_exec(self.sh.cfg.clause_exec);
        m.set_dispatch_trace(self.sh.cfg.trace.enabled && self.sh.cfg.trace.dispatch);
        m
    }

    /// Forward memo events buffered by a machine to this worker's tracer
    /// (no-op vector unless memo tracing is on).
    fn emit_memo_events(&mut self, events: Vec<EventKind>) {
        let t = self.vclock + self.phase_cost;
        for ev in events {
            self.tracer.emit(t, || ev);
        }
    }

    fn retire_machine(&mut self, mut m: Box<Machine>) {
        // Surface any cost not yet on a driver clock, then harvest the
        // machine's counters into this worker's sheet. Busy cost drives
        // clocks via per-phase surfacing; `stats.cost` keeps the report
        // totals coherent.
        self.phase_cost += m.take_unsurfaced_cost();
        let memo_events = m.take_memo_events();
        self.emit_memo_events(memo_events);
        let mut ms = m.stats;
        let machine_cost = ms.cost;
        ms.cost = 0;
        self.stats += ms;
        self.stats.cost += machine_cost; // keep totals coherent in stats
        m.reset();
        if self.pool.len() < 8 {
            self.pool.push(m);
        }
    }

    // ------------------------------------------------------------------
    // Work acquisition
    // ------------------------------------------------------------------

    fn try_get_work(&mut self) -> Outcome {
        // Injected transient steal failure: the task stays queued (checked
        // before any claim so nothing needs un-claiming) and this worker
        // retries on a later phase after its idle backoff — bounded retry,
        // since each fault event fires at most once.
        let steal_faulted = self
            .sh
            .injector
            .as_ref()
            .is_some_and(|inj| !self.sh.queue.lock().is_empty() && inj.steal_fails(self.id));
        if steal_faulted {
            self.stats.faults_injected += 1;
            self.stats.steal_retries += 1;
            self.stats.idle_probes += 1;
            let t = self.now();
            self.tracer
                .emit(t, || EventKind::FaultInjected { kind: "steal-fail" });
            self.tracer
                .emit(t, || EventKind::FaultRetry { what: "steal" });
            return Outcome::NoWork;
        }
        let task = {
            let mut q = self.sh.queue.lock();
            loop {
                let Some(t) = q.pop_front() else { break None };
                if t.frame.cancel.is_cancelled() {
                    continue;
                }
                if t.frame.claim(Some(t.slot)).is_some() {
                    break Some(t);
                }
                // already claimed elsewhere (e.g. PDO) — skip
            }
        };
        let Some(task) = task else {
            self.stats.idle_probes += 1;
            let t = self.now();
            self.tracer.emit(t, || EventKind::StealFail);
            return Outcome::NoWork;
        };
        let costs = self.costs();
        if task.creator != self.id {
            self.stats.tasks_stolen += 1;
            self.charge(costs.steal);
            let t = self.now();
            self.tracer.emit(t, || EventKind::StealAttempt);
            self.tracer.emit(t, || EventKind::StealSuccess);
        } else {
            self.charge(costs.queue_op);
        }
        self.start_slot(task.frame, task.slot);
        Outcome::Worked
    }

    /// Begin executing `slot` of `frame` on a fresh machine: ship the goal,
    /// allocate (or procrastinate) the input marker, register the group.
    fn start_slot(&mut self, frame: Arc<FrameState>, slot: usize) {
        let costs = self.costs();
        let mut machine = self.get_machine();
        machine.enable_parallel(true);

        // Goal shipping: copy the subgoal closure into the machine.
        let (src_heap, root) = {
            let inner = frame.inner.lock();
            let s = &inner.slots[slot];
            (s.goal_heap.clone(), s.goal_root)
        };
        let out = copy_term(&src_heap, root, &mut machine.heap);
        self.stats.cells_copied += out.cells_copied as u64;
        self.charge(out.cells_copied as u64 * costs.heap_cell);

        // Markers: the unoptimized engine allocates the input marker
        // eagerly; SPO procrastinates it (paper §4.1).
        if self.sh.cfg.opts.spo {
            self.charge(costs.spo_track);
            machine.procrastinate_input_marker(frame.id, slot as u32);
        } else {
            machine.push_marker(MarkerKind::Input, frame.id, slot as u32);
        }
        machine.set_query(out.root);

        // Snapshot the memo key while the shipped goal is still unbound:
        // a deterministic completion publishes its answer under this key.
        let memo_keys = if machine.memo_enabled() {
            self.stats.charge(costs.memo_lookup);
            self.phase_cost += costs.memo_lookup;
            vec![machine.memo_key(out.root)]
        } else {
            Vec::new()
        };

        // Register the group.
        {
            let mut inner = frame.inner.lock();
            inner.slots[slot].group = Some(slot);
            inner.groups.insert(
                slot,
                GroupRec {
                    slots: vec![slot],
                    ..GroupRec::default()
                },
            );
        }
        self.charge(costs.lock);

        self.phase_cost += machine.take_unsurfaced_cost();
        let cancel = frame.cancel.clone();
        self.stack.push(Act::Run {
            machine,
            ctx: RunCtx::Slot {
                frame,
                leader: slot,
            },
            cancel,
            goal_cells: vec![out.root],
            memo_keys,
            lpco_added: Vec::new(),
            pdo_nondet_prefix: false,
            inline: Vec::new(),
            owner_slot: Vec::new(),
        });
    }

    // ------------------------------------------------------------------
    // Phase dispatch
    // ------------------------------------------------------------------

    fn do_phase(&mut self) -> Outcome {
        if trace_enabled() {
            let top = match self.stack.last() {
                None => "-".to_owned(),
                Some(Act::Run { machine, ctx, .. }) => format!(
                    "Run({}, {:?})",
                    match ctx {
                        RunCtx::Root => "root".to_owned(),
                        RunCtx::Slot { frame, leader } => format!("f{}s{}", frame.id, leader),
                    },
                    machine.status()
                ),
                Some(Act::Wait { frame }) => format!(
                    "Wait(f{} {:?} cancelled={})",
                    frame.id,
                    frame.stage(),
                    frame.cancel.is_cancelled()
                ),
                Some(Act::Advance { frame, leader, .. }) => {
                    format!("Advance(f{} g{leader})", frame.id)
                }
            };
            eprintln!("w{} depth={} top={}", self.id, self.stack.len(), top);
        }
        match self.stack.last() {
            None => self.try_get_work(),
            Some(Act::Run { .. }) => self.step_run(),
            Some(Act::Wait { .. }) => self.step_wait(),
            Some(Act::Advance { .. }) => self.step_advance(),
        }
    }

    fn step_run(&mut self) -> Outcome {
        let Some(Act::Run {
            machine,
            cancel,
            inline,
            ..
        }) = self.stack.last_mut()
        else {
            unreachable!()
        };
        let quantum = self.sh.cfg.quantum;
        // Check the innermost inline frame's token: it is a descendant of
        // the activation token, so it also covers ancestor cancellation,
        // and additionally catches sibling failures of the parallel call
        // whose branch is executing inline right here.
        let check = inline
            .last()
            .map(|f| f.cancel.clone())
            .unwrap_or_else(|| cancel.clone());
        let status = machine.run(quantum, Some(&check));
        self.phase_cost += machine.take_unsurfaced_cost();
        let memo_events = machine.take_memo_events();
        self.emit_memo_events(memo_events);

        match status {
            Status::Running => Outcome::Worked,
            Status::Parcall => self.on_parcall(),
            Status::Solution => self.on_solution(),
            Status::Failed => self.on_failed(),
            Status::ParcallRedo => self.on_redo(),
            Status::InlineBarrier(fid) => self.on_barrier(fid),
            Status::FenceHit(fid, slot) => self.on_fence_hit(fid, slot),
            Status::Cancelled => self.on_cancelled(),
            Status::Halted => {
                self.sh.finish();
                Outcome::Worked
            }
            Status::Error(e) => {
                self.sh.fail_with(e);
                Outcome::Worked
            }
        }
    }

    // ------------------------------------------------------------------
    // Parallel call creation (and LPCO)
    // ------------------------------------------------------------------

    fn on_parcall(&mut self) -> Outcome {
        let costs = self.costs();
        // LPCO applicability (paper §3.1).
        if self.sh.cfg.opts.lpco {
            self.charge(costs.lpco_check);
            if self.try_lpco_inline() {
                return Outcome::Worked;
            }
            if self.try_lpco() {
                return Outcome::Worked;
            }
        }

        let ship_hint = self.sh.cfg.ship == ace_runtime::ShipPolicy::Eager || self.others_idle();
        let Some(Act::Run {
            machine,
            ctx,
            cancel,
            inline,
            ..
        }) = self.stack.last_mut()
        else {
            unreachable!()
        };
        let depth = match (&inline.last(), &ctx) {
            (Some(f), _) => f.depth + 1,
            (None, RunCtx::Root) => 1,
            (None, RunCtx::Slot { frame, .. }) => frame.depth + 1,
        };
        let pf = machine.top_parcall().expect("Parcall status without frame");
        let pf_id = pf.id;
        let branches = pf.branches.clone();
        let pf_cont = pf.cont.clone();
        let created_at = (pf.trail, pf.heap);
        // Nested frames hang off the innermost inline frame's token so a
        // sibling failure anywhere up the chain kills them too.
        let parent_token = inline
            .last()
            .map(|f| f.cancel.clone())
            .unwrap_or_else(|| cancel.clone());
        let ship_now = ship_hint;
        let (frame, cells) = FrameState::create(
            pf_id,
            &machine.heap,
            &branches,
            depth,
            &parent_token,
            true,
            pf_cont,
            created_at,
            ship_now,
        );
        machine.top_parcall_mut().unwrap().ext = Some(Box::new(frame.clone()));
        self.stats.cells_copied += cells as u64;
        let n = branches.len() as u64;
        self.stats.parcall_frames += 1;
        self.stats.parcall_slots += n;
        let charge = costs.parcall_frame_alloc
            + costs.parcall_slot * n
            + cells as u64 * costs.heap_cell
            + costs.queue_op * (n - 1);
        self.stats.charge(charge);
        self.phase_cost += charge;
        let t = self.vclock + self.phase_cost;
        self.tracer
            .emit(t, || EventKind::FrameAlloc { slots: n as usize });

        // Ship all branches but the last (when idle workers demand them);
        // run the last inline, &ACE-style ("the goal a does not need an
        // input marker as the parcall frame marks its beginning" — paper
        // Figure 2; the *local* branch needs neither marker nor copy).
        let tasks: Vec<Task> = if ship_now {
            (0..branches.len() - 1)
                .map(|slot| Task {
                    frame: frame.clone(),
                    slot,
                    creator: self.id,
                })
                .collect()
        } else {
            Vec::new()
        };
        machine.run_inline_branch(*branches.last().unwrap(), frame.id);
        inline.push(frame);
        if !tasks.is_empty() {
            self.sh.queue.lock().extend(tasks);
        }
        Outcome::Worked
    }

    /// LPCO within an inline chain: the machine executing the inline
    /// (rightmost) branch of `frame` reached a trailing parallel call and
    /// has been determinate since entering it — append the new branches as
    /// slots of `frame` (shipping all but the last) and keep walking the
    /// rightmost spine inline. `process_list/2` recursion thus runs in ONE
    /// wide frame (paper Figure 4).
    fn try_lpco_inline(&mut self) -> bool {
        let costs = self.costs();
        let ship_hint = self.sh.cfg.ship == ace_runtime::ShipPolicy::Eager || self.others_idle();
        let Some(Act::Run {
            machine, inline, ..
        }) = self.stack.last_mut()
        else {
            return false;
        };
        let Some(frame) = inline.last().cloned() else {
            return false;
        };
        if !machine.deterministic_since_previous_parcall() {
            return false;
        }
        // "last goal" in an inline chain: nothing follows but this frame's
        // own end-marker barrier (the real continuation is parked in the
        // frame).
        if !machine.top_parcall_cont_is_barrier_of(frame.id) {
            return false;
        }
        {
            // Filling or Ready (shipped slots may finish before the inline
            // chain does); appending slots below re-opens the wave.
            let inner = frame.inner.lock();
            if !matches!(inner.stage, FrameStage::Filling | FrameStage::Ready) {
                return false;
            }
        }
        let pf = machine.merge_out_parcall();
        let branches = pf.branches;
        let k = branches.len();
        let ship_now = ship_hint;
        let shipped = &branches[..k - 1];
        let (bundle, cells) = if ship_now {
            bundle_copy(&machine.heap, shipped)
        } else {
            (
                crate::frame::Bundle {
                    heap: Arc::new(ace_logic::Heap::new()),
                    roots: vec![Cell::Nil; shipped.len()],
                },
                0,
            )
        };
        self.stats.cells_copied += cells as u64;
        self.stats.slots_merged_lpco += k as u64;
        self.stats.frames_elided_lpco += 1;
        let charge = costs.lpco_merge_slot * k as u64 + cells as u64 * costs.heap_cell;
        self.stats.charge(charge);
        self.phase_cost += charge;
        let t = self.vclock + self.phase_cost;
        self.tracer
            .emit(t, || EventKind::FrameElide { merged_slots: k });

        let mut tasks = Vec::with_capacity(shipped.len());
        {
            let mut inner = frame.inner.lock();
            let inline_idx = inner.inline.expect("inline chain without inline slot");
            let base = inner.slots.len();
            for (i, &pg) in shipped.iter().enumerate() {
                inner.slots.push(crate::frame::SlotRec {
                    goal_heap: bundle.heap.clone(),
                    goal_root: bundle.roots[i],
                    parent_goal: Some(pg),
                    state: SlotState::Unclaimed,
                    group: None,
                    // A rerun of the inline spine re-creates these slots:
                    // mark their origin so redo waves drop them first.
                    origin: Some(inline_idx),
                    owner_run: false,
                    spec_failed: false,
                    materialized: false,
                    shipped: ship_now,
                });
                inner.marks.push(None);
                inner.pending += 1;
                if ship_now {
                    tasks.push(Task {
                        frame: frame.clone(),
                        slot: base + i,
                        creator: self.id,
                    });
                }
            }
            if inner.stage == FrameStage::Ready {
                inner.stage = FrameStage::Filling;
            }
        }
        machine.run_inline_branch(*branches.last().unwrap(), frame.id);
        self.sh.queue.lock().extend(tasks);
        true
    }

    /// Try to apply the Last Parallel Call Optimization: merge the newly
    /// raised parallel call's subgoals into the *enclosing* frame as
    /// additional slots instead of nesting a child frame. Conditions:
    /// the raising computation is a subgoal group that is currently the
    /// rightmost of its frame, it has been determinate so far, and nothing
    /// follows the parallel call in its continuation.
    fn try_lpco(&mut self) -> bool {
        let costs = self.costs();
        let Some(Act::Run {
            machine,
            ctx: RunCtx::Slot { frame, leader: _ },
            lpco_added,
            ..
        }) = self.stack.last_mut()
        else {
            return false;
        };
        if !machine.deterministic_before_top_parcall() {
            return false;
        }
        {
            let pf = machine.top_parcall().unwrap();
            if pf.cont.is_some() {
                return false; // parallel call is not the last goal
            }
        }
        {
            let inner = frame.inner.lock();
            if inner.stage != FrameStage::Filling {
                return false;
            }
        }
        // Note: the paper's general LPCO (Figure 3) merges trailing
        // parallel calls of *any* slot into the enclosing frame. When the
        // merging slot is not the rightmost and its appended branches turn
        // out nondeterministic, the cross-product enumeration order can
        // deviate from strict sequential order (the solution multiset is
        // preserved) — the same caveat the paper notes about "backtracking
        // over parcalls". Conditions (i)/(ii) (determinacy of the merging
        // computation) are enforced above.
        // Merge: take the branches; the machine resumes past the parallel
        // call (and, its continuation being empty, completes immediately).
        let pf = machine.merge_out_parcall();
        let k = pf.branches.len() as u64;
        lpco_added.extend(pf.branches);
        let fid = frame.id;
        let _ = fid;
        self.stats.slots_merged_lpco += k;
        self.stats.frames_elided_lpco += 1;
        self.charge(costs.lpco_merge_slot * k);
        let t = self.now();
        self.tracer.emit(t, || EventKind::FrameElide {
            merged_slots: k as usize,
        });
        true
    }

    // ------------------------------------------------------------------
    // Solutions
    // ------------------------------------------------------------------

    fn on_solution(&mut self) -> Outcome {
        let is_root = matches!(
            self.stack.last(),
            Some(Act::Run {
                ctx: RunCtx::Root,
                ..
            })
        );
        if is_root {
            self.on_root_solution()
        } else {
            self.on_slot_solution()
        }
    }

    /// The inline branch of frame `fid` (re-)arrived at its barrier.
    ///
    /// * First arrival: its slot joins the barrier; wait for the shipped
    ///   slots, then integrate.
    /// * Re-arrival (the machine's own backtracking found another inline
    ///   solution): the backtrack that reached the inline choice points
    ///   unwound every sibling integration on the trail, so mark the whole
    ///   frame for re-integration and wait again.
    fn on_barrier(&mut self, fid: u64) -> Outcome {
        let costs = self.costs();
        if trace_enabled() {
            if let Some(Act::Run {
                owner_slot, inline, ..
            }) = self.stack.last()
            {
                eprintln!(
                    "BARRIER fid={fid} owner_top={:?} inline_top={:?}",
                    owner_slot.last().map(|o| (o.frame.id, o.slot)),
                    inline.last().map(|f| f.id)
                );
            }
        }
        // Owner-executed (PDO) subgoal completion?
        if matches!(
            self.stack.last(),
            Some(Act::Run { owner_slot, .. })
                if owner_slot.last().is_some_and(|o| o.frame.id == fid)
        ) {
            return self.on_owner_slot_done();
        }
        let Some(Act::Run {
            machine, inline, ..
        }) = self.stack.last_mut()
        else {
            unreachable!()
        };
        let (frame, rearrival) = if inline.last().is_some_and(|f| f.id == fid) {
            (inline.pop().unwrap(), false)
        } else {
            // find the frame on this machine's control stack
            let found = machine.ctrl_frames().iter().find_map(|f| match f {
                ace_machine::CtrlFrame::Parcall(pf) => pf
                    .ext
                    .as_ref()
                    .and_then(|e| e.downcast_ref::<Arc<FrameState>>())
                    .filter(|fr| fr.id == fid)
                    .cloned(),
                _ => None,
            });
            match found {
                Some(fr) => (fr, true),
                None => {
                    self.sh.fail_with(format!(
                        "engine bug: inline barrier for unknown frame {fid}"
                    ));
                    return Outcome::Worked;
                }
            }
        };
        let mut owner_reruns: Vec<Task> = Vec::new();
        {
            let mut inner = frame.inner.lock();
            if let Some(idx) = inner.inline {
                inner.slots[idx].state = SlotState::Done;
            }
            inner.inline_done = true;
            if rearrival {
                // every integration (and every owner-executed binding) was
                // unwound by the backtracking that reached the inline
                // choice points: redo integrations and re-run owner slots
                for m in inner.marks.iter_mut() {
                    *m = None;
                }
                for sl in inner.slots.iter_mut() {
                    if sl.materialized {
                        sl.parent_goal = None;
                        sl.materialized = false;
                    }
                }
                inner.integrate_from = 0;
                for slot_idx in 0..inner.slots.len() {
                    if inner.slots[slot_idx].owner_run
                        && inner.slots[slot_idx].state == SlotState::Done
                    {
                        inner.slots[slot_idx].owner_run = false;
                        inner.slots[slot_idx].state = SlotState::Unclaimed;
                        inner.pending += 1;
                        if inner.slots[slot_idx].shipped {
                            owner_reruns.push(Task {
                                frame: frame.clone(),
                                slot: slot_idx,
                                creator: self.id,
                            });
                        }
                    }
                }
                if inner.stage == FrameStage::Integrated {
                    inner.stage = if inner.pending == 0 {
                        FrameStage::Ready
                    } else {
                        FrameStage::Filling
                    };
                }
                self.stats.redo_rounds += 1;
                let t = self.now();
                self.tracer.emit(t, || EventKind::RedoRound);
            } else if inner.pending == 0 && inner.stage == FrameStage::Filling {
                inner.stage = FrameStage::Ready;
            }
        }
        if !owner_reruns.is_empty() {
            self.sh.queue.lock().extend(owner_reruns);
        }
        self.charge(costs.slot_join + costs.lock);
        self.stack.push(Act::Wait { frame });
        Outcome::Worked
    }

    /// The owner-executed subgoal reached the barrier: commit it if its
    /// execution was determinate (PDO success — no markers, no copies), or
    /// roll it back and ship it normally.
    fn on_owner_slot_done(&mut self) -> Outcome {
        let costs = self.costs();
        let Some(Act::Run {
            machine,
            inline,
            owner_slot,
            ..
        }) = self.stack.last_mut()
        else {
            unreachable!()
        };
        let o = owner_slot.pop().expect("checked in on_barrier");
        if inline.last().is_some_and(|f| f.id == o.frame.id) {
            inline.pop();
        }
        // region above the fence: determinate?
        let det = region_is_deterministic(machine, o.ctrl_len + 1);
        if trace_enabled() {
            eprintln!(
                "OWNER_DONE f{} slot={} det={det} ctrl={} region_from={}",
                o.frame.id,
                o.slot,
                machine.ctrl_len(),
                o.ctrl_len + 1
            );
        }
        if det {
            machine.disarm_fence(o.fence_idx);
            {
                let mut inner = o.frame.inner.lock();
                inner.slots[o.slot].state = SlotState::Done;
                inner.slots[o.slot].owner_run = true;
                inner.pending -= 1;
                if inner.pending == 0 && inner.stage == FrameStage::Filling {
                    inner.stage = FrameStage::Ready;
                }
            }
            self.stats.pdo_merges += 1;
            self.charge(costs.slot_join + costs.lock);
            let t = self.now();
            self.tracer.emit(t, || EventKind::PdoMerge);
        } else {
            // speculation failed: undo and ship to a fresh machine
            machine.rollback_to(o.ctrl_len, o.trail, o.heap);
            let unsurfaced = machine.take_unsurfaced_cost();
            self.phase_cost += unsurfaced;
            {
                let mut inner = o.frame.inner.lock();
                inner.slots[o.slot].state = SlotState::Unclaimed;
                inner.slots[o.slot].spec_failed = true;
            }
            self.sh.queue.lock().push_back(Task {
                frame: o.frame.clone(),
                slot: o.slot,
                creator: self.id,
            });
            self.charge(costs.queue_op);
        }
        let frame = o.frame;
        self.stack.push(Act::Wait { frame });
        Outcome::Worked
    }

    /// Backtracking crossed a PDO fence: the owner-executed subgoal has no
    /// solution, so the whole parallel call fails (inside backtracking).
    fn on_fence_hit(&mut self, fid: u64, _slot: u32) -> Outcome {
        let Some(Act::Run {
            machine,
            inline,
            owner_slot,
            ..
        }) = self.stack.last_mut()
        else {
            unreachable!()
        };
        let o = owner_slot.pop().expect("fence hit without owner slot");
        debug_assert_eq!(o.frame.id, fid);
        if inline.last().is_some_and(|f| f.id == fid) {
            inline.pop();
        }
        self.stats.slot_failures += 1;
        let t = self.vclock + self.phase_cost;
        self.tracer.emit(t, || EventKind::SlotFail);
        o.frame.fail();
        machine.fail_parcall_until(fid);
        let unsurfaced = machine.take_unsurfaced_cost();
        self.phase_cost += unsurfaced;
        Outcome::Worked
    }

    fn on_root_solution(&mut self) -> Outcome {
        let Some(Act::Run { machine, .. }) = self.stack.last_mut() else {
            unreachable!()
        };
        let sol = Solution {
            bindings: self
                .root_vars
                .iter()
                .map(|(n, c)| (n.clone(), machine.render(*c)))
                .collect(),
        };
        // Streamed delivery before publication; a Stop verdict ends the
        // run early through the same path as `max_solutions`.
        let sink_stop = match self.sh.cfg.sink.clone() {
            Some(sink) => {
                self.stats.answers_streamed += 1;
                let stop = sink.deliver(&sol.render()).is_stop();
                if stop {
                    self.stats.sink_stops += 1;
                }
                stop
            }
            None => false,
        };
        self.sh.solutions.lock().push(sol);
        let t = self.vclock + self.phase_cost;
        self.tracer.emit(t, || EventKind::Solution);
        let count = self.sh.solutions_count.fetch_add(1, Ordering::AcqRel) + 1;
        if sink_stop || self.sh.cfg.max_solutions.is_some_and(|max| count >= max) {
            self.sh.finish();
            return Outcome::Worked;
        }
        // search for more solutions
        machine.backtrack();
        self.phase_cost += machine.take_unsurfaced_cost();
        Outcome::Worked
    }

    fn on_slot_solution(&mut self) -> Outcome {
        let costs = self.costs();

        // PDO (paper §4.2): if the sequentially-next slot is still
        // unclaimed, continue it on this same machine as one contiguous
        // computation — no markers, no new machine.
        if self.sh.cfg.opts.pdo {
            self.charge(costs.pdo_check);
            if self.try_pdo() {
                return Outcome::Worked;
            }
        }
        self.finalize_group()
    }

    fn try_pdo(&mut self) -> bool {
        let costs = self.costs();
        let Some(Act::Run {
            machine,
            ctx: RunCtx::Slot { frame, leader },
            goal_cells,
            memo_keys,
            lpco_added,
            pdo_nondet_prefix,
            ..
        }) = self.stack.last_mut()
        else {
            return false;
        };
        if !lpco_added.is_empty() {
            // group already carries merged branch goals: finalize first so
            // the new slots become available
            return false;
        }
        let next = {
            let inner = frame.inner.lock();
            let group = &inner.groups[leader];
            *group.slots.last().unwrap() + 1
        };
        if frame.claim(Some(next)).is_none() {
            return false;
        }
        // Claimed: extend the group.
        let (src_heap, root) = {
            let mut inner = frame.inner.lock();
            inner.slots[next].group = Some(*leader);
            let g = inner.groups.get_mut(leader).unwrap();
            g.slots.push(next);
            let s = &inner.slots[next];
            (s.goal_heap.clone(), s.goal_root)
        };
        // If the members so far left any choice point, the merged machine
        // cannot later serve as a plain generator (see `pdo_nondet_prefix`).
        if !machine.is_deterministic_above(0) {
            *pdo_nondet_prefix = true;
        }
        let out = copy_term(&src_heap, root, &mut machine.heap);
        goal_cells.push(out.root);
        if machine.memo_enabled() {
            memo_keys.push(machine.memo_key(out.root));
            self.stats.charge(costs.memo_lookup);
            self.phase_cost += costs.memo_lookup;
        }
        machine.continue_with(out.root);
        let unsurfaced = machine.take_unsurfaced_cost();
        self.phase_cost += unsurfaced;
        self.stats.pdo_merges += 1;
        self.stats.cells_copied += out.cells_copied as u64;
        self.charge(out.cells_copied as u64 * costs.heap_cell + costs.lock);
        let t = self.now();
        self.tracer.emit(t, || EventKind::PdoMerge);
        true
    }

    /// The group's current solution is final for this wave: handle end
    /// markers, extract the solution bundle, register LPCO-added slots,
    /// classify the machine (retire / keep as generator / recompute), and
    /// update the frame's fill state.
    fn finalize_group(&mut self) -> Outcome {
        let costs = self.costs();
        let Some(Act::Run {
            mut machine,
            ctx: RunCtx::Slot { frame, leader },
            goal_cells,
            memo_keys,
            lpco_added,
            pdo_nondet_prefix,
            ..
        }) = self.stack.pop()
        else {
            unreachable!()
        };

        let det = machine_is_deterministic(&machine);
        let has_frames = machine.has_parcall_frames() || pdo_nondet_prefix;

        // End marker policy (paper §4.1): unoptimized always allocates it;
        // SPO elides both markers for deterministic subgoals.
        let last_slot = {
            let inner = frame.inner.lock();
            *inner.groups[&leader].slots.last().unwrap()
        };
        if self.sh.cfg.opts.spo {
            if det {
                // The subgoal completed deterministically: neither marker
                // was ever needed; only its trail section is remembered.
                machine.clear_pending_marker();
                self.stats.markers_elided_spo += 2;
                self.charge(costs.spo_track);
                let t = self.now();
                self.tracer.emit(t, || EventKind::MarkerElide);
            } else {
                machine.materialize_pending_marker();
                machine.push_marker(MarkerKind::End, frame.id, last_slot as u32);
            }
        } else {
            machine.push_marker(MarkerKind::End, frame.id, last_slot as u32);
        }

        // Publish the answers of a determinate group: with no choice point
        // ever created, no parallel call raised, and no side effects, each
        // member's single solution is its complete answer set. (The
        // machine's own `$memo_store` watches normally got there first —
        // publication is idempotent, so this is a cheap engine-side
        // backstop that also covers SPO/PDO-merged members.)
        if det
            && !has_frames
            && lpco_added.is_empty()
            && !memo_keys.is_empty()
            && machine.stats.choice_points == 0
            && machine.output.is_empty()
            && machine.answers.is_empty()
        {
            for (key, &goal) in memo_keys.iter().zip(&goal_cells) {
                machine.memo_publish_answer(key, goal);
            }
            let memo_events = machine.take_memo_events();
            self.emit_memo_events(memo_events);
        }

        self.phase_cost += machine.take_unsurfaced_cost();

        // Extract the solution bundle (goal instances + LPCO branches).
        let mut roots = goal_cells.clone();
        roots.extend(lpco_added.iter().copied());
        let (bundle, cells) = bundle_copy(&machine.heap, &roots);
        self.stats.cells_copied += cells as u64;
        self.charge(cells as u64 * costs.heap_cell + costs.slot_join + costs.lock);

        let mut new_tasks: Vec<Task> = Vec::new();
        let keep = !det && !has_frames;
        let mut machine_opt = Some(machine);
        {
            let mut inner = frame.inner.lock();
            let n_members = {
                let g = inner.groups.get_mut(&leader).unwrap();
                g.bundle = Some(bundle.clone());
                g.goal_cells = goal_cells;
                g.det = det;
                g.exhausted = det; // deterministic: no further solutions
                g.recompute = !det && has_frames;
                g.solutions_delivered = 1;
                g.slots.len()
            };
            // Register LPCO-added slots.
            let added_base = inner.slots.len();
            for (j, _) in lpco_added.iter().enumerate() {
                let root_idx = n_members + j;
                inner.slots.push(crate::frame::SlotRec {
                    goal_heap: bundle.heap.clone(),
                    goal_root: bundle.roots[root_idx],
                    parent_goal: None,
                    state: SlotState::Unclaimed,
                    group: None,
                    origin: Some(last_slot),
                    owner_run: false,
                    spec_failed: false,
                    materialized: false,
                    shipped: true,
                });
                inner.marks.push(None);
                inner.pending += 1;
                new_tasks.push(Task {
                    frame: frame.clone(),
                    slot: added_base + j,
                    creator: self.id,
                });
            }
            {
                let g = inner.groups.get_mut(&leader).unwrap();
                g.extra = (0..lpco_added.len())
                    .map(|j| (added_base + j, n_members + j))
                    .collect();
            }
            // Mark members done and update the wave count.
            let members: Vec<usize> = inner.groups[&leader].slots.clone();
            for &s in &members {
                inner.slots[s].state = SlotState::Done;
            }
            inner.pending -= members.len();
            // Keep the machine as a generator, or retire it below.
            if keep {
                let mut m = machine_opt.take().unwrap();
                // generators continue sequentially on redo
                m.enable_parallel(false);
                inner.groups.get_mut(&leader).unwrap().machine = Some(m);
            }
            if inner.pending == 0 && inner.stage == FrameStage::Filling {
                inner.stage = FrameStage::Ready;
            }
        }
        if let Some(m) = machine_opt {
            self.retire_machine(m);
        }
        if !new_tasks.is_empty() {
            self.sh.queue.lock().extend(new_tasks);
        }
        Outcome::Worked
    }

    // ------------------------------------------------------------------
    // Failure (inside backtracking)
    // ------------------------------------------------------------------

    fn on_failed(&mut self) -> Outcome {
        let Some(act) = self.stack.pop() else {
            unreachable!()
        };
        let Act::Run { machine, ctx, .. } = act else {
            unreachable!()
        };
        match ctx {
            RunCtx::Root => {
                self.retire_machine(machine);
                self.sh.finish();
            }
            RunCtx::Slot { frame, .. } => {
                self.stats.slot_failures += 1;
                let t = self.now();
                self.tracer.emit(t, || EventKind::SlotFail);
                frame.fail();
                self.retire_machine(machine);
            }
        }
        Outcome::Worked
    }

    fn on_cancelled(&mut self) -> Outcome {
        // Distinguish "this whole activation is doomed" (ancestor token)
        // from "the parallel call whose branch we are running inline
        // failed" (inline frame token): the latter unwinds the machine to
        // that frame and keeps going below it.
        let Some(Act::Run {
            machine,
            cancel,
            inline,
            ..
        }) = self.stack.last_mut()
        else {
            unreachable!()
        };
        if cancel.is_cancelled() {
            let Some(Act::Run { machine, .. }) = self.stack.pop() else {
                unreachable!()
            };
            self.retire_machine(machine);
            return Outcome::Worked;
        }
        // Find the outermost cancelled inline frame and unwind to it.
        let mut target = None;
        while let Some(f) = inline.last() {
            if f.cancel.is_cancelled() {
                target = inline.pop();
            } else {
                break;
            }
        }
        match target {
            Some(f) => {
                self.stats.frame_traversals += 1;
                machine.fail_parcall_until(f.id);
                let unsurfaced = machine.take_unsurfaced_cost();
                self.phase_cost += unsurfaced;
            }
            None => {
                // spurious wake-up: token cleared meanwhile (cannot
                // happen with our one-way tokens, but stay safe)
            }
        }
        Outcome::Worked
    }

    // ------------------------------------------------------------------
    // Waiting & integration
    // ------------------------------------------------------------------

    /// Copy the shipping closures of `idxs` (owner-local subgoals of
    /// `frame`) out of the owner machine's heap and publish their tasks.
    fn ship_slots(&mut self, frame: &Arc<FrameState>, idxs: &[usize]) {
        let costs = self.costs();
        // the owner machine sits directly below this Wait
        let n = self.stack.len();
        let Some(Act::Run { machine, .. }) = (n >= 2).then(|| &mut self.stack[n - 2]) else {
            unreachable!("Wait without Run below")
        };
        let goals: Vec<Cell> = {
            let inner = frame.inner.lock();
            idxs.iter()
                .map(|&i| inner.slots[i].parent_goal.expect("unshipped w/o goal"))
                .collect()
        };
        let (bundle, cells) = bundle_copy(&machine.heap, &goals);
        frame.install_closures(idxs, bundle);
        self.stats.cells_copied += cells as u64;
        let charge = cells as u64 * costs.heap_cell + costs.queue_op * idxs.len() as u64;
        self.stats.charge(charge);
        self.phase_cost += charge;
        let tasks: Vec<Task> = idxs
            .iter()
            .map(|&slot| Task {
                frame: frame.clone(),
                slot,
                creator: self.id,
            })
            .collect();
        self.sh.queue.lock().extend(tasks);
    }

    fn step_wait(&mut self) -> Outcome {
        let Some(Act::Wait { frame }) = self.stack.last() else {
            unreachable!()
        };
        let frame = frame.clone();
        match frame.stage() {
            FrameStage::Filling => {
                // An ancestor failed while this frame was filling: the
                // whole branch is doomed and will never reach Ready/Failed.
                // Unwind — the Run below observes its (cancelled) token on
                // its next phase.
                if frame.cancel.is_cancelled() {
                    self.stack.pop();
                    return Outcome::Worked;
                }
                let costs = self.costs();
                // Demand-driven shipping: if idle workers exist (or the
                // owner itself needs a closure to help below), copy the
                // closures of any still-local subgoals out of the owner's
                // heap and publish them.
                let want_ship = self.sh.cfg.ship == ace_runtime::ShipPolicy::Eager
                    || self.others_idle()
                    || !self.sh.cfg.opts.pdo;
                if want_ship {
                    let idxs = frame.unshipped();
                    if !idxs.is_empty() {
                        self.ship_slots(&frame, &idxs);
                        return Outcome::Worked;
                    }
                }
                // PDO (speculative): the owner picks up its own frame's
                // next unclaimed subgoal and runs it DIRECTLY on its
                // machine — no goal copy, no markers, no integration —
                // exactly the "single contiguous piece of computation" of
                // §4.2. A fence guards backtracking; if the subgoal turns
                // out nondeterministic it is rolled back and shipped
                // normally (determinacy is only known a posteriori).
                if self.sh.cfg.opts.pdo {
                    self.charge(costs.pdo_check);
                    if let Some(slot) = frame.claim_for_owner() {
                        let goal = frame.inner.lock().slots[slot]
                            .parent_goal
                            .expect("shipped slot without parent goal");
                        self.stack.pop(); // the Wait; re-pushed at the barrier
                        let Some(Act::Run {
                            machine,
                            inline,
                            owner_slot,
                            ..
                        }) = self.stack.last_mut()
                        else {
                            unreachable!("Wait without Run below")
                        };
                        let ctrl_len = machine.ctrl_len();
                        let trail = machine.heap.trail_mark();
                        let heap = machine.heap.heap_mark();
                        let fence_idx = machine.push_fence(frame.id, slot as u32);
                        machine.run_inline_branch(goal, frame.id);
                        owner_slot.push(OwnerSlot {
                            frame: frame.clone(),
                            slot,
                            fence_idx,
                            ctrl_len,
                            trail,
                            heap,
                        });
                        inline.push(frame);
                        return Outcome::Worked;
                    }
                }
                // Help-first: while blocked on this frame's barrier, only
                // pick up ITS unclaimed slots. Stealing unrelated (and
                // possibly long) work here would bury this Wait under new
                // activations and serialize the whole computation.
                match frame.claim(None) {
                    Some(slot) => {
                        self.charge(costs.queue_op);
                        self.start_slot(frame, slot);
                        Outcome::Worked
                    }
                    None => {
                        // remaining local goals the owner cannot run
                        // directly (failed speculation, LPCO-added): ship
                        // them so help-first / remote workers can
                        let idxs = frame.unshipped();
                        if !idxs.is_empty() {
                            self.ship_slots(&frame, &idxs);
                            return Outcome::Worked;
                        }
                        self.stats.idle_probes += 1;
                        Outcome::NoWork
                    }
                }
            }
            FrameStage::Ready => {
                self.stack.pop();
                self.integrate(&frame);
                Outcome::Worked
            }
            FrameStage::Failed => {
                let costs = self.costs();
                self.stack.pop();
                // one level of failure propagation up the frame chain
                self.stats.frame_traversals += 1;
                self.charge(costs.frame_traverse);
                let Some(Act::Run { machine, .. }) = self.stack.last_mut() else {
                    unreachable!("Wait without Run below");
                };
                // Deeper (already integrated) inline frames may sit above
                // this one on the control stack; discard them with it.
                machine.fail_parcall_until(frame.id);
                self.phase_cost += machine.take_unsurfaced_cost();
                Outcome::Worked
            }
            FrameStage::Integrated | FrameStage::Exhausted => {
                self.sh
                    .fail_with("engine bug: waiting on finished frame".into());
                Outcome::Worked
            }
        }
    }

    /// Splice the frame's slot solutions into the parent machine: copy each
    /// group bundle in, unify each member's solved instance with the
    /// parent-side subgoal term, record per-slot undo marks, materialize
    /// parent-side terms for LPCO-added slots, and resume the parent.
    fn integrate(&mut self, frame: &Arc<FrameState>) {
        let costs = self.costs();
        let mut copied = 0u64;
        let mut unify_steps = 0u64;
        let mut independence_violation = false;
        {
            let Some(Act::Run { machine, .. }) = self.stack.last_mut() else {
                unreachable!("integrate without parent Run")
            };
            let mut inner = frame.inner.lock();
            let from = inner.integrate_from;
            let leaders: Vec<usize> = inner
                .groups
                .keys()
                .copied()
                .filter(|&l| l >= from)
                .collect();
            'groups: for leader in leaders {
                let (bundle, members, extra) = {
                    let g = &inner.groups[&leader];
                    (
                        g.bundle.clone().expect("ready group without bundle"),
                        g.slots.clone(),
                        g.extra.clone(),
                    )
                };
                // Record the undo point for this group.
                let mark = (machine.heap.trail_mark(), machine.heap.heap_mark());
                // Joint copy of the whole bundle into the parent heap.
                let mut scratch = (*bundle.heap).clone();
                let tuple = scratch.new_struct(ace_logic::sym("$integ"), &bundle.roots);
                let out = copy_term(&scratch, tuple, &mut machine.heap);
                let Cell::Str(hdr) = out.root else {
                    unreachable!()
                };
                copied += out.cells_copied as u64;

                for (i, &slot) in members.iter().enumerate() {
                    inner.marks[slot] = Some(mark);
                    let solved = machine.heap.str_arg(hdr, i as u32);
                    let parent_goal = inner.slots[slot]
                        .parent_goal
                        .expect("parent goal not materialized in order");
                    if trace_enabled() {
                        eprintln!(
                            "INTEG f{} slot={slot} origin={:?} owner_run={} pg={:?} heap={}",
                            frame.id,
                            inner.slots[slot].origin,
                            inner.slots[slot].owner_run,
                            parent_goal,
                            machine.heap.len()
                        );
                    }
                    match ace_logic::unify::unify(&mut machine.heap, parent_goal, solved) {
                        Some(steps) => unify_steps += steps as u64,
                        None => {
                            independence_violation = true;
                            break 'groups;
                        }
                    }
                }
                // Materialize parent-side terms for LPCO-added slots.
                for &(added_slot, root_idx) in &extra {
                    let cell = machine.heap.str_arg(hdr, root_idx as u32);
                    inner.slots[added_slot].parent_goal = Some(cell);
                    inner.slots[added_slot].materialized = true;
                    inner.marks[added_slot] = Some(mark);
                }
            }
            if !independence_violation {
                inner.stage = FrameStage::Integrated;
                inner.integrate_from = inner.slots.len();
                drop(inner);
                // The frame may be buried under deeper (already
                // integrated) inline frames on the control stack, so
                // resume via its stored continuation.
                machine.resume_with_cont(frame.cont.clone());
            }
        }
        self.stats.cells_copied += copied;
        self.charge(copied * costs.heap_cell + unify_steps * costs.unify_step);
        if independence_violation {
            self.sh.fail_with(
                "parallel goals were not independent: cross-slot binding \
                 conflict at integration"
                    .into(),
            );
        }
    }

    // ------------------------------------------------------------------
    // Outside backtracking (redo)
    // ------------------------------------------------------------------

    /// The machine of the top `Run` activation is at `ParcallRedo`: find
    /// the rightmost group that can produce another solution and start
    /// advancing it; if none can, the parallel call is exhausted.
    fn on_redo(&mut self) -> Outcome {
        let costs = self.costs();
        self.stats.redo_rounds += 1;
        let t = self.now();
        self.tracer.emit(t, || EventKind::RedoRound);
        let Some(Act::Run {
            machine, inline, ..
        }) = self.stack.last_mut()
        else {
            unreachable!()
        };
        let frame = {
            let pf = machine
                .top_parcall_mut()
                .expect("ParcallRedo without frame");
            pf.ext
                .as_ref()
                .and_then(|e| e.downcast_ref::<Arc<FrameState>>())
                .cloned()
                .expect("parcall frame without engine attachment")
        };

        // Backtracking reached a frame that was never (or is no longer)
        // integrated: its inline branch failed — inside backtracking, the
        // whole parallel call fails (paper §2: a subgoal with no solution
        // fails the conjunction).
        if frame.stage() != FrameStage::Integrated {
            if inline.last().is_some_and(|f| f.id == frame.id) {
                inline.pop();
            }
            self.stats.slot_failures += 1;
            let t = self.vclock + self.phase_cost;
            self.tracer.emit(t, || EventKind::SlotFail);
            frame.fail();
            machine.fail_parcall();
            self.phase_cost += machine.take_unsurfaced_cost();
            return Outcome::Worked;
        }

        // Scan groups right-to-left for an advanceable one. Each visited
        // group costs a frame traversal — this is exactly the "repeated
        // traversal" LPCO's flattening reduces.
        /// What the redo scan selected: (group leader, kept generator if
        /// any, its goal cells, recompute-skip count).
        type Advance = (usize, Option<Box<Machine>>, Vec<Cell>, u64);
        let mut advance: Option<Advance> = None;
        {
            let mut inner = frame.inner.lock();
            let leaders: Vec<usize> = inner.groups.keys().copied().collect();
            for &leader in leaders.iter().rev() {
                self.stats.frame_traversals += 1;
                self.charge(costs.frame_traverse);
                let g = inner.groups.get_mut(&leader).unwrap();
                if g.exhausted {
                    continue;
                }
                if let Some(m) = g.machine.take() {
                    advance = Some((leader, Some(m), g.goal_cells.clone(), 0));
                    break;
                }
                if g.recompute {
                    let skip = g.solutions_delivered;
                    advance = Some((leader, None, Vec::new(), skip));
                    break;
                }
                // det group: cannot advance
                g.exhausted = true;
            }
            if advance.is_none() {
                inner.stage = FrameStage::Exhausted;
            }
        }

        match advance {
            None => {
                // Exhausted: fail the parallel call in the parent.
                let Some(Act::Run { machine, .. }) = self.stack.last_mut() else {
                    unreachable!()
                };
                machine.fail_parcall();
                self.phase_cost += machine.take_unsurfaced_cost();
                Outcome::Worked
            }
            Some((leader, Some(mut genm), goal_cells, _)) => {
                // Resume the kept generator.
                genm.backtrack();
                self.phase_cost += genm.take_unsurfaced_cost();
                self.stack.push(Act::Advance {
                    frame,
                    leader,
                    machine: genm,
                    mode: AdvanceMode::Generator,
                    goal_cells,
                });
                Outcome::Worked
            }
            Some((leader, None, _, skip)) => {
                // Recompute the group from its goal closures, sequentially.
                let mut m = self.get_machine();
                m.enable_parallel(false);
                let (roots, cells) = {
                    let inner = frame.inner.lock();
                    let g = &inner.groups[&leader];
                    let mut roots = Vec::new();
                    let mut cells = 0usize;
                    for &s in &g.slots {
                        let slot = &inner.slots[s];
                        let out = copy_term(&slot.goal_heap, slot.goal_root, &mut m.heap);
                        cells += out.cells_copied;
                        roots.push(out.root);
                    }
                    (roots, cells)
                };
                self.stats.cells_copied += cells as u64;
                self.charge(cells as u64 * costs.heap_cell);
                // conjoin the roots: run them in order
                let mut goal = *roots.last().unwrap();
                for &r in roots.iter().rev().skip(1) {
                    goal = m.heap.new_struct(ace_logic::sym(","), &[r, goal]);
                }
                m.set_query(goal);
                self.stack.push(Act::Advance {
                    frame,
                    leader,
                    machine: m,
                    mode: AdvanceMode::Recompute { skip, seen: 0 },
                    goal_cells: roots,
                });
                Outcome::Worked
            }
        }
    }

    fn step_advance(&mut self) -> Outcome {
        let quantum = self.sh.cfg.quantum;
        let Some(Act::Advance { frame, machine, .. }) = self.stack.last_mut() else {
            unreachable!()
        };
        let cancel = frame.cancel.clone();
        let status = machine.run(quantum, Some(&cancel));
        self.phase_cost += machine.take_unsurfaced_cost();
        let memo_events = machine.take_memo_events();
        self.emit_memo_events(memo_events);

        match status {
            Status::Running => Outcome::Worked,
            Status::Solution => {
                // Recompute mode may need to skip already-delivered ones.
                let Some(Act::Advance { machine, mode, .. }) = self.stack.last_mut() else {
                    unreachable!()
                };
                if let AdvanceMode::Recompute { skip, seen } = mode {
                    if *seen < *skip {
                        *seen += 1;
                        machine.backtrack();
                        self.phase_cost += machine.take_unsurfaced_cost();
                        return Outcome::Worked;
                    }
                }
                self.advance_succeeded()
            }
            Status::Failed => {
                let Some(Act::Advance {
                    frame,
                    leader,
                    machine,
                    ..
                }) = self.stack.pop()
                else {
                    unreachable!()
                };
                {
                    let mut inner = frame.inner.lock();
                    let g = inner.groups.get_mut(&leader).unwrap();
                    g.exhausted = true;
                    g.machine = None;
                }
                self.retire_machine(machine);
                // Parent (below) is still at ParcallRedo; next phase
                // rescans for a group further left.
                Outcome::Worked
            }
            Status::Cancelled => {
                let Some(Act::Advance { machine, .. }) = self.stack.pop() else {
                    unreachable!()
                };
                self.retire_machine(machine);
                Outcome::Worked
            }
            Status::Error(e) => {
                self.sh.fail_with(e);
                Outcome::Worked
            }
            other => {
                self.sh
                    .fail_with(format!("engine bug: unexpected generator status {other:?}"));
                Outcome::Worked
            }
        }
    }

    /// A group produced its next solution: rebuild its bundle, undo the
    /// parent's integrations from that group rightwards, reset and re-run
    /// the groups to its right, and wait for the wave to refill.
    fn advance_succeeded(&mut self) -> Outcome {
        let costs = self.costs();
        let Some(Act::Advance {
            frame,
            leader,
            machine,
            mode,
            goal_cells,
        }) = self.stack.pop()
        else {
            unreachable!()
        };

        let (bundle, cells) = bundle_copy(&machine.heap, &goal_cells);
        self.stats.cells_copied += cells as u64;
        self.charge(cells as u64 * costs.heap_cell);

        let mut new_tasks: Vec<Task> = Vec::new();
        let mut machine_opt = Some(machine);
        let mut rerun_branch: Option<Cell> = None;
        {
            // Undo parent integrations from this group onwards.
            let Some(Act::Run {
                machine: parent, ..
            }) = self.stack.last_mut()
            else {
                unreachable!("Advance without parent Run")
            };
            let mut inner = frame.inner.lock();
            let group_last = *inner.groups[&leader].slots.last().unwrap();
            // If the inline slot lies right of the advanced group, its
            // branch must re-run too; its bindings predate every
            // integration, so the undo point is the frame's creation.
            let rerun_inline = inner.inline.is_some_and(|i| i > group_last);
            let owner_reset =
                inner.slots.iter().enumerate().any(|(i, sl)| {
                    i > group_last && sl.owner_run && sl.state != SlotState::Dropped
                });
            // Inline and owner-executed bindings predate every integration
            // mark, so resetting them needs the frame-creation undo point.
            let deep_undo = rerun_inline || owner_reset;
            let (tm, hm) = if deep_undo {
                frame.created_at
            } else {
                inner.marks[leader].expect("advanced group not integrated")
            };
            let undone = parent.heap.undo_to(tm);
            parent.heap.truncate_to(hm);
            self.stats.trail_undos += undone as u64;
            self.charge(undone as u64 * costs.trail_undo);

            // Store the new bundle & machine state.
            {
                let g = inner.groups.get_mut(&leader).unwrap();
                g.bundle = Some(bundle);
                g.solutions_delivered += 1;
                if matches!(mode, AdvanceMode::Generator) {
                    g.machine = machine_opt.take();
                }
                // Recompute mode: the scratch machine is retired below.
            }

            // Reset everything to the right of the advanced group.
            let total = inner.slots.len();
            let mut pending = 0usize;
            for s in (group_last + 1)..total {
                if inner.slots[s].state == SlotState::Dropped {
                    continue;
                }
                if Some(s) == inner.inline {
                    // the owner machine re-runs this branch itself
                    inner.slots[s].state = SlotState::Running;
                    inner.marks[s] = None;
                    continue;
                }
                let origin = inner.slots[s].origin;
                // LPCO-added slots whose origin also reruns will be
                // re-created by that rerun: drop them.
                if origin.is_some_and(|o| o > group_last) {
                    inner.slots[s].state = SlotState::Dropped;
                    if let Some(gl) = inner.slots[s].group.take() {
                        inner.groups.remove(&gl);
                    }
                    inner.marks[s] = None;
                    continue;
                }
                if let Some(gl) = inner.slots[s].group.take() {
                    inner.groups.remove(&gl);
                }
                inner.slots[s].state = SlotState::Unclaimed;
                inner.slots[s].owner_run = false;
                inner.marks[s] = None;
                pending += 1;
                if inner.slots[s].shipped {
                    new_tasks.push(Task {
                        frame: frame.clone(),
                        slot: s,
                        creator: self.id,
                    });
                }
            }
            if deep_undo {
                // every integration was undone: redo them all, and drop
                // LPCO-materialized parent goals (their cells were
                // truncated; the origin's re-integration recreates them)
                for m in inner.marks.iter_mut() {
                    *m = None;
                }
                for sl in inner.slots.iter_mut() {
                    if sl.materialized {
                        sl.parent_goal = None;
                        sl.materialized = false;
                    }
                }
                inner.integrate_from = 0;
            }
            if rerun_inline {
                inner.inline_done = false;
                inner.rerun_inline = true;
                let idx = inner.inline.unwrap();
                rerun_branch = inner.slots[idx].parent_goal;
            } else if !deep_undo {
                inner.integrate_from = leader;
            }
            inner.pending = pending;
            inner.stage = if pending > 0 {
                FrameStage::Filling
            } else {
                FrameStage::Ready
            };
        }
        if let Some(m) = machine_opt {
            self.retire_machine(m);
        }
        if !new_tasks.is_empty() {
            self.sh.queue.lock().extend(new_tasks);
        }
        match rerun_branch {
            Some(branch) => {
                // Restart the inline branch on the owner machine; the
                // barrier Wait is pushed by its completion handler.
                let Some(Act::Run {
                    machine: parent,
                    inline,
                    ..
                }) = self.stack.last_mut()
                else {
                    unreachable!()
                };
                parent.run_inline_branch(branch, frame.id);
                inline.push(frame);
            }
            None => {
                self.stack.push(Act::Wait { frame });
            }
        }
        Outcome::Worked
    }
}

/// Refined runtime determinacy: a finished subgoal is deterministic when
/// no choice point survives AND every nested parcall frame it integrated
/// is itself incapable of further solutions. (The coarse
/// `Machine::is_deterministic_above` treats any parcall frame as a
/// nondeterminism source; this looks through the engine attachment.)
fn machine_is_deterministic(machine: &Machine) -> bool {
    region_is_deterministic(machine, 0)
}

/// Like [`machine_is_deterministic`], restricted to control frames at
/// height `from` and above (owner-PDO determinacy check of one region).
fn region_is_deterministic(machine: &Machine, from: usize) -> bool {
    use ace_machine::CtrlFrame;
    let ctrl = machine.ctrl_frames();
    ctrl[from.min(ctrl.len())..].iter().all(|f| match f {
        CtrlFrame::Marker(_) => true,
        CtrlFrame::Choice(_) => false,
        CtrlFrame::Parcall(pf) => pf
            .ext
            .as_ref()
            .and_then(|e| e.downcast_ref::<Arc<FrameState>>())
            .is_some_and(|fs| fs.fully_deterministic()),
    })
}

impl AndWorker {
    fn phase_inner(&mut self) -> Phase {
        if self.sh.done.load(Ordering::Acquire) {
            if !self.reported {
                self.reported = true;
                // Harvest counters from machines still on the activation
                // stack (the root machine in particular never retires).
                while let Some(act) = self.stack.pop() {
                    match act {
                        Act::Run { machine, .. } | Act::Advance { machine, .. } => {
                            self.retire_machine(machine);
                        }
                        Act::Wait { .. } => {}
                    }
                }
                self.sh.worker_stats.lock().push(self.stats);
                if let Some(buf) = self.tracer.take() {
                    self.sh.trace_bufs.lock().push(buf);
                }
            }
            return Phase::Done;
        }
        // Cooperative shutdown: the driver cancels the root token when it
        // contains a panic or hits a deadline. Converge to `done` so every
        // worker drains and reports instead of idling forever.
        if self.sh.root_cancel.is_cancelled() {
            self.sh
                .fail_with(format!("{FAULT_ERROR_PREFIX} run cancelled"));
            return Phase::Busy(1);
        }
        // Fault-injection checkpoint (same cadence as the cancel check).
        if let Some(action) = self.sh.injector.as_ref().and_then(|inj| inj.poll(self.id)) {
            self.stats.faults_injected += 1;
            match action {
                FaultAction::Stall(cost) => {
                    // A clock jump: virtual time lost, no state touched.
                    self.stats.fault_stalls += 1;
                    self.stats.charge(cost);
                    let t = self.now();
                    self.tracer
                        .emit(t, || EventKind::FaultInjected { kind: "stall" });
                    self.tracer.emit(t, || EventKind::FaultStall { cost });
                    return Phase::Busy(cost.max(1));
                }
                FaultAction::Cancel => {
                    let t = self.now();
                    self.tracer
                        .emit(t, || EventKind::FaultInjected { kind: "cancel" });
                    self.sh.fail_with(format!(
                        "{FAULT_ERROR_PREFIX} injected cancellation on worker {}",
                        self.id
                    ));
                    self.sh.root_cancel.cancel();
                    return Phase::Busy(1);
                }
                FaultAction::Die => {
                    panic!("{}", ace_runtime::fault::INJECTED_DEATH);
                }
            }
        }
        match self.do_phase() {
            Outcome::Worked => {
                self.idle_streak = 0;
                self.mark_idle(false);
                Phase::Busy(self.phase_cost.max(1))
            }
            Outcome::NoWork => {
                self.mark_idle(true);
                // Spin-then-back-off: consecutive fruitless probes grow
                // exponentially up to the quantum, so idle workers don't
                // flood the virtual-time driver with micro-phases.
                let base = self.sh.cfg.costs.idle_probe;
                let p = (base << self.idle_streak.min(6)).min(self.sh.cfg.quantum.max(base));
                self.idle_streak = self.idle_streak.saturating_add(1);
                self.stats.charge_idle(p);
                let t = self.vclock;
                self.tracer.emit(t, || EventKind::IdleProbe { cost: p });
                Phase::Idle(p)
            }
        }
    }
}

impl Agent for AndWorker {
    fn phase(&mut self) -> Phase {
        // Reset before anything can emit: a stale partial cost from the
        // previous phase would inflate event timestamps past this phase's
        // clock advance.
        self.phase_cost = 0;
        let start = self.vclock;
        let p = self.phase_inner();
        if let Phase::Busy(c) | Phase::Idle(c) = p {
            self.vclock += c;
            if self.tracer.lifecycle() {
                let phase = if matches!(p, Phase::Busy(_)) {
                    "busy"
                } else {
                    "idle"
                };
                self.tracer.emit(start, || EventKind::PhaseStart { phase });
                let end = self.vclock;
                self.tracer.emit(end, || EventKind::PhaseEnd { phase });
            }
        }
        p
    }
}
