//! Shared parcall-frame orchestration state.
//!
//! A [`FrameState`] is the cross-worker view of one machine-level
//! `ParcallFrame`: the slot table, solution bundles, grouping (PDO),
//! LPCO-added slots, and the integration bookkeeping the owning worker
//! uses to splice subgoal solutions back into the parent computation.

use std::collections::BTreeMap;
use std::sync::Arc;

use ace_logic::copy::copy_term;
use ace_logic::heap::HeapMark;
use ace_logic::sym::sym;
use ace_logic::{Cell, Heap, TrailMark};
use ace_machine::{Cont, Machine};
use ace_runtime::CancelToken;
use parking_lot::Mutex;

/// A self-contained heap holding one or more related terms (joint copies,
/// so variables shared between the terms stay shared).
#[derive(Debug, Clone)]
pub struct Bundle {
    pub heap: Arc<Heap>,
    pub roots: Vec<Cell>,
}

/// Copy `roots` jointly out of `src` into a fresh bundle. Returns the
/// bundle and the number of cells copied (for cost charging).
pub fn bundle_copy(src: &Heap, roots: &[Cell]) -> (Bundle, usize) {
    // Joint copy via a scratch tuple so shared variables stay shared.
    let mut scratch = src.clone();
    let tuple = scratch.new_struct(sym("$bundle"), roots);
    let mut heap = Heap::new();
    let out = copy_term(&scratch, tuple, &mut heap);
    let Cell::Str(hdr) = out.root else {
        unreachable!()
    };
    let roots_out: Vec<Cell> = (0..roots.len())
        .map(|i| heap.str_arg(hdr, i as u32))
        .collect();
    (
        Bundle {
            heap: Arc::new(heap),
            roots: roots_out,
        },
        out.cells_copied,
    )
}

/// Scheduling state of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Available for pickup.
    Unclaimed,
    /// Claimed by a worker (possibly merged into a PDO group).
    Running,
    /// First (or current-wave) solution available in its group's bundle.
    Done,
    /// Removed (LPCO-added slot invalidated by a redo of its origin).
    Dropped,
}

/// One subgoal slot of a parallel call.
#[derive(Debug)]
pub struct SlotRec {
    /// Closure holding the subgoal term to execute (goal shipping source).
    pub goal_heap: Arc<Heap>,
    pub goal_root: Cell,
    /// The subgoal term in the *parent* machine's heap, unified with the
    /// solution at integration. `None` for LPCO-added slots until the
    /// integration of their origin slot materializes it.
    pub parent_goal: Option<Cell>,
    pub state: SlotState,
    /// Leader slot index of the group executing this slot.
    pub group: Option<usize>,
    /// For LPCO-added slots: the slot whose merge created this one.
    pub origin: Option<usize>,
    /// Executed directly on the owner's machine (PDO): its bindings live
    /// in the parent heap below every integration mark, so a redo wave
    /// that resets it must unwind to the frame's creation marks.
    pub owner_run: bool,
    /// A PDO speculation already ran this slot and found it
    /// nondeterministic: never speculate on it again.
    pub spec_failed: bool,
    /// `parent_goal` was materialized by an integration (cross-machine
    /// LPCO) — it dies with that integration's cells and must be nulled
    /// whenever integrations are redone. Inline-merged goals (created
    /// below any spine choice point) stay valid across re-arrivals.
    pub materialized: bool,
    /// A goal-shipping closure exists (`goal_heap`/`goal_root` valid).
    /// Unshipped slots are owner-only until the owner copies closures on
    /// demand (when idle workers appear) — &ACE-style local goals.
    pub shipped: bool,
}

/// A group of consecutively-executed slots (always a single slot unless
/// PDO merged neighbours onto one machine).
#[derive(Debug, Default)]
pub struct GroupRec {
    /// Member slot indices, ascending and consecutive.
    pub slots: Vec<usize>,
    /// Resumable generator: kept while the group is nondeterministic and
    /// free of nested parcall frames (plain choice points only).
    pub machine: Option<Box<Machine>>,
    /// Latest solution bundle; roots `[0..slots.len())` are the solved
    /// instances of the member slots in order, further roots are
    /// LPCO-added branch goals (see `extra`).
    pub bundle: Option<Bundle>,
    /// Machine-heap cells of the shipped goals (bundle extraction roots)
    /// in the generator machine, when one is kept.
    pub goal_cells: Vec<Cell>,
    /// `(added_slot_idx, bundle_root_idx)` for LPCO-added branch goals.
    pub extra: Vec<(usize, usize)>,
    /// All member slots finished deterministically.
    pub det: bool,
    /// Nondeterministic but contained nested parcall frames: further
    /// solutions are obtained by (sequential) recomputation.
    pub recompute: bool,
    /// Solutions delivered to the parent so far (recomputation skip count).
    pub solutions_delivered: u64,
    /// Known to have no further solutions.
    pub exhausted: bool,
}

/// Lifecycle of a frame's current wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStage {
    /// Slots of the current wave are still being solved.
    Filling,
    /// All slots have solutions; awaiting integration by the owner.
    Ready,
    /// Integrated into the parent; parent is running past the parcall.
    Integrated,
    /// Some slot failed: the whole parallel call fails (inside backtrack).
    Failed,
    /// Cross-product enumeration exhausted all combinations.
    Exhausted,
}

/// Mutable interior of a frame.
#[derive(Debug)]
pub struct FrameInner {
    pub slots: Vec<SlotRec>,
    /// Groups keyed by leader slot index (ordered for right-to-left scans).
    pub groups: BTreeMap<usize, GroupRec>,
    pub stage: FrameStage,
    /// Slots of the current wave still lacking a solution (the inline slot
    /// is never counted — its completion is the owner's own Solution).
    pub pending: usize,
    /// First slot whose integration must (re)run in the next integration.
    pub integrate_from: usize,
    /// Per-slot parent (trail, heap) marks recorded at integration time.
    pub marks: Vec<Option<(TrailMark, HeapMark)>>,
    /// The slot executed inline on the owner's machine (&ACE model: the
    /// rightmost branch runs locally, needs no marker, no goal shipping
    /// and no integration — its bindings land in the parent heap
    /// directly).
    pub inline: Option<usize>,
    /// A redo wave reset the inline slot: the next integration must
    /// re-dispatch the inline branch in front of the frame continuation.
    pub rerun_inline: bool,
    /// The inline slot finished its current wave.
    pub inline_done: bool,
}

/// Cross-worker state of one parallel call.
pub struct FrameState {
    pub id: u64,
    /// Nesting depth: 1 for a frame created by the root computation, +1 per
    /// nested parcall. LPCO keeps this at the origin's depth (flattening);
    /// the Figure-4 shape tests assert on it.
    pub depth: u32,
    pub cancel: CancelToken,
    /// The owner machine's continuation after the parallel call.
    pub cont: Cont,
    /// Owner machine (trail, heap) marks at frame creation — the undo
    /// point when a redo wave must also re-run the inline branch.
    pub created_at: (TrailMark, HeapMark),
    pub inner: Mutex<FrameInner>,
}

impl FrameState {
    /// Build a frame for `branches` (terms in `parent_heap`). When
    /// `inline_last` is set the last branch is executed inline by the
    /// owner (no goal-shipping copy for it); the others are copied into a
    /// shared closure bundle for pickup. Returns the frame and the number
    /// of cells copied.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        id: u64,
        parent_heap: &Heap,
        branches: &[Cell],
        depth: u32,
        cancel_parent: &CancelToken,
        inline_last: bool,
        cont: Cont,
        created_at: (TrailMark, HeapMark),
        ship_now: bool,
    ) -> (Arc<FrameState>, usize) {
        let to_ship = if inline_last {
            &branches[..branches.len() - 1]
        } else {
            branches
        };
        // Demand-driven goal shipping: closures are only copied when idle
        // workers could actually steal them; otherwise goals stay owner-
        // local (copied later on demand, or never — PDO runs them in
        // place).
        let (bundle, cells) = if ship_now {
            bundle_copy(parent_heap, to_ship)
        } else {
            (
                Bundle {
                    heap: Arc::new(Heap::new()),
                    roots: vec![Cell::Nil; to_ship.len()],
                },
                0,
            )
        };
        let mut slots: Vec<SlotRec> = to_ship
            .iter()
            .enumerate()
            .map(|(i, &pg)| SlotRec {
                goal_heap: bundle.heap.clone(),
                goal_root: bundle.roots[i],
                parent_goal: Some(pg),
                state: SlotState::Unclaimed,
                group: None,
                origin: None,
                owner_run: false,
                spec_failed: false,
                materialized: false,
                shipped: ship_now,
            })
            .collect();
        let inline = if inline_last {
            // The inline slot needs no closure: its goal lives in (and its
            // solution binds) the parent heap directly.
            slots.push(SlotRec {
                goal_heap: bundle.heap.clone(), // unused
                goal_root: Cell::Nil,           // unused
                parent_goal: Some(*branches.last().unwrap()),
                state: SlotState::Running,
                group: None,
                origin: None,
                owner_run: false,
                spec_failed: false,
                materialized: false,
                shipped: false,
            });
            Some(slots.len() - 1)
        } else {
            None
        };
        let n = slots.len();
        let pending = if inline_last { n - 1 } else { n };
        let frame = FrameState {
            id,
            depth,
            cancel: cancel_parent.child(),
            cont,
            created_at,
            inner: Mutex::new(FrameInner {
                slots,
                groups: BTreeMap::new(),
                stage: FrameStage::Filling,
                pending,
                integrate_from: 0,
                marks: vec![None; n],
                inline,
                rerun_inline: false,
                inline_done: false,
            }),
        };
        (Arc::new(frame), cells)
    }

    /// Claim an unclaimed slot for OWNER-direct (PDO) execution: like
    /// [`FrameState::claim`], but skips slots whose speculation already
    /// failed (nondeterministic — they must ship normally).
    pub fn claim_for_owner(&self) -> Option<usize> {
        let mut inner = self.inner.lock();
        if inner.stage != FrameStage::Filling {
            return None;
        }
        // Cross-machine LPCO slots (materialized parent goals) ship via
        // their closures: their parent-side terms live above integration
        // marks and may be unwound by redo waves, so they are never
        // owner-run. Inline-merged slots' goals live on the owner's own
        // spine (below any choice point) and are safe to run directly.
        let idx = inner.slots.iter().position(|s| {
            s.state == SlotState::Unclaimed
                && !s.spec_failed
                && !s.materialized
                && s.parent_goal.is_some()
        })?;
        inner.slots[idx].state = SlotState::Running;
        Some(idx)
    }

    /// Claim an unclaimed slot: `preferred` first (PDO adjacency), else the
    /// lowest-index unclaimed slot. Returns the claimed index.
    pub fn claim(&self, preferred: Option<usize>) -> Option<usize> {
        let mut inner = self.inner.lock();
        if inner.stage != FrameStage::Filling {
            return None;
        }
        if let Some(p) = preferred {
            if inner
                .slots
                .get(p)
                .is_some_and(|s| s.state == SlotState::Unclaimed && s.shipped)
            {
                inner.slots[p].state = SlotState::Running;
                return Some(p);
            }
            return None;
        }
        let idx = inner
            .slots
            .iter()
            .position(|s| s.state == SlotState::Unclaimed && s.shipped)?;
        inner.slots[idx].state = SlotState::Running;
        Some(idx)
    }

    /// Indices of unclaimed slots that have no shipping closure yet.
    pub fn unshipped(&self) -> Vec<usize> {
        self.inner
            .lock()
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.state == SlotState::Unclaimed && !s.shipped && s.parent_goal.is_some()
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Install shipping closures for `idxs` (copied by the owner from its
    /// own heap into `bundle`, whose roots parallel `idxs`).
    pub fn install_closures(&self, idxs: &[usize], bundle: Bundle) {
        let mut inner = self.inner.lock();
        for (k, &i) in idxs.iter().enumerate() {
            let s = &mut inner.slots[i];
            if s.state == SlotState::Unclaimed && !s.shipped {
                s.goal_heap = bundle.heap.clone();
                s.goal_root = bundle.roots[k];
                s.shipped = true;
            }
        }
    }

    /// Is this frame's wave complete (stage Ready) / failed?
    pub fn stage(&self) -> FrameStage {
        self.inner.lock().stage
    }

    /// Mark the frame failed (inside backtracking) and cancel all of its
    /// running subgoal executions and nested frames.
    pub fn fail(&self) {
        let mut inner = self.inner.lock();
        if inner.stage != FrameStage::Failed {
            inner.stage = FrameStage::Failed;
            self.cancel.cancel();
        }
    }

    /// Is this (integrated) frame incapable of producing further
    /// solutions? True when every group is exhausted — the refined
    /// determinacy test for subgoals whose nested parallel calls were
    /// themselves deterministic.
    pub fn fully_deterministic(&self) -> bool {
        let inner = self.inner.lock();
        inner.stage == FrameStage::Integrated && inner.groups.values().all(|g| g.exhausted)
    }

    /// Number of live (non-dropped) slots — the frame's width. LPCO grows
    /// this instead of nesting new frames.
    pub fn width(&self) -> usize {
        self.inner
            .lock()
            .slots
            .iter()
            .filter(|s| s.state != SlotState::Dropped)
            .count()
    }
}

impl std::fmt::Debug for FrameState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameState")
            .field("id", &self.id)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_logic::sym::sym as s;
    use ace_logic::term::variables;

    #[test]
    fn bundle_copy_preserves_shared_vars() {
        let mut h = Heap::new();
        let x = h.new_var();
        let g1 = h.new_struct(s("p"), &[x, Cell::Int(1)]);
        let g2 = h.new_struct(s("q"), &[x]);
        let (b, cells) = bundle_copy(&h, &[g1, g2]);
        assert!(cells > 0);
        assert_eq!(b.roots.len(), 2);
        let v1 = variables(&b.heap, b.roots[0]);
        let v2 = variables(&b.heap, b.roots[1]);
        assert_eq!(v1, v2, "shared variable stays shared across the bundle");
    }

    #[test]
    fn frame_create_and_claim_in_order() {
        let mut h = Heap::new();
        let g1 = Cell::Atom(s("a"));
        let g2 = h.new_struct(s("p"), &[Cell::Int(1)]);
        let g3 = Cell::Atom(s("c"));
        let root = CancelToken::new();
        let (f, _) = FrameState::create(
            1,
            &h,
            &[g1, g2, g3],
            1,
            &root,
            false,
            None,
            (h.trail_mark(), h.heap_mark()),
            true,
        );
        assert_eq!(f.width(), 3);
        assert_eq!(f.claim(None), Some(0));
        assert_eq!(f.claim(None), Some(1));
        assert_eq!(f.claim(None), Some(2));
        assert_eq!(f.claim(None), None);
    }

    #[test]
    fn claim_preferred_respects_state() {
        let mut h = Heap::new();
        let g1 = h.new_struct(s("p"), &[Cell::Int(1)]);
        let g2 = h.new_struct(s("p"), &[Cell::Int(2)]);
        let root = CancelToken::new();
        let (f, _) = FrameState::create(
            1,
            &h,
            &[g1, g2],
            1,
            &root,
            false,
            None,
            (h.trail_mark(), h.heap_mark()),
            true,
        );
        assert_eq!(f.claim(Some(1)), Some(1));
        assert_eq!(f.claim(Some(1)), None, "already claimed");
        assert_eq!(f.claim(None), Some(0));
    }

    #[test]
    fn fail_cancels_descendants() {
        let mut h = Heap::new();
        let g = h.new_struct(s("p"), &[Cell::Int(1)]);
        let root = CancelToken::new();
        let (f, _) = FrameState::create(
            1,
            &h,
            &[g],
            1,
            &root,
            false,
            None,
            (h.trail_mark(), h.heap_mark()),
            true,
        );
        let slot_token = f.cancel.child();
        f.fail();
        assert!(slot_token.is_cancelled());
        assert!(!root.is_cancelled(), "parent token unaffected");
        assert_eq!(f.stage(), FrameStage::Failed);
        assert_eq!(f.claim(None), None, "failed frame hands out no work");
    }
}
