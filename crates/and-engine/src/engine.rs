//! And-parallel engine entry point.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;

use ace_logic::Database;
use ace_machine::{Machine, Solution};
use ace_runtime::{
    Agent, DriverKind, EngineConfig, FaultInjector, RunOutcome, SimDriver, Stats, ThreadsDriver,
    Trace, TraceSink,
};
use parking_lot::Mutex;

use crate::worker::{AndWorker, Shared};

/// Result of one and-parallel query run.
#[derive(Debug)]
pub struct AndReport {
    pub solutions: Vec<Solution>,
    /// Driver outcome: virtual time (the number every reproduced table
    /// reports), per-worker clocks, wall time.
    pub outcome: RunOutcome,
    /// Aggregated worker statistics.
    pub stats: Stats,
    pub per_worker: Vec<Stats>,
    /// Merged event trace (present only when tracing was enabled).
    pub trace: Option<Trace>,
}

/// The and-parallel engine: configure once, run queries.
pub struct AndEngine {
    db: Arc<Database>,
}

impl AndEngine {
    pub fn new(db: Arc<Database>) -> Self {
        AndEngine { db }
    }

    /// Run `query` under `cfg` and collect solutions plus metrics.
    pub fn run(&self, query: &str, cfg: &EngineConfig) -> Result<AndReport, String> {
        let shared = Arc::new(Shared {
            db: self.db.clone(),
            cfg: cfg.clone(),
            queue: Mutex::new(VecDeque::new()),
            idle_workers: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            solutions: Mutex::new(Vec::new()),
            solutions_count: AtomicUsize::new(0),
            error: Mutex::new(None),
            root_cancel: cfg.root_cancel(),
            worker_stats: Mutex::new(Vec::new()),
            trace_bufs: Mutex::new(Vec::new()),
            injector: cfg
                .fault_plan
                .as_ref()
                .map(|p| FaultInjector::new(p, cfg.workers.max(1))),
            memo: cfg.resolve_memo_table(),
            table: cfg.resolve_table_space(),
        });

        let mut workers: Vec<AndWorker> = (0..cfg.workers.max(1))
            .map(|id| AndWorker::new(id, shared.clone()))
            .collect();

        let costs = Arc::new(cfg.costs.clone());
        let mut root = Box::new(Machine::new(self.db.clone(), costs));
        root.enable_parallel(true);
        root.set_memo(shared.memo.clone(), cfg.trace.enabled);
        root.set_table(shared.table.clone(), cfg.trace.enabled);
        root.set_memo_tenant(cfg.memo_tenant);
        root.set_clause_exec(cfg.clause_exec);
        root.set_dispatch_trace(cfg.trace.enabled && cfg.trace.dispatch);
        let vars = root
            .load_query_text(query)
            .map_err(|e| format!("query parse error: {e}"))?;
        workers[0].install_root(root, vars);

        let sink = cfg.trace.enabled.then(|| TraceSink::new(&cfg.trace));
        let outcome = match cfg.driver {
            DriverKind::Sim => {
                let agents: Vec<Box<dyn Agent>> = workers
                    .into_iter()
                    .map(|w| Box::new(w) as Box<dyn Agent>)
                    .collect();
                let mut driver =
                    SimDriver::new(cfg.virtual_time_limit).with_cancel(shared.root_cancel.clone());
                if let Some(s) = &sink {
                    driver = driver.with_trace(s.clone());
                }
                driver.run(agents)
            }
            DriverKind::Threads => {
                let agents: Vec<Box<dyn Agent + Send>> = workers
                    .into_iter()
                    .map(|w| Box::new(w) as Box<dyn Agent + Send>)
                    .collect();
                let mut driver =
                    ThreadsDriver::new(cfg.threads_deadline, Some(shared.root_cancel.clone()));
                if let Some(s) = &sink {
                    driver = driver.with_trace(s.clone());
                }
                driver.run(agents)
            }
        };

        // Panics and driver aborts carry their own structured, prefixed
        // messages; report them ahead of any secondary error the drain
        // path may have recorded.
        if let Some(a) = &outcome.aborted {
            return Err(a.clone());
        }
        if let Some(e) = shared.error.lock().take() {
            return Err(e);
        }

        let per_worker = shared.worker_stats.lock().clone();
        let mut stats = Stats::new();
        for w in &per_worker {
            stats += *w;
        }
        // Fold the finished run into the live registry (engine totals +
        // per-tenant memo traffic); a scrape between runs sees it.
        if let Some(metrics) = &cfg.metrics {
            metrics.record_run("and", cfg.memo_tenant, &stats, outcome.virtual_time);
        }
        let solutions = std::mem::take(&mut *shared.solutions.lock());
        let trace =
            sink.map(|s| Trace::merge(std::mem::take(&mut *shared.trace_bufs.lock()), s.drain()));
        Ok(AndReport {
            solutions,
            outcome,
            stats,
            per_worker,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_runtime::OptFlags;

    fn db(src: &str) -> Arc<Database> {
        Arc::new(Database::load(src).unwrap())
    }

    fn cfg(workers: usize, opts: OptFlags) -> EngineConfig {
        EngineConfig::default()
            .with_workers(workers)
            .with_opts(opts)
            .all_solutions()
    }

    fn renders(r: &AndReport) -> Vec<String> {
        r.solutions.iter().map(|s| s.render()).collect()
    }

    const BASE: &str = r#"
        p(1). p(2).
        q(10). q(20).
        double(X, Y) :- Y is X * 2.
        add(X, Y, Z) :- Z is X + Y.
    "#;

    #[test]
    fn deterministic_parcall_single_worker() {
        let e = AndEngine::new(db(BASE));
        let r = e
            .run("double(3, A) & double(4, B)", &cfg(1, OptFlags::none()))
            .unwrap();
        assert_eq!(renders(&r), vec!["A=6, B=8"]);
        assert_eq!(r.stats.parcall_frames, 1);
        assert_eq!(r.stats.parcall_slots, 2);
    }

    #[test]
    fn deterministic_parcall_many_workers() {
        for workers in [2, 4, 10] {
            let e = AndEngine::new(db(BASE));
            let r = e
                .run(
                    "double(3, A) & double(4, B) & double(5, C)",
                    &cfg(workers, OptFlags::none()),
                )
                .unwrap();
            assert_eq!(renders(&r), vec!["A=6, B=8, C=10"], "workers={workers}");
        }
    }

    #[test]
    fn cross_product_enumeration_matches_sequential_order() {
        let e = AndEngine::new(db(BASE));
        let r = e.run("p(X) & q(Y)", &cfg(2, OptFlags::none())).unwrap();
        assert_eq!(
            renders(&r),
            vec!["X=1, Y=10", "X=1, Y=20", "X=2, Y=10", "X=2, Y=20"]
        );
    }

    #[test]
    fn inside_failure_fails_parcall() {
        let e = AndEngine::new(db(BASE));
        let r = e.run("p(X) & fail", &cfg(2, OptFlags::none())).unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn failure_after_parcall_backtracks_into_it() {
        let e = AndEngine::new(db(BASE));
        let r = e
            .run(
                "(p(X) & q(Y)), X =:= 2, Y =:= 20",
                &cfg(2, OptFlags::none()),
            )
            .unwrap();
        assert_eq!(renders(&r), vec!["X=2, Y=20"]);
    }

    #[test]
    fn markers_allocated_without_spo_elided_with() {
        let e = AndEngine::new(db(BASE));
        let r0 = e
            .run("double(1, A) & double(2, B)", &cfg(2, OptFlags::none()))
            .unwrap();
        assert!(r0.stats.markers_allocated > 0, "{:?}", r0.stats);
        let r1 = e
            .run("double(1, A) & double(2, B)", &cfg(2, OptFlags::spo_only()))
            .unwrap();
        assert_eq!(r1.stats.markers_allocated, 0);
        // only the shipped slot carries markers (the inline branch never
        // does — paper Figure 2), so one slot => two elisions
        assert!(r1.stats.markers_elided_spo >= 2);
    }

    #[test]
    fn spo_still_allocates_markers_for_nondet_slots() {
        let e = AndEngine::new(db(BASE));
        let r = e.run("p(X) & q(Y)", &cfg(2, OptFlags::spo_only())).unwrap();
        // both slots are nondeterministic: markers materialize
        assert!(r.stats.markers_allocated > 0);
        assert_eq!(
            renders(&r),
            vec!["X=1, Y=10", "X=1, Y=20", "X=2, Y=10", "X=2, Y=20"]
        );
    }

    #[test]
    fn pdo_merges_adjacent_slots_on_one_worker() {
        let e = AndEngine::new(db(BASE));
        let r = e
            .run(
                "double(1, A) & double(2, B) & double(3, C) & double(4, D)",
                &cfg(1, OptFlags::pdo_only()),
            )
            .unwrap();
        assert_eq!(renders(&r), vec!["A=2, B=4, C=6, D=8"]);
        assert!(r.stats.pdo_merges > 0, "{:?}", r.stats);
    }

    const PROCESS_LIST: &str = r#"
        process(X, Y) :- Y is X * 10.
        process_list([], []).
        process_list([H|T], [HO|TO]) :- process(H, HO) & process_list(T, TO).
    "#;

    #[test]
    fn lpco_flattens_recursive_parcalls() {
        let e = AndEngine::new(db(PROCESS_LIST));
        let q = "process_list([1,2,3,4], Out)";
        let r0 = e.run(q, &cfg(2, OptFlags::none())).unwrap();
        assert_eq!(renders(&r0), vec!["Out=[10,20,30,40]"]);
        // unoptimized: one frame per recursion level
        assert_eq!(r0.stats.parcall_frames, 4);
        assert_eq!(r0.stats.frames_elided_lpco, 0);

        let r1 = e.run(q, &cfg(2, OptFlags::lpco_only())).unwrap();
        assert_eq!(renders(&r1), vec!["Out=[10,20,30,40]"]);
        // optimized: the nested frames merge into the first
        assert_eq!(r1.stats.parcall_frames, 1, "{:?}", r1.stats);
        assert_eq!(r1.stats.frames_elided_lpco, 3);
        assert_eq!(r1.stats.slots_merged_lpco, 6);
    }

    #[test]
    fn nested_parcall_without_lpco_runs_correctly() {
        let e = AndEngine::new(db(PROCESS_LIST));
        let r = e
            .run(
                "process_list([5,6], O) & process(7, P)",
                &cfg(3, OptFlags::none()),
            )
            .unwrap();
        assert_eq!(renders(&r), vec!["O=[50,60], P=70"]);
    }

    #[test]
    fn all_optimizations_together() {
        let e = AndEngine::new(db(PROCESS_LIST));
        for workers in [1, 2, 5] {
            let r = e
                .run(
                    "process_list([1,2,3,4,5,6], Out)",
                    &cfg(workers, OptFlags::all()),
                )
                .unwrap();
            assert_eq!(renders(&r), vec!["Out=[10,20,30,40,50,60]"]);
        }
    }

    #[test]
    fn redo_with_nondet_slots_and_pdo() {
        let e = AndEngine::new(db(BASE));
        let r = e.run("p(X) & q(Y)", &cfg(1, OptFlags::pdo_only())).unwrap();
        assert_eq!(
            renders(&r),
            vec!["X=1, Y=10", "X=1, Y=20", "X=2, Y=10", "X=2, Y=20"]
        );
    }

    #[test]
    fn threads_driver_equivalence() {
        let e = AndEngine::new(db(BASE));
        let mut c = cfg(3, OptFlags::all());
        c.driver = DriverKind::Threads;
        let r = e.run("p(X) & q(Y)", &c).unwrap();
        let mut got = renders(&r);
        got.sort();
        assert_eq!(
            got,
            vec!["X=1, Y=10", "X=1, Y=20", "X=2, Y=10", "X=2, Y=20"]
        );
    }

    #[test]
    fn sim_is_deterministic_across_runs() {
        let e = AndEngine::new(db(PROCESS_LIST));
        let c = cfg(4, OptFlags::all());
        let t1 = e.run("process_list([1,2,3,4,5], O)", &c).unwrap();
        let t2 = e.run("process_list([1,2,3,4,5], O)", &c).unwrap();
        assert_eq!(t1.outcome.virtual_time, t2.outcome.virtual_time);
        assert_eq!(t1.outcome.clocks, t2.outcome.clocks);
    }

    #[test]
    fn memoization_reuses_answers_across_runs() {
        use ace_runtime::{MemoConfig, MemoTable};
        let e = AndEngine::new(db(r#"
            app([], L, L).
            app([H|T], L, [H|R]) :- app(T, L, R).
            nrev([], []).
            nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
            cell(R) :- nrev([1,2,3,4,5,6,7,8,9,10], R).
            pair(A, B) :- cell(A) & cell(B).
        "#));
        let q = "pair(A, B)";
        let base = e.run(q, &cfg(2, OptFlags::none())).unwrap();
        assert_eq!(base.solutions.len(), 1);

        let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let c = cfg(2, OptFlags::none()).with_memo_table(table.clone());
        let cold = e.run(q, &c).unwrap();
        assert_eq!(renders(&cold), renders(&base));
        assert!(cold.stats.memo_stores > 0, "{}", cold.stats.summary());

        // Second run against the now-warm table: the `cell/1` subgoals hit
        // immediately and the whole nrev recursion is skipped.
        let warm = e.run(q, &c).unwrap();
        assert_eq!(renders(&warm), renders(&base));
        assert!(warm.stats.memo_hits > 0, "{}", warm.stats.summary());
        assert!(warm.stats.calls < cold.stats.calls);
        assert!(warm.outcome.virtual_time < cold.outcome.virtual_time);
        assert_eq!(table.counters().stores, cold.stats.memo_stores);
    }

    #[test]
    fn memo_off_runs_are_bit_identical_to_the_seed_config() {
        let e = AndEngine::new(db(PROCESS_LIST));
        let q = "process_list([1,2,3], Out)";
        let plain = e.run(q, &cfg(2, OptFlags::all())).unwrap();
        // `with_memo` with `enabled: false` must not perturb anything.
        let c = cfg(2, OptFlags::all()).with_memo(ace_runtime::MemoConfig::default());
        let off = e.run(q, &c).unwrap();
        assert_eq!(off.outcome.virtual_time, plain.outcome.virtual_time);
        assert_eq!(off.stats, plain.stats);
        assert_eq!(off.stats.memo_hits + off.stats.memo_misses, 0);
    }

    #[test]
    fn tabled_slots_run_under_parallel_conjunction() {
        use ace_runtime::{TableConfig, TableSpace};
        let e = AndEngine::new(db(r#"
            :- table(path/2).
            path(X, Y) :- path(X, Z), edge(Z, Y).
            path(X, Y) :- edge(X, Y).
            edge(a, b).
            edge(b, c).
            edge(b, d).
            edge(c, a).
            pair(X, Y) :- path(a, X) & path(b, Y).
        "#));
        let q = "pair(X, Y)";
        for workers in [1, 2, 4] {
            let space = Arc::new(TableSpace::new(&TableConfig::enabled()));
            let c = cfg(workers, OptFlags::none()).with_table_space(space.clone());
            let r = e.run(q, &c).unwrap();
            // Full cross product of the two closures (both are {a,b,c,d}).
            let mut got = renders(&r);
            got.sort();
            assert_eq!(got.len(), 16, "workers={workers}: {got:?}");
            got.dedup();
            assert_eq!(got.len(), 16, "duplicate answers, workers={workers}");
            assert!(r.stats.table_completes >= 2, "{}", r.stats.summary());
            assert_eq!(space.complete_len(), 2);
        }
    }

    #[test]
    fn parcall_inside_a_tabled_clause_degrades_soundly() {
        use ace_runtime::{TableConfig, TableSpace};
        // `&` in the body of a tabled clause must degrade to `,` (the
        // derivation's continuation is machine-local) and still produce
        // the right answers.
        let e = AndEngine::new(db(r#"
            :- table(both/2).
            both(X, Y) :- p(X) & q(Y).
            p(1). p(2).
            q(10).
        "#));
        let space = Arc::new(TableSpace::new(&TableConfig::enabled()));
        let c = cfg(2, OptFlags::none()).with_table_space(space.clone());
        let r = e.run("both(X, Y)", &c).unwrap();
        let mut got = renders(&r);
        got.sort();
        assert_eq!(got, vec!["X=1, Y=10", "X=2, Y=10"]);
        assert_eq!(r.stats.table_completes, 1, "{}", r.stats.summary());
    }

    #[test]
    fn tabling_off_and_runs_are_bit_identical() {
        let e = AndEngine::new(db(PROCESS_LIST));
        let q = "process_list([1,2,3], Out)";
        let plain = e.run(q, &cfg(2, OptFlags::all())).unwrap();
        let c = cfg(2, OptFlags::all()).with_table(ace_runtime::TableConfig::default());
        let off = e.run(q, &c).unwrap();
        assert_eq!(off.outcome.virtual_time, plain.outcome.virtual_time);
        assert_eq!(off.stats, plain.stats);
        assert_eq!(off.stats.table_hits + off.stats.table_subgoals, 0);
    }

    #[test]
    fn error_in_slot_surfaces() {
        let e = AndEngine::new(db(BASE));
        let err = e.run("double(1, A) & nosuch(B)", &cfg(2, OptFlags::none()));
        assert!(err.is_err());
    }

    #[test]
    fn sequential_goals_around_parcall() {
        let e = AndEngine::new(db(BASE));
        let r = e
            .run(
                "p(X), (double(X, A) & add(X, 100, B)), A < 100",
                &cfg(2, OptFlags::none()),
            )
            .unwrap();
        assert_eq!(renders(&r), vec!["A=2, B=101, X=1", "A=4, B=102, X=2"]);
    }

    /// Attaching a metrics registry must not perturb virtual time or
    /// stats, and the run must fold into the `and` engine family.
    #[test]
    fn metrics_attach_is_bit_identical() {
        let e = AndEngine::new(db(BASE));
        let q = "p(X), (double(X, A) & add(X, 100, B))";
        let plain = e.run(q, &cfg(2, OptFlags::all())).unwrap();
        let registry = ace_runtime::MetricsRegistry::shared();
        let c = cfg(2, OptFlags::all()).with_metrics(registry.clone());
        let live = e.run(q, &c).unwrap();
        assert_eq!(live.outcome.virtual_time, plain.outcome.virtual_time);
        assert_eq!(live.stats, plain.stats);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("ace_engine_runs_total", &[("engine", "and")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("ace_engine_virtual_time_total", &[("engine", "and")]),
            Some(live.outcome.virtual_time)
        );
    }
}
