//! # ace-memo — a concurrent answer-memoization table
//!
//! The caching layer the ROADMAP's "repeated subgoal" line of related
//! work calls for: a sharded, concurrent call table mapping canonicalized
//! call terms ([`ace_logic::CanonKey`]) to *complete* answer sets stored
//! as relocatable heap arenas ([`ace_logic::TermArena`]). Any worker —
//! and-parallel, or-parallel, or the sequential machine — can replay a
//! published answer with a block copy instead of re-running the goal.
//!
//! Design points:
//!
//! * **Variant normalization**: keys are produced by a `copy_term`-style
//!   key writer that numbers variables by first occurrence, so renamed
//!   calls share one entry.
//! * **Completeness before reuse**: an entry is only published once its
//!   answer set is known complete (the producing computation was
//!   determinate, or enumerated the call to exhaustion). Lookups
//!   therefore never return partial answer sets, and the or-engine can
//!   short-circuit claims on calls whose answers are already tabled.
//! * **Epochs**: every store gets a globally monotone epoch from the
//!   table, carried on `MemoHit`/`MemoStore` trace events — the handle
//!   the `TraceChecker` uses to assert "no hit before the store of the
//!   same key epoch".
//! * **Bounded memory**: per-shard LRU eviction at a configurable
//!   capacity, surfaced through the `memo_evictions` counter.
//! * **Poison tolerance**: shard locks are `std::sync::Mutex` acquired
//!   with `unwrap_or_else(PoisonError::into_inner)` — consistent with the
//!   fault model, a worker death mid-operation must not take the table
//!   (or the run) down with it. Entries are immutable once inserted, so a
//!   poisoned shard is never structurally torn.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ace_logic::{CanonKey, TermArena};

/// Memoization knobs, threaded through `EngineConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoConfig {
    /// Master switch. Off by default: no table is allocated and every
    /// consultation point in the engines is a single branch.
    pub enabled: bool,
    /// Number of independent shards (lock granularity).
    pub shards: usize,
    /// Maximum entries per shard; LRU eviction beyond.
    pub capacity_per_shard: usize,
    /// Per-tenant entry cap per shard on a table shared across queries
    /// (the serving layer's fairness knob). A tenant at its cap recycles
    /// its *own* least-recently-used entries, and under capacity pressure
    /// the inserting tenant's entries are preferred as victims — so one
    /// flooding tenant can never evict another tenant's warm entries.
    /// `None` = single-tenant behaviour, exactly as before.
    pub tenant_quota: Option<usize>,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            enabled: false,
            shards: 16,
            capacity_per_shard: 256,
            tenant_quota: None,
        }
    }
}

impl MemoConfig {
    /// A config with memoization switched on (default sizing).
    pub fn enabled() -> Self {
        MemoConfig {
            enabled: true,
            ..MemoConfig::default()
        }
    }

    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    pub fn with_capacity_per_shard(mut self, capacity: usize) -> Self {
        self.capacity_per_shard = capacity.max(1);
        self
    }

    pub fn with_tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = Some(quota.max(1));
        self
    }
}

/// One complete, immutable answer set for a canonicalized call.
#[derive(Debug)]
pub struct MemoEntry {
    /// Globally monotone store epoch (trace correlation).
    pub epoch: u64,
    /// Hash of the producing key (trace correlation).
    pub key_hash: u64,
    /// The answers: each arena holds one fully-instantiated copy of the
    /// call term, replayed by thawing and unifying with the live call.
    pub answers: Vec<TermArena>,
    /// Answer set known complete (always true for published entries; the
    /// flag documents the protocol and guards future partial-entry use).
    pub complete: bool,
}

/// Outcome of a [`MemoTable::publish`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// The answers were stored under a fresh epoch; `evicted` entries
    /// were LRU-dropped from the shard to make room.
    Stored { epoch: u64, evicted: u64 },
    /// An entry for this key already existed (kept; publish is
    /// idempotent — first writer wins, so replayed answers are unique).
    Present { epoch: u64 },
}

struct SlotEnt {
    entry: Arc<MemoEntry>,
    last_used: u64,
    /// Tenant whose run inserted the entry (quota accounting; lookups
    /// stay cross-tenant — a warm answer is shared with everyone).
    tenant: u32,
}

struct Shard {
    entries: HashMap<Vec<u8>, SlotEnt>,
    /// Per-shard LRU clock (bumped on every touch).
    clock: u64,
}

/// Aggregate table-lifetime counters (session-wide, across runs — the
/// per-run engine `Stats` carry their own memo counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCounters {
    pub hits: u64,
    pub misses: u64,
    pub stores: u64,
    pub evictions: u64,
}

/// The concurrent, sharded answer table. Cheaply shareable via `Arc`;
/// engines attach one handle per machine.
pub struct MemoTable {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    tenant_quota: Option<usize>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for MemoTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoTable")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("len", &self.len())
            .field("counters", &self.counters())
            .finish()
    }
}

impl MemoTable {
    pub fn new(cfg: &MemoConfig) -> MemoTable {
        let shards = cfg.shards.max(1);
        MemoTable {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            capacity_per_shard: cfg.capacity_per_shard.max(1),
            tenant_quota: cfg.tenant_quota.map(|q| q.max(1)),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Poison-tolerant shard lock: entries are immutable once inserted
    /// and the LRU metadata is self-healing, so a panic elsewhere never
    /// leaves a shard in a state worth refusing.
    fn shard_for(&self, key: &CanonKey) -> MutexGuard<'_, Shard> {
        let idx = (key.hash as usize) % self.shards.len();
        self.shards[idx]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Look up the complete answer set for `key`, bumping its LRU slot.
    pub fn lookup(&self, key: &CanonKey) -> Option<Arc<MemoEntry>> {
        let mut shard = self.shard_for(key);
        shard.clock += 1;
        let clock = shard.clock;
        match shard.entries.get_mut(&key.bytes) {
            Some(slot) => {
                slot.last_used = clock;
                let entry = slot.entry.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Is the answer set of `key` already complete in the table? (The
    /// or-engine's claim short-circuit: no LRU bump, no counter noise.)
    pub fn is_complete(&self, key: &CanonKey) -> bool {
        let shard = self.shard_for(key);
        shard
            .entries
            .get(&key.bytes)
            .is_some_and(|s| s.entry.complete)
    }

    /// Publish the complete answer set of `key` as tenant 0 (the
    /// single-tenant default). Idempotent: if another worker raced the
    /// store, the existing entry wins and the new answers are dropped
    /// (both sets are complete for the same call, so answers are never
    /// lost or duplicated).
    pub fn publish(&self, key: &CanonKey, answers: Vec<TermArena>) -> PublishOutcome {
        self.publish_as(0, key, answers)
    }

    /// [`MemoTable::publish`] with the insertion charged to `tenant`.
    /// When the table carries a [`MemoConfig::tenant_quota`], a tenant at
    /// its per-shard cap recycles its own LRU entries, and capacity
    /// eviction prefers the inserting tenant's entries — other tenants'
    /// warm entries are untouchable by this tenant's churn.
    pub fn publish_as(
        &self,
        tenant: u32,
        key: &CanonKey,
        answers: Vec<TermArena>,
    ) -> PublishOutcome {
        let mut shard = self.shard_for(key);
        if let Some(slot) = shard.entries.get(&key.bytes) {
            return PublishOutcome::Present {
                epoch: slot.entry.epoch,
            };
        }
        let mut evicted = 0u64;
        // Quota: self-evict down to one-below-cap before inserting.
        if let Some(quota) = self.tenant_quota {
            while shard
                .entries
                .values()
                .filter(|s| s.tenant == tenant)
                .count()
                >= quota
            {
                match evict_lru(&mut shard, Some(tenant)) {
                    true => evicted += 1,
                    false => break,
                }
            }
        }
        // Capacity: the inserting tenant's entries are the preferred
        // victims; only a tenant with nothing left in the shard may
        // displace global LRU.
        while shard.entries.len() >= self.capacity_per_shard {
            if !evict_lru(&mut shard, Some(tenant)) && !evict_lru(&mut shard, None) {
                break;
            }
            evicted += 1;
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        shard.clock += 1;
        let clock = shard.clock;
        shard.entries.insert(
            key.bytes.clone(),
            SlotEnt {
                entry: Arc::new(MemoEntry {
                    epoch,
                    key_hash: key.hash,
                    answers,
                    complete: true,
                }),
                last_used: clock,
                tenant,
            },
        );
        drop(shard);
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        PublishOutcome::Stored { epoch, evicted }
    }

    /// Total entries inserted by `tenant` across all shards.
    pub fn tenant_len(&self, tenant: u32) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .entries
                    .values()
                    .filter(|e| e.tenant == tenant)
                    .count()
            })
            .sum()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of independent shards (lock granularity). Fresh per-run
    /// tables are sized to the fleet by `EngineConfig::resolve_memo_table`,
    /// so big-worker runs can verify their table matches the machine.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Table-lifetime counters (REPL `:memo-stats`, diagnostics).
    pub fn counters(&self) -> MemoCounters {
        MemoCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Remove the least-recently-used entry in `shard`, restricted to
/// `tenant`'s entries when given. Returns whether a victim was found.
fn evict_lru(shard: &mut Shard, tenant: Option<u32>) -> bool {
    let victim = shard
        .entries
        .iter()
        .filter(|(_, s)| tenant.is_none_or(|t| s.tenant == t))
        .min_by_key(|(_, s)| s.last_used)
        .map(|(k, _)| k.clone());
    match victim {
        Some(k) => {
            shard.entries.remove(&k);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_logic::{parse_term, CanonKey, Heap};

    fn key(src: &str) -> (Heap, CanonKey, ace_logic::Cell) {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, src).unwrap();
        let k = CanonKey::of(&h, t);
        (h, k, t)
    }

    fn answers(h: &Heap, roots: &[ace_logic::Cell]) -> Vec<TermArena> {
        roots.iter().map(|&r| TermArena::freeze(h, r)).collect()
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let table = MemoTable::new(&MemoConfig::enabled());
        let (h, k, t) = key("p(1, X)");
        assert!(table.lookup(&k).is_none());
        let out = table.publish(&k, answers(&h, &[t]));
        let PublishOutcome::Stored { epoch, evicted } = out else {
            panic!("first publish must store: {out:?}");
        };
        assert_eq!(epoch, 1);
        assert_eq!(evicted, 0);
        let entry = table.lookup(&k).expect("stored entry must be found");
        assert_eq!(entry.epoch, 1);
        assert_eq!(entry.key_hash, k.hash);
        assert!(entry.complete);
        assert_eq!(entry.answers.len(), 1);
        // variant of the call hits the same entry
        let (_, k2, _) = key("p(1, Y)");
        assert!(table.lookup(&k2).is_some());
        let c = table.counters();
        assert_eq!((c.hits, c.misses, c.stores), (2, 1, 1));
    }

    #[test]
    fn publish_is_idempotent_first_writer_wins() {
        let table = MemoTable::new(&MemoConfig::enabled());
        let (h, k, t) = key("q(a)");
        let PublishOutcome::Stored { epoch, .. } = table.publish(&k, answers(&h, &[t])) else {
            panic!()
        };
        let again = table.publish(&k, answers(&h, &[t, t]));
        assert_eq!(again, PublishOutcome::Present { epoch });
        assert_eq!(table.lookup(&k).unwrap().answers.len(), 1);
        assert_eq!(table.counters().stores, 1);
    }

    #[test]
    fn lru_eviction_at_capacity_prefers_stale_entries() {
        // single shard, capacity 2, so eviction order is fully observable
        let cfg = MemoConfig::enabled()
            .with_shards(1)
            .with_capacity_per_shard(2);
        let table = MemoTable::new(&cfg);
        let (ha, ka, ta) = key("e(a)");
        let (hb, kb, tb) = key("e(b)");
        let (hc, kc, tc) = key("e(c)");
        table.publish(&ka, answers(&ha, &[ta]));
        table.publish(&kb, answers(&hb, &[tb]));
        // touch `a` so `b` becomes the LRU victim
        assert!(table.lookup(&ka).is_some());
        let PublishOutcome::Stored { evicted, .. } = table.publish(&kc, answers(&hc, &[tc])) else {
            panic!()
        };
        assert_eq!(evicted, 1);
        assert_eq!(table.len(), 2);
        assert!(table.lookup(&ka).is_some(), "recently used entry survives");
        assert!(table.lookup(&kb).is_none(), "LRU entry was evicted");
        assert!(table.lookup(&kc).is_some());
        assert_eq!(table.counters().evictions, 1);
    }

    #[test]
    fn epochs_are_globally_monotone_across_shards() {
        let table = MemoTable::new(&MemoConfig::enabled().with_shards(4));
        let mut epochs = Vec::new();
        for i in 0..16 {
            let (h, k, t) = key(&format!("m({i})"));
            let PublishOutcome::Stored { epoch, .. } = table.publish(&k, answers(&h, &[t])) else {
                panic!()
            };
            epochs.push(epoch);
        }
        for w in epochs.windows(2) {
            assert!(
                w[1] > w[0],
                "epochs must be strictly increasing: {epochs:?}"
            );
        }
    }

    #[test]
    fn is_complete_reflects_published_entries_without_counter_noise() {
        let table = MemoTable::new(&MemoConfig::enabled());
        let (h, k, t) = key("c(1)");
        assert!(!table.is_complete(&k));
        table.publish(&k, answers(&h, &[t]));
        assert!(table.is_complete(&k));
        assert_eq!(table.counters().hits + table.counters().misses, 0);
    }

    #[test]
    fn tenant_quota_forces_self_eviction() {
        // single shard, plenty of capacity, quota of 2 entries per tenant
        let cfg = MemoConfig::enabled()
            .with_shards(1)
            .with_capacity_per_shard(64)
            .with_tenant_quota(2);
        let table = MemoTable::new(&cfg);
        for i in 0..5 {
            let (h, k, t) = key(&format!("t1({i})"));
            table.publish_as(1, &k, answers(&h, &[t]));
        }
        // the flooding tenant never holds more than its quota
        assert_eq!(table.tenant_len(1), 2);
        assert_eq!(table.counters().evictions, 3);
        // newest entries survive, oldest were self-evicted
        let (_, k4, _) = key("t1(4)");
        let (_, k0, _) = key("t1(0)");
        assert!(table.lookup(&k4).is_some());
        assert!(table.lookup(&k0).is_none());
    }

    #[test]
    fn tenant_flood_cannot_evict_another_tenants_warm_entries() {
        let cfg = MemoConfig::enabled()
            .with_shards(1)
            .with_capacity_per_shard(4)
            .with_tenant_quota(2);
        let table = MemoTable::new(&cfg);
        // tenant 1 warms two entries first (its full quota)
        let (h_a, k_a, t_a) = key("warm(a)");
        let (h_b, k_b, t_b) = key("warm(b)");
        table.publish_as(1, &k_a, answers(&h_a, &[t_a]));
        table.publish_as(1, &k_b, answers(&h_b, &[t_b]));
        // tenant 2 floods far past the shard capacity
        for i in 0..16 {
            let (h, k, t) = key(&format!("flood({i})"));
            table.publish_as(2, &k, answers(&h, &[t]));
        }
        // tenant 1's warm entries are untouched; tenant 2 churned itself
        assert!(table.lookup(&k_a).is_some(), "warm entry a evicted");
        assert!(table.lookup(&k_b).is_some(), "warm entry b evicted");
        assert_eq!(table.tenant_len(1), 2);
        assert_eq!(table.tenant_len(2), 2);
        // ...and the warm answers are still shared across tenants: a
        // variant lookup (as any tenant) hits tenant 1's entry
        let (_, k_var, _) = key("warm(a)");
        assert!(table.is_complete(&k_var));
    }

    #[test]
    fn capacity_pressure_without_quota_prefers_inserting_tenants_entries() {
        let cfg = MemoConfig::enabled()
            .with_shards(1)
            .with_capacity_per_shard(3);
        let table = MemoTable::new(&cfg);
        let (h_x, k_x, t_x) = key("other(x)");
        table.publish_as(7, &k_x, answers(&h_x, &[t_x]));
        for i in 0..8 {
            let (h, k, t) = key(&format!("own({i})"));
            table.publish_as(8, &k, answers(&h, &[t]));
        }
        // even with no quota set, capacity eviction victimized the
        // churning tenant, not the bystander
        assert!(table.lookup(&k_x).is_some());
        assert_eq!(table.tenant_len(8), 2);
    }

    #[test]
    fn table_survives_a_poisoned_shard_lock() {
        let cfg = MemoConfig::enabled().with_shards(1);
        let table = Arc::new(MemoTable::new(&cfg));
        let (h, k, t) = key("pois(1)");
        table.publish(&k, answers(&h, &[t]));
        // poison the single shard by panicking while holding its lock
        let t2 = table.clone();
        let _ = std::thread::spawn(move || {
            let _guard = t2.shards[0].lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(
            table.lookup(&k).is_some(),
            "poisoned lock must be tolerated"
        );
        let (h2, k2, tt) = key("pois(2)");
        assert!(matches!(
            table.publish(&k2, answers(&h2, &[tt])),
            PublishOutcome::Stored { .. }
        ));
    }

    #[test]
    fn concurrent_racing_publishes_keep_one_entry() {
        let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = table.clone();
            handles.push(std::thread::spawn(move || {
                let (h, k, c) = {
                    let mut h = Heap::new();
                    let (c, _) = parse_term(&mut h, "race(X)").unwrap();
                    let k = CanonKey::of(&h, c);
                    (h, k, c)
                };
                t.publish(&k, vec![TermArena::freeze(&h, c)])
            }));
        }
        let outcomes: Vec<PublishOutcome> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let stored = outcomes
            .iter()
            .filter(|o| matches!(o, PublishOutcome::Stored { .. }))
            .count();
        assert_eq!(stored, 1, "exactly one racer stores: {outcomes:?}");
        assert_eq!(table.len(), 1);
    }
}
