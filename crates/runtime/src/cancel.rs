//! Hierarchical cancellation tokens.
//!
//! When a sibling subgoal of a parallel conjunction fails, the whole
//! parcall fails and every other slot must stop ("inside backtracking",
//! paper §2). Slots may themselves have spawned nested parcalls, so
//! cancellation is hierarchical: cancelling a parent token cancels every
//! descendant. Checks are a single atomic load per level and are performed
//! by machines between quanta, bounding the kill latency.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    parent: Option<Arc<Inner>>,
}

/// A cancellable token; clone to share, `child()` to nest.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh root token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A child token: cancelled when either it or any ancestor is.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// Cancel this token (and thereby all descendants).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Has this token or any ancestor been cancelled?
    pub fn is_cancelled(&self) -> bool {
        let mut cur = Some(&self.inner);
        while let Some(node) = cur {
            if node.flag.load(Ordering::Acquire) {
                return true;
            }
            cur = node.parent.as_ref();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_propagates_to_children() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        root.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
    }

    #[test]
    fn child_cancel_does_not_affect_parent_or_sibling() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!root.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let u = t.child();
        let h = std::thread::spawn(move || {
            while !u.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        t.cancel();
        assert!(h.join().unwrap());
    }
}
