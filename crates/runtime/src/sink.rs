//! Streamed answer delivery.
//!
//! An [`AnswerSink`] is an engine-agnostic callback invoked with each
//! rendered root solution *at the moment it is found*, while the search
//! is still running — the hook the serving layer uses to deliver
//! solution 1 over a channel long before the or-tree is exhausted.
//!
//! The sink's return value is a [`SinkVerdict`]: `Continue` keeps the
//! search going, `Stop` asks the engine to terminate early (the `take(n)`
//! path — the consumer has every answer it wants). Engines honour `Stop`
//! through the same cooperative shutdown used by `max_solutions`, so
//! early termination propagates to every worker at the next cancellation
//! checkpoint.
//!
//! Sinks are called from engine worker contexts: under the simulation
//! driver that is the driving thread, under the threads driver it is an
//! arbitrary worker thread — implementations must be `Send + Sync` and
//! fast (a channel send, a counter bump). A sink that panics is contained
//! by the driver's worker supervision like any other worker panic.
//!
//! No sink, no cost: the config field is an `Option`, and every call
//! site is a single branch when it is `None`.

use std::fmt;
use std::sync::Arc;

/// What the consumer wants the engine to do after one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkVerdict {
    /// Keep searching.
    Continue,
    /// Terminate the run early — the consumer is satisfied (`take(n)`),
    /// cancelled, or gone.
    Stop,
}

impl SinkVerdict {
    pub fn is_stop(self) -> bool {
        matches!(self, SinkVerdict::Stop)
    }
}

/// Shared handle to a streamed-answer callback. Cheap to clone (an `Arc`
/// inside); stored on `EngineConfig`, which stays `Clone + Debug`.
#[derive(Clone)]
pub struct AnswerSink {
    f: Arc<dyn Fn(&str) -> SinkVerdict + Send + Sync>,
}

impl AnswerSink {
    pub fn new(f: impl Fn(&str) -> SinkVerdict + Send + Sync + 'static) -> Self {
        AnswerSink { f: Arc::new(f) }
    }

    /// Deliver one rendered solution; the verdict steers the search.
    pub fn deliver(&self, answer: &str) -> SinkVerdict {
        (self.f)(answer)
    }
}

impl fmt::Debug for AnswerSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnswerSink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sink_delivers_and_steers() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        let sink = AnswerSink::new(move |_| {
            if n2.fetch_add(1, Ordering::Relaxed) < 1 {
                SinkVerdict::Continue
            } else {
                SinkVerdict::Stop
            }
        });
        assert_eq!(sink.deliver("X=1"), SinkVerdict::Continue);
        assert_eq!(sink.deliver("X=2"), SinkVerdict::Stop);
        assert!(sink.deliver("X=3").is_stop());
        assert_eq!(n.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn sink_is_cloneable_and_debuggable() {
        let sink = AnswerSink::new(|_| SinkVerdict::Continue);
        let clone = sink.clone();
        assert_eq!(clone.deliver("ok"), SinkVerdict::Continue);
        assert!(format!("{sink:?}").contains("AnswerSink"));
    }
}
