//! Per-worker execution statistics.
//!
//! Every counter corresponds to an observable the paper's argument rests
//! on: how many heavy structures were allocated vs elided, how much tree
//! traversal backtracking and work-finding performed, and how much was
//! copied. The `tables` harness prints these next to the virtual times so
//! the *mechanism* of each improvement is visible, not just the outcome.
//!
//! The struct, its `AddAssign`, and the field-name list are all generated
//! by one macro invocation so adding a counter cannot silently skip the
//! merge (the historic hand-written `AddAssign` dropped any field it
//! forgot to mention).

use std::ops::AddAssign;

/// Defines the counter sheet once: struct fields, `AddAssign`, the
/// `FIELD_NAMES` list, and uniform accessors all come from the same
/// field list, so they can never drift apart.
macro_rules! stats_sheet {
    (
        $(#[$struct_meta:meta])*
        pub struct $name:ident {
            $(
                $(#[$field_meta:meta])*
                pub $field:ident: u64,
            )+
        }
    ) => {
        $(#[$struct_meta])*
        pub struct $name {
            $(
                $(#[$field_meta])*
                pub $field: u64,
            )+
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, o: $name) {
                $( self.$field += o.$field; )+
            }
        }

        impl $name {
            /// Every counter's name, in declaration order.
            pub const FIELD_NAMES: &'static [&'static str] = &[
                $( stringify!($field), )+
            ];

            /// `(name, value)` snapshot of every counter, in declaration
            /// order — generic render/merge tests go through this instead
            /// of naming fields one by one.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($field), self.$field), )+ ]
            }

            /// Mutable references to every counter, in declaration order.
            pub fn fields_mut(&mut self) -> Vec<(&'static str, &mut u64)> {
                vec![ $( (stringify!($field), &mut self.$field), )+ ]
            }
        }
    };
}

stats_sheet! {
    /// Flat counter sheet. All counts are per-worker and merged with `+=`.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct Stats {
        /// Virtual cost units charged (the worker's busy time).
        pub cost: u64,
        /// Cost units spent idle-probing for work.
        pub idle_cost: u64,

        // resolution
        pub calls: u64,
        pub unify_steps: u64,
        pub heap_cells: u64,
        pub backtracks: u64,
        pub trail_undos: u64,

        // clause indexing & compiled execution
        /// Clauses the switch-on-term chains never visited (raw clause
        /// count minus the call's bucket chain length, summed per call).
        pub clauses_skipped_by_index: u64,
        /// User-predicate calls whose bucket chain held exactly one
        /// clause — determinate at dispatch, no choice point created.
        pub index_determinate_calls: u64,
        /// Clause resolutions executed from the compiled code cache
        /// (head-code runs, successful or failing) instead of the
        /// instantiate-and-unify interpreter.
        pub code_cache_hits: u64,

        // nondeterminism structures
        pub choice_points: u64,
        pub cp_reused_lao: u64,

        // and-parallelism structures
        pub parcall_frames: u64,
        pub parcall_slots: u64,
        pub slots_merged_lpco: u64,
        pub frames_elided_lpco: u64,
        pub markers_allocated: u64,
        pub markers_elided_spo: u64,
        pub pdo_merges: u64,
        pub frame_traversals: u64,
        pub slot_failures: u64,
        pub redo_rounds: u64,

        // or-parallelism
        pub nodes_published: u64,
        pub alternatives_claimed: u64,
        pub tree_visits: u64,
        /// Node handles enqueued into the shared alternative pool.
        pub pool_pushes: u64,
        /// Node handles dequeued from the shared alternative pool (inspected;
        /// a pop that finds the node drained claims nothing).
        pub pool_pops: u64,
        /// Claims served by a reset machine from the recycling pool instead of
        /// a fresh heap allocation.
        pub machines_recycled: u64,

        // scheduling
        pub tasks_stolen: u64,
        pub idle_probes: u64,
        pub cells_copied: u64,
        /// Alternatives claimed from a shard inside the thief's own
        /// topology domain (own shard included).
        pub steals_local_domain: u64,
        /// Alternatives claimed across a domain boundary (including
        /// overflow-tier entries that originated in another domain).
        pub steals_cross_domain: u64,
        /// Cross-domain claims taken while the thief's own domain still
        /// had visible pool entries — the hierarchical victim scan keeps
        /// this at zero; a flat scan crosses eagerly.
        pub steals_cross_eager: u64,
        /// Lock acquisitions the virtual-time contention model observed
        /// as contended (landing inside a prior holder's interval).
        pub lock_contended: u64,
        /// Virtual time lost to contended locks: residual waits behind
        /// prior holders plus the topology's per-event contention cost.
        pub lock_wait_cost: u64,

        // procrastinated closure capture (or-engine publish/claim path)
        /// Cells frozen on the publish side of the or-tree: paid only when
        /// a deferred closure is actually materialized on remote demand.
        pub cells_copied_publish: u64,
        /// Cells thawed into a claimant's heap when installing a shared
        /// alternative (block splice, charged flat — see `closure_thaw`).
        pub cells_copied_claim: u64,
        /// Published nodes whose closure capture was never needed: every
        /// alternative was claimed by the owner's own backtracking.
        pub closures_elided: u64,
        /// Deferred closures actually frozen on first remote demand.
        pub closures_materialized: u64,

        // fault injection & recovery
        /// Injected fault events absorbed by this worker.
        pub faults_injected: u64,
        /// Virtual time lost to injected stalls.
        pub fault_stalls: u64,
        /// Steal attempts that failed transiently and were retried.
        pub steal_retries: u64,
        /// Publications deferred by a transient failure and retried.
        pub publish_retries: u64,

        // memoization
        /// Calls answered from the memo table instead of re-execution.
        pub memo_hits: u64,
        /// Memo consultations that found no complete answer set.
        pub memo_misses: u64,
        /// Complete answer sets published into the memo table.
        pub memo_stores: u64,
        /// Entries LRU-evicted to keep shards within capacity.
        pub memo_evictions: u64,

        // tabling (SLG evaluation of declared tabled predicates)
        /// Tabled calls answered from an already-complete table.
        pub table_hits: u64,
        /// Tabled subgoals this worker evaluated as generator (fresh or
        /// shadow of another machine's in-progress subgoal).
        pub table_subgoals: u64,
        /// Answers inserted into local answer lists (post-dedup).
        pub table_answers: u64,
        /// Derived answers discarded as duplicates of a tabled answer.
        pub table_dups: u64,
        /// Consumers suspended on a dry, incomplete answer list.
        pub table_suspends: u64,
        /// Suspended consumers resumed after new answers landed.
        pub table_resumes: u64,
        /// Subgoals completed (fixpoint reached, table published).
        pub table_completes: u64,

        // serving
        /// Root solutions handed to a streaming `AnswerSink` while the
        /// search was still running.
        pub answers_streamed: u64,
        /// Sink verdicts that requested early termination (`take(n)`).
        pub sink_stops: u64,

        // outcomes
        pub solutions: u64,
    }
}

impl Stats {
    pub fn new() -> Self {
        Stats::default()
    }

    /// Charge `units` of busy virtual time.
    #[inline]
    pub fn charge(&mut self, units: u64) {
        self.cost += units;
    }

    /// Charge `units` of idle (work-hunting) virtual time.
    #[inline]
    pub fn charge_idle(&mut self, units: u64) {
        self.idle_cost += units;
    }

    /// Fraction of pool claims that crossed a topology domain boundary
    /// (0.0 when no claims were classified — single worker, traversal
    /// scheduler, or flat single-domain runs with no overflow traffic).
    pub fn cross_steal_fraction(&self) -> f64 {
        let total = self.steals_local_domain + self.steals_cross_domain;
        if total == 0 {
            0.0
        } else {
            self.steals_cross_domain as f64 / total as f64
        }
    }

    /// Total virtual time (busy + idle).
    #[inline]
    pub fn total_cost(&self) -> u64 {
        self.cost + self.idle_cost
    }

    /// Render a compact human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "cost={} idle={} calls={} cps={} (lao-reused {}) frames={} \
             (lpco-merged {}) markers={} (spo-elided {}) pdo={} stolen={} \
             published={} visits={} copied={} backtracks={} \
             closure={}frozen/{}thawed/{}elided/{}made \
             pool={}push/{}pop recycled={} probes={} \
             domain-steals={}local/{}cross/{}eager contended={}locks/{}units \
             faults={} steal-retries={} publish-retries={} \
             memo={}hit/{}miss/{}store/{}evict \
             table={}hit/{}sub/{}ans/{}dup/{}susp/{}res/{}done streamed={} \
             index={}skipped/{}det code-cache={}",
            self.cost,
            self.idle_cost,
            self.calls,
            self.choice_points,
            self.cp_reused_lao,
            self.parcall_frames,
            self.slots_merged_lpco,
            self.markers_allocated,
            self.markers_elided_spo,
            self.pdo_merges,
            self.tasks_stolen,
            self.nodes_published,
            self.tree_visits,
            self.cells_copied,
            self.backtracks,
            self.cells_copied_publish,
            self.cells_copied_claim,
            self.closures_elided,
            self.closures_materialized,
            self.pool_pushes,
            self.pool_pops,
            self.machines_recycled,
            self.idle_probes,
            self.steals_local_domain,
            self.steals_cross_domain,
            self.steals_cross_eager,
            self.lock_contended,
            self.lock_wait_cost,
            self.faults_injected,
            self.steal_retries,
            self.publish_retries,
            self.memo_hits,
            self.memo_misses,
            self.memo_stores,
            self.memo_evictions,
            self.table_hits,
            self.table_subgoals,
            self.table_answers,
            self.table_dups,
            self.table_suspends,
            self.table_resumes,
            self.table_completes,
            self.answers_streamed,
            self.clauses_skipped_by_index,
            self.index_determinate_calls,
            self.code_cache_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Stats::new();
        a.charge(10);
        a.calls = 3;
        let mut b = Stats::new();
        b.charge(5);
        b.calls = 4;
        b.markers_allocated = 2;
        a += b;
        assert_eq!(a.cost, 15);
        assert_eq!(a.calls, 7);
        assert_eq!(a.markers_allocated, 2);
    }

    /// Merging two all-ones sheets must yield all-twos in *every* field —
    /// the regression the macro exists to make impossible.
    #[test]
    fn merge_covers_every_field() {
        let mut ones = Stats::new();
        for (_, f) in ones.fields_mut() {
            *f = 1;
        }
        let mut merged = ones;
        merged += ones;
        for (name, v) in merged.fields() {
            assert_eq!(v, 2, "field {name} was dropped by AddAssign");
        }
        assert_eq!(merged.fields().len(), Stats::FIELD_NAMES.len());
    }

    #[test]
    fn field_names_match_declaration() {
        let s = Stats::new();
        let names: Vec<&str> = s.fields().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, Stats::FIELD_NAMES);
        assert!(Stats::FIELD_NAMES.contains(&"cost"));
        assert!(Stats::FIELD_NAMES.contains(&"solutions"));
    }

    #[test]
    fn totals() {
        let mut s = Stats::new();
        s.charge(7);
        s.charge_idle(3);
        assert_eq!(s.total_cost(), 10);
    }

    #[test]
    fn cross_steal_fraction_handles_empty_and_mixed() {
        let mut s = Stats::new();
        assert_eq!(s.cross_steal_fraction(), 0.0);
        s.steals_local_domain = 3;
        s.steals_cross_domain = 1;
        assert!((s.cross_steal_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_key_counters() {
        let s = Stats::new();
        let text = s.summary();
        for key in [
            "lao-reused",
            "lpco-merged",
            "spo-elided",
            "pdo=",
            "probes=",
            "faults=",
            "steal-retries=",
            "publish-retries=",
            "memo=",
            "table=",
            "closure=",
            "streamed=",
            "domain-steals=",
            "contended=",
            "index=",
            "code-cache=",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
