//! Execution drivers: deterministic virtual-time simulation and real
//! OS threads.
//!
//! Engines expose their workers as [`Agent`]s: objects that perform one
//! bounded *phase* of work per call and report its virtual cost. Between
//! phases, workers interact only through shared structures (work pools,
//! parcall frames, the or-tree), so a driver that serializes phases in
//! virtual-clock order ([`SimDriver`]) observes the same interleaving
//! semantics a real multiprocessor would, while remaining exactly
//! reproducible on a single host core.
//!
//! [`ThreadsDriver`] runs the identical agents on real threads; engines
//! must therefore be `Send` and use real synchronization internally, which
//! the test suite exercises.
//!
//! Both drivers *supervise* their workers: a panicking agent is contained
//! with `catch_unwind`, reported as a structured [`WorkerExit::Panicked`],
//! and the remaining workers are shut down cooperatively (via the driver's
//! [`CancelToken`] and, under threads, a stop flag checked between phases).
//! The process never aborts because one worker died, and the surviving
//! workers' clocks are still reported.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::fault::{ABORT_ERROR_PREFIX, PANIC_ERROR_PREFIX};
use crate::trace::{EventKind, TraceSink};

/// The result of one agent phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Performed useful work costing this many units.
    Busy(u64),
    /// Probed for work and found none; cost of the probe.
    Idle(u64),
    /// This agent will never run again (global completion observed).
    Done,
}

/// A cooperative engine worker.
pub trait Agent: Send {
    /// Perform one bounded phase of work.
    fn phase(&mut self) -> Phase;
}

/// How one worker left the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerExit {
    /// Reported `Phase::Done` normally.
    Completed,
    /// Panicked mid-phase; the payload message is preserved.
    Panicked(String),
    /// Stopped by the driver before reporting `Done` (another worker
    /// panicked, or the run was aborted).
    Cancelled,
    /// Stopped because the wall-clock deadline expired.
    DeadlineExceeded,
}

impl WorkerExit {
    /// True for any exit other than a normal completion.
    pub fn is_abnormal(&self) -> bool {
        !matches!(self, WorkerExit::Completed)
    }

    /// Short reason string used in trace events.
    fn trace_reason(&self) -> String {
        match self {
            WorkerExit::Completed => "completed".to_owned(),
            WorkerExit::Panicked(msg) => format!("panicked: {msg}"),
            WorkerExit::Cancelled => "cancelled".to_owned(),
            WorkerExit::DeadlineExceeded => "deadline-exceeded".to_owned(),
        }
    }
}

/// Outcome of a driver run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// max over workers of (busy + idle) virtual time — the simulated
    /// execution time reported in all reproduced tables.
    pub virtual_time: u64,
    /// Per-worker final clocks. A panicked worker's clock reflects the
    /// phases it completed before dying.
    pub clocks: Vec<u64>,
    /// Host wall-clock duration of the run.
    pub wall: Duration,
    /// Set when the driver aborted (livelock guard, time limit, wall-clock
    /// deadline, or a worker panic).
    pub aborted: Option<String>,
    /// Per-worker exit status, indexed like `clocks`.
    pub worker_exits: Vec<WorkerExit>,
}

impl RunOutcome {
    /// First panicked worker, if any: `(index, panic message)`.
    pub fn first_panic(&self) -> Option<(usize, &str)> {
        self.worker_exits.iter().enumerate().find_map(|(i, e)| {
            if let WorkerExit::Panicked(msg) = e {
                Some((i, msg.as_str()))
            } else {
                None
            }
        })
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

std::thread_local! {
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `catch_unwind` without the default hook's stderr backtrace: a panic the
/// driver is about to convert into [`WorkerExit::Panicked`] is supervision,
/// not a crash, and its message survives on the outcome. The installed hook
/// delegates to the previous one for every unsupervised thread, so panics
/// outside driver phases still print normally.
pub fn supervised<R>(f: impl FnOnce() -> R) -> std::thread::Result<R> {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|flag| flag.get()) {
                prev(info);
            }
        }));
    });
    SUPPRESS_PANIC_OUTPUT.with(|flag| flag.set(true));
    let r = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|flag| flag.set(false));
    r
}

/// Deterministic virtual-time driver: always advances the worker with the
/// smallest clock.
pub struct SimDriver {
    /// Abort when any clock exceeds this bound (livelock/bug guard).
    pub time_limit: Option<u64>,
    /// Cancelled by the driver when it aborts or contains a panic, so
    /// engine workers observing it can drain cooperatively. Engines pass
    /// their root token here.
    pub cancel: Option<CancelToken>,
    /// Sink for driver-side trace events (worker exits, aborts).
    pub trace: Option<TraceSink>,
}

impl Default for SimDriver {
    fn default() -> Self {
        SimDriver {
            time_limit: Some(200_000_000_000),
            cancel: None,
            trace: None,
        }
    }
}

impl SimDriver {
    pub fn new(time_limit: Option<u64>) -> Self {
        SimDriver {
            time_limit,
            cancel: None,
            trace: None,
        }
    }

    /// Attach the engine's root cancellation token (cancelled on abort or
    /// contained panic so surviving workers shut down instead of idling).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attach a trace sink that receives worker-exit and abort events.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    fn cancel_all(&self) {
        if let Some(c) = &self.cancel {
            c.cancel();
        }
    }

    pub fn run(&self, mut agents: Vec<Box<dyn Agent + '_>>) -> RunOutcome {
        let start = Instant::now();
        let n = agents.len();
        let mut clocks = vec![0u64; n];
        let mut done = vec![false; n];
        let mut exits = vec![WorkerExit::Completed; n];
        let mut live = n;
        let mut aborted: Option<String> = None;
        // Livelock guard: consecutive all-idle rounds with no progress.
        let mut idle_streak = 0u64;
        let idle_limit = 1_000_000u64.max(10_000 * n as u64);

        while live > 0 {
            // Pick the live agent with the smallest clock (ties: lowest id,
            // which keeps the schedule deterministic).
            let mut who = usize::MAX;
            let mut best = u64::MAX;
            for i in 0..n {
                if !done[i] && clocks[i] < best {
                    best = clocks[i];
                    who = i;
                }
            }
            let phase = supervised(|| agents[who].phase());
            match phase {
                Ok(Phase::Busy(c)) => {
                    clocks[who] += c.max(1);
                    idle_streak = 0;
                }
                Ok(Phase::Idle(c)) => {
                    clocks[who] += c.max(1);
                    // Fast-forward past redundant probes: nothing can have
                    // changed before the next other live agent acts.
                    let next_other = (0..n)
                        .filter(|&i| i != who && !done[i])
                        .map(|i| clocks[i])
                        .min();
                    if let Some(t) = next_other {
                        if clocks[who] < t {
                            clocks[who] = t;
                        }
                    }
                    idle_streak += 1;
                    if idle_streak > idle_limit {
                        aborted = Some(format!(
                            "{ABORT_ERROR_PREFIX} livelock: {idle_streak} consecutive idle phases"
                        ));
                        break;
                    }
                }
                Ok(Phase::Done) => {
                    done[who] = true;
                    live -= 1;
                    idle_streak = 0;
                }
                Err(payload) => {
                    // Contain the panic: retire this agent, cancel the rest
                    // so they drain cooperatively, keep the run alive.
                    let msg = panic_message(payload);
                    if aborted.is_none() {
                        aborted =
                            Some(format!("{PANIC_ERROR_PREFIX} worker {who} panicked: {msg}"));
                    }
                    exits[who] = WorkerExit::Panicked(msg);
                    done[who] = true;
                    live -= 1;
                    idle_streak = 0;
                    self.cancel_all();
                }
            }
            if let Some(limit) = self.time_limit {
                if clocks[who] > limit {
                    aborted = Some(format!(
                        "{ABORT_ERROR_PREFIX} virtual time limit exceeded ({} > {limit})",
                        clocks[who]
                    ));
                    break;
                }
            }
        }

        if aborted.is_some() {
            self.cancel_all();
            for i in 0..n {
                if !done[i] {
                    exits[i] = WorkerExit::Cancelled;
                }
            }
        }

        if let Some(sink) = &self.trace {
            for (i, exit) in exits.iter().enumerate() {
                sink.emit(
                    clocks[i],
                    i,
                    EventKind::WorkerExit {
                        reason: exit.trace_reason(),
                    },
                );
            }
            if let Some(reason) = &aborted {
                let t = clocks.iter().copied().max().unwrap_or(0);
                sink.emit(
                    t,
                    0,
                    EventKind::Abort {
                        reason: reason.clone(),
                    },
                );
            }
        }

        RunOutcome {
            virtual_time: clocks.iter().copied().max().unwrap_or(0),
            clocks,
            wall: start.elapsed(),
            aborted,
            worker_exits: exits,
        }
    }
}

/// Real-threads driver: each agent runs on its own OS thread until `Done`.
///
/// Supervision: each worker loop runs under `catch_unwind`; the first panic
/// (or an expired wall-clock deadline) raises a stop flag checked between
/// phases and cancels the attached token, so the remaining workers shut
/// down cooperatively. Phases are quantum-bounded inside the engines, which
/// keeps the stop latency small.
#[derive(Default)]
pub struct ThreadsDriver {
    /// Wall-clock budget for the whole run; `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Cancelled on panic or deadline so engine workers observing it can
    /// drain instead of waiting on shared state forever.
    pub cancel: Option<CancelToken>,
    /// Sink for driver-side trace events (worker exits, aborts).
    pub trace: Option<TraceSink>,
}

impl ThreadsDriver {
    pub fn new(deadline: Option<Duration>, cancel: Option<CancelToken>) -> Self {
        ThreadsDriver {
            deadline,
            cancel,
            trace: None,
        }
    }

    /// Attach a trace sink that receives worker-exit and abort events.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    pub fn run(&self, agents: Vec<Box<dyn Agent + Send + '_>>) -> RunOutcome {
        let start = Instant::now();
        let n = agents.len();
        let clocks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stop = AtomicBool::new(false);
        let deadline_hit = AtomicBool::new(false);
        let remaining = AtomicUsize::new(n);
        let panic_note: parking_lot::Mutex<Option<String>> = parking_lot::Mutex::new(None);

        let exits: Vec<WorkerExit> = std::thread::scope(|scope| {
            let clocks = &clocks;
            let stop = &stop;
            let remaining = &remaining;
            let panic_note = &panic_note;
            let cancel = &self.cancel;
            let handles: Vec<_> = agents
                .into_iter()
                .enumerate()
                .map(|(i, mut agent)| {
                    scope.spawn(move || {
                        let result = supervised(|| loop {
                            if stop.load(Ordering::Acquire) {
                                return WorkerExit::Cancelled;
                            }
                            match agent.phase() {
                                Phase::Busy(c) => {
                                    clocks[i].fetch_add(c, Ordering::Relaxed);
                                }
                                Phase::Idle(c) => {
                                    clocks[i].fetch_add(c, Ordering::Relaxed);
                                    std::thread::yield_now();
                                }
                                Phase::Done => return WorkerExit::Completed,
                            }
                        });
                        remaining.fetch_sub(1, Ordering::AcqRel);
                        match result {
                            Ok(exit) => exit,
                            Err(payload) => {
                                // First panic wins the abort message; either
                                // way stop the siblings and cancel the run.
                                let msg = panic_message(payload);
                                let mut note = panic_note.lock();
                                if note.is_none() {
                                    *note = Some(format!(
                                        "{PANIC_ERROR_PREFIX} worker {i} panicked: {msg}"
                                    ));
                                }
                                drop(note);
                                stop.store(true, Ordering::Release);
                                if let Some(c) = cancel {
                                    c.cancel();
                                }
                                WorkerExit::Panicked(msg)
                            }
                        }
                    })
                })
                .collect();

            // Watchdog: the spawning thread polls for deadline expiry while
            // workers run. A worker stuck *inside* a single phase cannot be
            // interrupted (phases are quantum-bounded by construction), but
            // anything cooperating at phase granularity stops promptly.
            if let Some(limit) = self.deadline {
                while remaining.load(Ordering::Acquire) > 0 {
                    if start.elapsed() >= limit {
                        deadline_hit.store(true, Ordering::Release);
                        stop.store(true, Ordering::Release);
                        if let Some(c) = &self.cancel {
                            c.cancel();
                        }
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }

            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        // Only reachable if the supervision epilogue itself
                        // panicked; still never poison the whole run.
                        WorkerExit::Panicked(panic_message(payload))
                    })
                })
                .collect()
        });

        let deadline_expired = deadline_hit.load(Ordering::Acquire);
        let exits: Vec<WorkerExit> = exits
            .into_iter()
            .map(|e| {
                if deadline_expired && e == WorkerExit::Cancelled {
                    WorkerExit::DeadlineExceeded
                } else {
                    e
                }
            })
            .collect();

        let aborted = if deadline_expired {
            Some(format!(
                "{ABORT_ERROR_PREFIX} wall-clock deadline exceeded ({:?})",
                self.deadline.unwrap_or_default()
            ))
        } else {
            panic_note.lock().take()
        };

        let clocks: Vec<u64> = clocks.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        if let Some(sink) = &self.trace {
            for (i, exit) in exits.iter().enumerate() {
                sink.emit(
                    clocks[i],
                    i,
                    EventKind::WorkerExit {
                        reason: exit.trace_reason(),
                    },
                );
            }
            if let Some(reason) = &aborted {
                let t = clocks.iter().copied().max().unwrap_or(0);
                sink.emit(
                    t,
                    0,
                    EventKind::Abort {
                        reason: reason.clone(),
                    },
                );
            }
        }
        RunOutcome {
            virtual_time: clocks.iter().copied().max().unwrap_or(0),
            clocks,
            wall: start.elapsed(),
            aborted,
            worker_exits: exits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Toy agent: performs `work` phases of cost `each`, then Done.
    struct Toy {
        work: u64,
        each: u64,
        log: Arc<AtomicU64>,
    }

    impl Agent for Toy {
        fn phase(&mut self) -> Phase {
            if self.work == 0 {
                return Phase::Done;
            }
            self.work -= 1;
            self.log.fetch_add(1, Ordering::Relaxed);
            Phase::Busy(self.each)
        }
    }

    #[test]
    fn sim_runs_all_agents_to_completion() {
        let log = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent>> = (0..4)
            .map(|_| {
                Box::new(Toy {
                    work: 10,
                    each: 5,
                    log: log.clone(),
                }) as Box<dyn Agent>
            })
            .collect();
        let out = SimDriver::default().run(agents);
        assert_eq!(log.load(Ordering::Relaxed), 40);
        assert_eq!(out.virtual_time, 50);
        assert!(out.aborted.is_none());
        assert!(out.worker_exits.iter().all(|e| *e == WorkerExit::Completed));
    }

    #[test]
    fn sim_virtual_time_is_max_clock() {
        let log = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent>> = vec![
            Box::new(Toy {
                work: 1,
                each: 100,
                log: log.clone(),
            }),
            Box::new(Toy {
                work: 1,
                each: 10,
                log: log.clone(),
            }),
        ];
        let out = SimDriver::default().run(agents);
        assert_eq!(out.virtual_time, 100);
        assert_eq!(out.clocks, vec![100, 10]);
    }

    /// An agent that idles until a shared counter reaches a threshold
    /// raised by the other agent, then finishes.
    struct Waiter {
        shared: Arc<AtomicU64>,
        need: u64,
    }

    impl Agent for Waiter {
        fn phase(&mut self) -> Phase {
            if self.shared.load(Ordering::Acquire) >= self.need {
                Phase::Done
            } else {
                Phase::Idle(3)
            }
        }
    }

    struct Producer {
        shared: Arc<AtomicU64>,
        left: u64,
    }

    impl Agent for Producer {
        fn phase(&mut self) -> Phase {
            if self.left == 0 {
                return Phase::Done;
            }
            self.left -= 1;
            self.shared.fetch_add(1, Ordering::Release);
            Phase::Busy(20)
        }
    }

    #[test]
    fn sim_idle_agent_waits_for_producer() {
        let shared = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent>> = vec![
            Box::new(Producer {
                shared: shared.clone(),
                left: 5,
            }),
            Box::new(Waiter {
                shared: shared.clone(),
                need: 5,
            }),
        ];
        let out = SimDriver::default().run(agents);
        assert!(out.aborted.is_none());
        // waiter's clock advanced while idling but never past the producer
        // by more than one fast-forward hop
        assert!(out.clocks[1] <= out.clocks[0] + 3);
    }

    #[test]
    fn sim_detects_livelock() {
        struct Forever;
        impl Agent for Forever {
            fn phase(&mut self) -> Phase {
                Phase::Idle(1)
            }
        }
        let out = SimDriver::default().run(vec![Box::new(Forever)]);
        assert!(out.aborted.is_some());
        assert_eq!(out.worker_exits, vec![WorkerExit::Cancelled]);
    }

    #[test]
    fn sim_is_deterministic() {
        let run = || {
            let shared = Arc::new(AtomicU64::new(0));
            let agents: Vec<Box<dyn Agent>> = vec![
                Box::new(Producer {
                    shared: shared.clone(),
                    left: 7,
                }),
                Box::new(Waiter {
                    shared: shared.clone(),
                    need: 7,
                }),
                Box::new(Toy {
                    work: 3,
                    each: 11,
                    log: Arc::new(AtomicU64::new(0)),
                }),
            ];
            SimDriver::default().run(agents).clocks
        };
        assert_eq!(run(), run());
    }

    /// Panics on its `boom`-th phase; completes `boom` busy phases first.
    struct Bomb {
        boom: u64,
        at: u64,
    }

    impl Agent for Bomb {
        fn phase(&mut self) -> Phase {
            if self.at == self.boom {
                panic!("bomb went off at phase {}", self.at);
            }
            self.at += 1;
            Phase::Busy(5)
        }
    }

    /// Finishes when the token is cancelled, like a real engine worker.
    struct Cancellable {
        token: CancelToken,
        each: u64,
    }

    impl Agent for Cancellable {
        fn phase(&mut self) -> Phase {
            if self.token.is_cancelled() {
                Phase::Done
            } else {
                Phase::Busy(self.each)
            }
        }
    }

    #[test]
    fn sim_contains_worker_panic() {
        let token = CancelToken::new();
        let agents: Vec<Box<dyn Agent>> = vec![
            Box::new(Bomb { boom: 3, at: 0 }),
            Box::new(Cancellable {
                token: token.clone(),
                each: 4,
            }),
        ];
        let out = SimDriver::default().with_cancel(token).run(agents);
        let (who, msg) = out.first_panic().expect("panic must be reported");
        assert_eq!(who, 0);
        assert!(msg.contains("bomb went off"));
        assert!(out
            .aborted
            .as_deref()
            .unwrap()
            .starts_with(PANIC_ERROR_PREFIX));
        // the bomb's pre-panic phases are still on its clock
        assert_eq!(out.clocks[0], 15);
        // the survivor drained cooperatively
        assert_eq!(out.worker_exits[1], WorkerExit::Completed);
    }

    #[test]
    fn threads_driver_completes() {
        let log = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent + Send>> = (0..3)
            .map(|_| {
                Box::new(Toy {
                    work: 100,
                    each: 1,
                    log: log.clone(),
                }) as Box<dyn Agent + Send>
            })
            .collect();
        let out = ThreadsDriver::default().run(agents);
        assert_eq!(log.load(Ordering::Relaxed), 300);
        assert_eq!(out.virtual_time, 100);
        assert!(out.aborted.is_none());
        assert!(out.worker_exits.iter().all(|e| *e == WorkerExit::Completed));
    }

    #[test]
    fn threads_driver_survives_worker_panic() {
        // One poisoned agent must not abort the process, and the sibling
        // workers' clocks must still be reported.
        let token = CancelToken::new();
        let log = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent + Send>> = vec![
            Box::new(Bomb { boom: 2, at: 0 }),
            Box::new(Cancellable {
                token: token.clone(),
                each: 1,
            }),
            Box::new(Toy {
                work: 50,
                each: 2,
                log: log.clone(),
            }),
        ];
        let out = ThreadsDriver::new(None, Some(token)).run(agents);
        let (who, msg) = out.first_panic().expect("panic must be reported");
        assert_eq!(who, 0);
        assert!(msg.contains("bomb went off"));
        assert!(out
            .aborted
            .as_deref()
            .unwrap()
            .starts_with(PANIC_ERROR_PREFIX));
        assert_eq!(out.clocks.len(), 3);
        // the bomb completed 2 phases of cost 5 before dying
        assert_eq!(out.clocks[0], 10);
        // the cancellable worker drained (Done) or was stopped by the flag;
        // either way it exited in a structured fashion
        assert!(matches!(
            out.worker_exits[1],
            WorkerExit::Completed | WorkerExit::Cancelled
        ));
    }

    #[test]
    fn threads_driver_enforces_deadline() {
        // A worker that never finishes: without a deadline this would hang.
        struct Spinner;
        impl Agent for Spinner {
            fn phase(&mut self) -> Phase {
                std::thread::sleep(Duration::from_micros(200));
                Phase::Idle(1)
            }
        }
        let out = ThreadsDriver::new(Some(Duration::from_millis(50)), None)
            .run(vec![Box::new(Spinner), Box::new(Spinner)]);
        let reason = out.aborted.expect("deadline must abort the run");
        assert!(reason.contains("deadline"));
        assert!(out
            .worker_exits
            .iter()
            .all(|e| *e == WorkerExit::DeadlineExceeded));
    }
}
