//! Execution drivers: deterministic virtual-time simulation and real
//! OS threads.
//!
//! Engines expose their workers as [`Agent`]s: objects that perform one
//! bounded *phase* of work per call and report its virtual cost. Between
//! phases, workers interact only through shared structures (work pools,
//! parcall frames, the or-tree), so a driver that serializes phases in
//! virtual-clock order ([`SimDriver`]) observes the same interleaving
//! semantics a real multiprocessor would, while remaining exactly
//! reproducible on a single host core.
//!
//! [`ThreadsDriver`] runs the identical agents on real threads; engines
//! must therefore be `Send` and use real synchronization internally, which
//! the test suite exercises.

use std::time::{Duration, Instant};

/// The result of one agent phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Performed useful work costing this many units.
    Busy(u64),
    /// Probed for work and found none; cost of the probe.
    Idle(u64),
    /// This agent will never run again (global completion observed).
    Done,
}

/// A cooperative engine worker.
pub trait Agent: Send {
    /// Perform one bounded phase of work.
    fn phase(&mut self) -> Phase;
}

/// Outcome of a driver run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// max over workers of (busy + idle) virtual time — the simulated
    /// execution time reported in all reproduced tables.
    pub virtual_time: u64,
    /// Per-worker final clocks.
    pub clocks: Vec<u64>,
    /// Host wall-clock duration of the run.
    pub wall: Duration,
    /// Set when the driver aborted (livelock guard or time limit).
    pub aborted: Option<String>,
}

/// Deterministic virtual-time driver: always advances the worker with the
/// smallest clock.
pub struct SimDriver {
    /// Abort when any clock exceeds this bound (livelock/bug guard).
    pub time_limit: Option<u64>,
}

impl Default for SimDriver {
    fn default() -> Self {
        SimDriver {
            time_limit: Some(200_000_000_000),
        }
    }
}

impl SimDriver {
    pub fn new(time_limit: Option<u64>) -> Self {
        SimDriver { time_limit }
    }

    pub fn run(&self, mut agents: Vec<Box<dyn Agent + '_>>) -> RunOutcome {
        let start = Instant::now();
        let n = agents.len();
        let mut clocks = vec![0u64; n];
        let mut done = vec![false; n];
        let mut live = n;
        let mut aborted = None;
        // Livelock guard: consecutive all-idle rounds with no progress.
        let mut idle_streak = 0u64;
        let idle_limit = 1_000_000u64.max(10_000 * n as u64);

        while live > 0 {
            // Pick the live agent with the smallest clock (ties: lowest id,
            // which keeps the schedule deterministic).
            let mut who = usize::MAX;
            let mut best = u64::MAX;
            for i in 0..n {
                if !done[i] && clocks[i] < best {
                    best = clocks[i];
                    who = i;
                }
            }
            match agents[who].phase() {
                Phase::Busy(c) => {
                    clocks[who] += c.max(1);
                    idle_streak = 0;
                }
                Phase::Idle(c) => {
                    clocks[who] += c.max(1);
                    // Fast-forward past redundant probes: nothing can have
                    // changed before the next other live agent acts.
                    let next_other = (0..n)
                        .filter(|&i| i != who && !done[i])
                        .map(|i| clocks[i])
                        .min();
                    if let Some(t) = next_other {
                        if clocks[who] < t {
                            clocks[who] = t;
                        }
                    }
                    idle_streak += 1;
                    if idle_streak > idle_limit {
                        aborted = Some(format!(
                            "livelock: {idle_streak} consecutive idle phases"
                        ));
                        break;
                    }
                }
                Phase::Done => {
                    done[who] = true;
                    live -= 1;
                    idle_streak = 0;
                }
            }
            if let Some(limit) = self.time_limit {
                if clocks[who] > limit {
                    aborted = Some(format!(
                        "virtual time limit exceeded ({} > {limit})",
                        clocks[who]
                    ));
                    break;
                }
            }
        }

        RunOutcome {
            virtual_time: clocks.iter().copied().max().unwrap_or(0),
            clocks,
            wall: start.elapsed(),
            aborted,
        }
    }
}

/// Real-threads driver: each agent runs on its own OS thread until `Done`.
pub struct ThreadsDriver;

impl ThreadsDriver {
    pub fn run(agents: Vec<Box<dyn Agent + Send + '_>>) -> RunOutcome {
        let start = Instant::now();
        let clocks: Vec<u64> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = agents
                .into_iter()
                .map(|mut agent| {
                    scope.spawn(move |_| {
                        let mut clock = 0u64;
                        loop {
                            match agent.phase() {
                                Phase::Busy(c) => clock += c,
                                Phase::Idle(c) => {
                                    clock += c;
                                    std::thread::yield_now();
                                }
                                Phase::Done => break,
                            }
                        }
                        clock
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("worker thread panicked");

        RunOutcome {
            virtual_time: clocks.iter().copied().max().unwrap_or(0),
            clocks,
            wall: start.elapsed(),
            aborted: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Toy agent: performs `work` phases of cost `each`, then Done.
    struct Toy {
        work: u64,
        each: u64,
        log: Arc<AtomicU64>,
    }

    impl Agent for Toy {
        fn phase(&mut self) -> Phase {
            if self.work == 0 {
                return Phase::Done;
            }
            self.work -= 1;
            self.log.fetch_add(1, Ordering::Relaxed);
            Phase::Busy(self.each)
        }
    }

    #[test]
    fn sim_runs_all_agents_to_completion() {
        let log = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent>> = (0..4)
            .map(|_| {
                Box::new(Toy {
                    work: 10,
                    each: 5,
                    log: log.clone(),
                }) as Box<dyn Agent>
            })
            .collect();
        let out = SimDriver::default().run(agents);
        assert_eq!(log.load(Ordering::Relaxed), 40);
        assert_eq!(out.virtual_time, 50);
        assert!(out.aborted.is_none());
    }

    #[test]
    fn sim_virtual_time_is_max_clock() {
        let log = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent>> = vec![
            Box::new(Toy {
                work: 1,
                each: 100,
                log: log.clone(),
            }),
            Box::new(Toy {
                work: 1,
                each: 10,
                log: log.clone(),
            }),
        ];
        let out = SimDriver::default().run(agents);
        assert_eq!(out.virtual_time, 100);
        assert_eq!(out.clocks, vec![100, 10]);
    }

    /// An agent that idles until a shared counter reaches a threshold
    /// raised by the other agent, then finishes.
    struct Waiter {
        shared: Arc<AtomicU64>,
        need: u64,
    }

    impl Agent for Waiter {
        fn phase(&mut self) -> Phase {
            if self.shared.load(Ordering::Acquire) >= self.need {
                Phase::Done
            } else {
                Phase::Idle(3)
            }
        }
    }

    struct Producer {
        shared: Arc<AtomicU64>,
        left: u64,
    }

    impl Agent for Producer {
        fn phase(&mut self) -> Phase {
            if self.left == 0 {
                return Phase::Done;
            }
            self.left -= 1;
            self.shared.fetch_add(1, Ordering::Release);
            Phase::Busy(20)
        }
    }

    #[test]
    fn sim_idle_agent_waits_for_producer() {
        let shared = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent>> = vec![
            Box::new(Producer {
                shared: shared.clone(),
                left: 5,
            }),
            Box::new(Waiter {
                shared: shared.clone(),
                need: 5,
            }),
        ];
        let out = SimDriver::default().run(agents);
        assert!(out.aborted.is_none());
        // waiter's clock advanced while idling but never past the producer
        // by more than one fast-forward hop
        assert!(out.clocks[1] <= out.clocks[0] + 3);
    }

    #[test]
    fn sim_detects_livelock() {
        struct Forever;
        impl Agent for Forever {
            fn phase(&mut self) -> Phase {
                Phase::Idle(1)
            }
        }
        let out = SimDriver::default().run(vec![Box::new(Forever)]);
        assert!(out.aborted.is_some());
    }

    #[test]
    fn sim_is_deterministic() {
        let run = || {
            let shared = Arc::new(AtomicU64::new(0));
            let agents: Vec<Box<dyn Agent>> = vec![
                Box::new(Producer {
                    shared: shared.clone(),
                    left: 7,
                }),
                Box::new(Waiter {
                    shared: shared.clone(),
                    need: 7,
                }),
                Box::new(Toy {
                    work: 3,
                    each: 11,
                    log: Arc::new(AtomicU64::new(0)),
                }),
            ];
            SimDriver::default().run(agents).clocks
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn threads_driver_completes() {
        let log = Arc::new(AtomicU64::new(0));
        let agents: Vec<Box<dyn Agent + Send>> = (0..3)
            .map(|_| {
                Box::new(Toy {
                    work: 100,
                    each: 1,
                    log: log.clone(),
                }) as Box<dyn Agent + Send>
            })
            .collect();
        let out = ThreadsDriver::run(agents);
        assert_eq!(log.load(Ordering::Relaxed), 300);
        assert_eq!(out.virtual_time, 100);
    }
}
