//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is pure data: a seed plus a list of [`FaultEvent`]s, each
//! naming a worker, an operation count at which the event arms, and a
//! [`FaultKind`]. Plans are cheap to clone, hash into configs, and print in
//! failure reports, so a failing fault-matrix case can be replayed exactly.
//!
//! A [`FaultInjector`] is the runtime counterpart: engines build one from the
//! plan at the start of a run and consult it at the same checkpoints where
//! they already poll [`CancelToken`](crate::CancelToken) — once per agent
//! phase ([`FaultInjector::poll`]) and at the scheduler's steal/publish sites
//! ([`FaultInjector::steal_fails`] / [`FaultInjector::publish_fails`]).
//!
//! The fault taxonomy mirrors what a real parallel Prolog system survives:
//!
//! * **Transient** faults (`StealFail`, `PublishFail`) model lost scheduler
//!   interactions. The engine absorbs them with bounded retry — results must
//!   stay bit-identical to a fault-free run.
//! * **`Stall`** models a descheduled/slow worker: the worker burns extra
//!   virtual time but computes the same answers.
//! * **Fatal** faults (`Cancel`, `Die`) kill the run: `Cancel` triggers the
//!   cooperative cancellation path, `Die` panics the worker. Both must
//!   surface as structured errors (never hangs or wrong answers), and the
//!   `ace-core` facade recovers by replaying the query sequentially.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Prefix on every engine error message caused by an injected fault or the
/// cooperative cancellation path. `ace-core` uses it to classify failures as
/// recoverable (fall back to the sequential engine) rather than programmer
/// errors (surface to the caller).
pub const FAULT_ERROR_PREFIX: &str = "fault:";

/// Prefix on engine error messages synthesized from a panicked worker.
pub const PANIC_ERROR_PREFIX: &str = "worker panic:";

/// Prefix on engine error messages synthesized from a driver abort
/// (virtual-time limit, livelock guard, wall-clock deadline).
pub const ABORT_ERROR_PREFIX: &str = "driver aborted:";

/// Panic message used by workers executing an injected `Die` fault.
pub const INJECTED_DEATH: &str = "fault: injected worker death";

/// What kind of failure an event injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker loses `cost` units of virtual time doing nothing
    /// (a clock jump: models preemption or a slow processor).
    Stall {
        /// Virtual-time units charged to the stalled worker.
        cost: u64,
    },
    /// The worker's next attempt to take work from the shared pool fails;
    /// the task stays queued and the worker retries after backoff.
    StealFail,
    /// The worker's next attempt to publish work (or-engine demand-driven
    /// publication) fails; publication is retried on a later phase.
    PublishFail,
    /// The run is cancelled through the engine's cooperative cancellation
    /// path, as if an external supervisor killed it.
    Cancel,
    /// The worker thread panics mid-phase. The driver must contain the
    /// panic, report it as a structured [`WorkerExit`](crate::WorkerExit),
    /// and shut the remaining workers down.
    Die,
    /// The serving layer's admission controller spuriously rejects the
    /// next submission routed through `worker` (models a control-plane
    /// brown-out: the query is bounced as overloaded even though capacity
    /// exists). Engines never consume this kind — it fires only at the
    /// server's admission checkpoint ([`FaultInjector::admit_rejects`]).
    AdmitReject,
}

/// One scheduled fault: `kind` arms on `worker` once that worker has
/// performed `at_op` phase checkpoints, and fires exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Index of the targeted worker (agent index in the driver).
    pub worker: usize,
    /// Phase-checkpoint count at which the event arms. `0` arms immediately.
    pub at_op: u64,
    /// The failure to inject.
    pub kind: FaultKind,
}

/// A seeded, deterministic schedule of faults. Pure data — store it in
/// `EngineConfig`, print it, clone it, replay it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed this plan was derived from (recorded for replay/reporting;
    /// hand-built plans may leave it 0).
    pub seed: u64,
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
}

/// splitmix64: small, fast, deterministic. Good enough for fault schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan carrying `seed` (add events with [`FaultPlan::with`]).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder: append one event.
    pub fn with(mut self, worker: usize, at_op: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            worker,
            at_op,
            kind,
        });
        self
    }

    /// A deterministic pseudo-random plan of `n` events over `workers`
    /// workers, drawn from the full fault taxonomy (weighted toward
    /// transient faults; at most one fatal event so runs stay analyzable).
    pub fn random(seed: u64, workers: usize, n: usize) -> Self {
        let mut st = seed ^ 0xa5a5_5a5a_0f0f_f0f0;
        let mut plan = FaultPlan::new(seed);
        let mut fatal_used = false;
        for _ in 0..n {
            let worker = (splitmix64(&mut st) % workers.max(1) as u64) as usize;
            let at_op = splitmix64(&mut st) % 64;
            let roll = splitmix64(&mut st) % 100;
            let kind = match roll {
                0..=29 => FaultKind::StealFail,
                30..=54 => FaultKind::PublishFail,
                55..=79 => FaultKind::Stall {
                    cost: 50 + splitmix64(&mut st) % 5000,
                },
                80..=89 if !fatal_used => {
                    fatal_used = true;
                    FaultKind::Cancel
                }
                90..=99 if !fatal_used => {
                    fatal_used = true;
                    FaultKind::Die
                }
                _ => FaultKind::StealFail,
            };
            plan = plan.with(worker, at_op, kind);
        }
        plan
    }

    /// Like [`FaultPlan::random`] but transient-only (`StealFail`,
    /// `PublishFail`, `Stall`): the run must still produce exactly the
    /// fault-free answers.
    pub fn random_transient(seed: u64, workers: usize, n: usize) -> Self {
        let mut st = seed ^ 0x0ddc_0ffe_e0dd_f00d;
        let mut plan = FaultPlan::new(seed);
        for _ in 0..n {
            let worker = (splitmix64(&mut st) % workers.max(1) as u64) as usize;
            let at_op = splitmix64(&mut st) % 64;
            let kind = match splitmix64(&mut st) % 3 {
                0 => FaultKind::StealFail,
                1 => FaultKind::PublishFail,
                _ => FaultKind::Stall {
                    cost: 50 + splitmix64(&mut st) % 5000,
                },
            };
            plan = plan.with(worker, at_op, kind);
        }
        plan
    }

    /// True if the plan contains a `Cancel` or `Die` event (the run is
    /// expected to be killed rather than to complete).
    pub fn has_fatal(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Cancel | FaultKind::Die))
    }
}

/// Action an engine must take after [`FaultInjector::poll`] fires an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Charge this many virtual-time units and continue.
    Stall(u64),
    /// Cancel the run through the engine's cooperative cancellation path.
    Cancel,
    /// Panic (with [`INJECTED_DEATH`]) so the driver's supervision catches a
    /// real dead worker.
    Die,
}

struct EventSlot {
    worker: usize,
    at_op: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

struct InjectorInner {
    /// Per-worker phase-checkpoint counters.
    ops: Vec<AtomicU64>,
    events: Vec<EventSlot>,
    injected: AtomicU64,
}

/// Runtime handle over a [`FaultPlan`]: thread-safe, cheap to clone
/// (`Arc` inside), consumed-once event semantics.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("events", &self.inner.events.len())
            .field("injected", &self.injected())
            .finish()
    }
}

impl FaultInjector {
    /// Build an injector for a run with `workers` workers. Events targeting
    /// workers `>= workers` never fire (a plan may be reused across
    /// configurations with fewer workers).
    pub fn new(plan: &FaultPlan, workers: usize) -> Self {
        FaultInjector {
            inner: Arc::new(InjectorInner {
                ops: (0..workers).map(|_| AtomicU64::new(0)).collect(),
                events: plan
                    .events
                    .iter()
                    .map(|e| EventSlot {
                        worker: e.worker,
                        at_op: e.at_op,
                        kind: e.kind,
                        fired: AtomicBool::new(false),
                    })
                    .collect(),
                injected: AtomicU64::new(0),
            }),
        }
    }

    fn take(&self, worker: usize, want_scheduler: bool) -> Option<FaultKind> {
        let ops = self.inner.ops.get(worker)?.load(Ordering::Relaxed);
        for ev in &self.inner.events {
            if ev.worker != worker || ev.at_op > ops {
                continue;
            }
            let scheduler_kind = matches!(
                ev.kind,
                FaultKind::StealFail | FaultKind::PublishFail | FaultKind::AdmitReject
            );
            if scheduler_kind != want_scheduler {
                continue;
            }
            if ev
                .fired
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.inner.injected.fetch_add(1, Ordering::Relaxed);
                return Some(ev.kind);
            }
        }
        None
    }

    /// Phase checkpoint: advance `worker`'s operation counter and fire the
    /// first armed non-scheduler event targeting it, if any.
    pub fn poll(&self, worker: usize) -> Option<FaultAction> {
        if let Some(ctr) = self.inner.ops.get(worker) {
            ctr.fetch_add(1, Ordering::Relaxed);
        }
        match self.take(worker, false)? {
            FaultKind::Stall { cost } => Some(FaultAction::Stall(cost)),
            FaultKind::Cancel => Some(FaultAction::Cancel),
            FaultKind::Die => Some(FaultAction::Die),
            // scheduler/admission kinds are filtered out by `take`
            FaultKind::StealFail | FaultKind::PublishFail | FaultKind::AdmitReject => None,
        }
    }

    /// Scheduler checkpoint: should `worker`'s next steal attempt fail?
    /// Fires an armed `StealFail` event (once). Does not advance the
    /// operation counter.
    pub fn steal_fails(&self, worker: usize) -> bool {
        self.fire_scheduler(worker, FaultKind::StealFail)
    }

    /// Scheduler checkpoint: should `worker`'s next publication fail?
    pub fn publish_fails(&self, worker: usize) -> bool {
        self.fire_scheduler(worker, FaultKind::PublishFail)
    }

    /// Admission checkpoint (serving layer): should the next submission
    /// routed through `worker` be spuriously rejected? Fires an armed
    /// [`FaultKind::AdmitReject`] event (once). Does not advance the
    /// operation counter.
    pub fn admit_rejects(&self, worker: usize) -> bool {
        self.fire_scheduler(worker, FaultKind::AdmitReject)
    }

    fn fire_scheduler(&self, worker: usize, kind: FaultKind) -> bool {
        let ops = match self.inner.ops.get(worker) {
            Some(c) => c.load(Ordering::Relaxed),
            None => return false,
        };
        for ev in &self.inner.events {
            if ev.worker == worker
                && ev.kind == kind
                && ev.at_op <= ops
                && ev
                    .fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                self.inner.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Total events fired so far.
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_once_at_their_op() {
        let plan = FaultPlan::new(1)
            .with(0, 2, FaultKind::Stall { cost: 99 })
            .with(1, 0, FaultKind::Cancel);
        let inj = FaultInjector::new(&plan, 2);

        // worker 0: arms once its checkpoint counter reaches 2
        assert_eq!(inj.poll(0), None); // ops -> 1
        assert_eq!(inj.poll(0), Some(FaultAction::Stall(99))); // ops -> 2
        assert_eq!(inj.poll(0), None); // consumed

        // worker 1: immediate
        assert_eq!(inj.poll(1), Some(FaultAction::Cancel));
        assert_eq!(inj.poll(1), None);
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn scheduler_faults_are_separate_from_poll() {
        let plan =
            FaultPlan::new(2)
                .with(0, 0, FaultKind::StealFail)
                .with(0, 0, FaultKind::PublishFail);
        let inj = FaultInjector::new(&plan, 1);
        // poll never consumes scheduler kinds
        assert_eq!(inj.poll(0), None);
        assert!(inj.steal_fails(0));
        assert!(!inj.steal_fails(0)); // fired once
        assert!(inj.publish_fails(0));
        assert!(!inj.publish_fails(0));
    }

    #[test]
    fn admit_rejects_fire_only_at_the_admission_checkpoint() {
        let plan = FaultPlan::new(5).with(0, 0, FaultKind::AdmitReject);
        let inj = FaultInjector::new(&plan, 1);
        // engines never consume admission faults at phase or scheduler
        // checkpoints
        assert_eq!(inj.poll(0), None);
        assert!(!inj.steal_fails(0));
        assert!(!inj.publish_fails(0));
        // the admission checkpoint consumes it exactly once
        assert!(inj.admit_rejects(0));
        assert!(!inj.admit_rejects(0));
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn out_of_range_worker_never_fires() {
        let plan = FaultPlan::new(3).with(7, 0, FaultKind::Die);
        let inj = FaultInjector::new(&plan, 2);
        for w in 0..2 {
            for _ in 0..10 {
                assert_eq!(inj.poll(w), None);
            }
        }
        assert!(!inj.steal_fails(7));
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(42, 4, 8);
        let b = FaultPlan::random(42, 4, 8);
        let c = FaultPlan::random(43, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events.len(), 8);
        // at most one fatal event per random plan
        let fatal = a
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Cancel | FaultKind::Die))
            .count();
        assert!(fatal <= 1);
    }

    #[test]
    fn transient_plans_contain_no_fatal_events() {
        for seed in 0..32 {
            let p = FaultPlan::random_transient(seed, 8, 16);
            assert!(!p.has_fatal(), "seed {seed} produced a fatal event");
        }
    }

    #[test]
    fn injector_is_shareable_across_threads() {
        let plan = FaultPlan::new(9).with(0, 0, FaultKind::StealFail);
        let inj = FaultInjector::new(&plan, 4);
        let hits: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let inj = inj.clone();
                    s.spawn(move || usize::from(inj.steal_fails(0)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(hits, 1, "exactly one thread may consume the event");
    }
}
