//! Virtual-time event tracing.
//!
//! Always compiled, off by default: when [`TraceConfig::enabled`] is
//! false a [`Tracer`] is a `None` — every emission point costs exactly
//! one branch and the event payload closure is never evaluated. When
//! enabled, each worker records typed [`TraceEvent`]s into a private
//! fixed-capacity ring buffer ([`TraceBuf`]) — no locks on the hot path,
//! drop-oldest on overflow with a `dropped` counter so truncation is
//! never silent. At the end of a run the engine merges the per-worker
//! buffers (plus driver-side events from a shared [`TraceSink`]) into a
//! single [`Trace`] ordered by virtual time, surfaced on the run report.
//!
//! Tracing charges **no** virtual cost: a traced run and an untraced run
//! of the same program report identical `virtual_time`.
//!
//! Consumers:
//! * [`Trace::to_chrome_json`] — Chrome `trace_event` JSON loadable in
//!   Perfetto / `chrome://tracing`, with virtual cost units as
//!   microseconds;
//! * [`Trace::timeline`] — a compact text timeline;
//! * [`TraceChecker`] — replays a finished trace and asserts scheduler
//!   invariants (claims follow publications, no alternative issued
//!   twice, pool pops bounded by pushes, fault injections matched by
//!   recovery records).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Tracing knobs, threaded through `EngineConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off by default; when off no ring buffers are
    /// allocated and every emission point is a single branch.
    pub enabled: bool,
    /// Per-worker ring-buffer capacity in events (drop-oldest beyond).
    pub capacity: usize,
    /// Also record high-volume lifecycle events (phase transitions,
    /// quantum start/end). Off by default so invariant-relevant events
    /// are not evicted by lifecycle noise on long runs.
    pub lifecycle: bool,
    /// Also record per-call clause dispatch events (`ClauseDispatch` /
    /// `ClauseRetry`). Off by default for the same eviction reason —
    /// every user call emits one.
    pub dispatch: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 1 << 16,
            lifecycle: false,
            dispatch: false,
        }
    }
}

impl TraceConfig {
    /// A config with tracing switched on (default capacity, no lifecycle).
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    pub fn with_lifecycle(mut self) -> Self {
        self.lifecycle = true;
        self
    }

    pub fn with_dispatch(mut self) -> Self {
        self.dispatch = true;
        self
    }
}

/// What happened. Every variant corresponds to a mechanism the paper's
/// argument (or our fault model) rests on; aggregate counts of most of
/// these already exist on `Stats` — the trace adds *when*, *where* and
/// *interleaved with what*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    // -- engine lifecycle (recorded only with `TraceConfig::lifecycle`) --
    /// A worker entered the named driver phase (`busy`/`idle`).
    PhaseStart { phase: &'static str },
    /// A worker left the named driver phase.
    PhaseEnd { phase: &'static str },
    /// An engine began one execution quantum on its current machine.
    QuantumStart,
    /// The quantum ended, having charged `cost` units.
    QuantumEnd { cost: u64 },

    // -- or-engine --
    /// A private choice point became public under `node` (epoch 0).
    /// `pred` labels the predicate whose clauses the node's alternatives
    /// come from (`name/arity`) — the cost profiler's frame anchor.
    Publish {
        node: u64,
        epoch: u64,
        alts: usize,
        pred: String,
    },
    /// LAO: a drained node was reloaded in place at a bumped epoch.
    LaoReuse {
        node: u64,
        epoch: u64,
        alts: usize,
        pred: String,
    },
    /// A node handle was enqueued into the shared alternative pool.
    PoolPush { node: u64 },
    /// A node handle was dequeued from the pool (inspection, not claim).
    PoolPop { node: u64 },
    /// One alternative of `node` (at `epoch`) was claimed remotely.
    Claim { node: u64, epoch: u64, alt: usize },
    /// A claimed alternative's branch was dead on install; aborted.
    InstallAbort { node: u64 },
    /// A claim was served by a recycled machine, not a fresh allocation.
    MachineRecycle,
    /// Publication stored only choice-point metadata; the expensive
    /// closure capture was procrastinated (paper schema 2).
    ClosureDefer { node: u64, epoch: u64 },
    /// First remote demand arrived: the owner froze the deferred closure
    /// into an immutable arena of `cells` cells.
    ClosureMaterialize { node: u64, epoch: u64, cells: u64 },
    /// A claimant thawed `cells` cells of a frozen closure into its heap.
    ClosureThaw { node: u64, epoch: u64, cells: u64 },

    // -- and-engine --
    /// A parcall frame was allocated with `slots` subgoal slots.
    FrameAlloc { slots: usize },
    /// LPCO: a nested frame was elided, its slots merged into the parent.
    FrameElide { merged_slots: usize },
    /// A parallel subgoal slot failed (triggers outside backtracking).
    SlotFail,
    /// SPO: markers for a deterministic subgoal were never allocated.
    MarkerElide,
    /// PDO: adjacent same-worker slots merged into one computation.
    PdoMerge,
    /// A redo round re-ran slots during cross-product enumeration.
    RedoRound,

    // -- scheduler --
    /// A claim was served by a shard outside the thief's own (emitted by
    /// the hierarchical pool only). `scope` is `"domain"` for a
    /// same-domain victim, `"cross"` for a claim that crossed a topology
    /// domain boundary; `local_work` is the thief's own-domain pool
    /// occupancy observed when the entry was taken. The `TraceChecker`
    /// asserts `scope == "cross"` implies `local_work == 0` — a thief
    /// never crosses domains while local work is visible.
    DomainSteal {
        node: u64,
        scope: &'static str,
        local_work: u64,
    },
    /// A worker started hunting for work.
    StealAttempt,
    /// The hunt yielded a task/alternative from another worker.
    StealSuccess,
    /// The hunt came up empty.
    StealFail,
    /// An idle probe charged `cost` units of idle time.
    IdleProbe { cost: u64 },
    /// A contended lock acquisition charged `cost` units (residual wait
    /// behind the previous holder plus the topology's `contended_lock`
    /// premium). `what` names the lock ("pool", "answer"). Emitted only
    /// under a topology that prices contention — the profiler's handle
    /// on serialization walls.
    LockWait { what: &'static str, cost: u64 },

    // -- faults & recovery --
    /// The injector fired a fault of the named kind on this worker.
    FaultInjected { kind: &'static str },
    /// An injected stall charged `cost` units.
    FaultStall { cost: u64 },
    /// A transiently failed operation (`steal`/`publish`) was retried.
    FaultRetry { what: &'static str },
    /// The run degraded to the sequential engine.
    Degraded { reason: String },

    // -- memoization --
    /// A call was answered from the memo table. `key` is the canonical
    /// key hash, `epoch` the table epoch of the entry replayed.
    MemoHit { key: u64, epoch: u64 },
    /// A complete answer set was published into the memo table.
    MemoStore { key: u64, epoch: u64 },
    /// The answer set under `key` was marked complete with `answers`
    /// stored answers (emitted alongside the store that completed it).
    MemoComplete {
        key: u64,
        epoch: u64,
        answers: usize,
    },

    // -- tabling (SLG evaluation; `key` is the canonical key hash and
    //    `subgoal` the table space's globally monotone subgoal id) --
    /// A machine became the generator for a tabled subgoal new to the
    /// shared table space.
    TableNew { key: u64, subgoal: u64 },
    /// A new (non-duplicate) answer was inserted into the subgoal's
    /// answer list; `answers` is the list length after insertion.
    TableAnswer {
        key: u64,
        subgoal: u64,
        answers: usize,
    },
    /// A consumer drained the subgoal's answer list dry while it was
    /// still incomplete and suspended; `seen` is how many answers it
    /// had consumed.
    TableSuspend { key: u64, subgoal: u64, seen: usize },
    /// A suspended consumer was resumed to consume answers past `seen`.
    TableResume { key: u64, subgoal: u64, seen: usize },
    /// The subgoal's SCC reached its fixpoint; the table was marked
    /// complete with `answers` answers.
    TableComplete {
        key: u64,
        subgoal: u64,
        answers: usize,
    },

    // -- driver --
    /// A worker exited (reason: completed/panicked/cancelled/deadline).
    WorkerExit { reason: String },
    /// The driver aborted the run.
    Abort { reason: String },

    // -- serving (session lifecycle; emitted by the query server's sink,
    //    with `t` a server-global sequence number so cross-session order
    //    is causal, and `worker` the fleet lane that ran the session) --
    /// The admission controller accepted a session into the queue.
    SessionAdmit { session: u64 },
    /// The admission controller rejected a session (overloaded).
    SessionReject { session: u64 },
    /// A session was cancelled by its client.
    SessionCancel { session: u64 },
    /// A session's deadline expired; the watchdog cancelled it.
    SessionDeadlineCancel { session: u64 },
    /// The session's first answer left the server (time-to-first-answer).
    SessionFirstAnswer { session: u64 },
    /// One answer was streamed to the session's consumer.
    AnswerStreamed { session: u64 },
    /// The session finished and its resources were reclaimed; `outcome`
    /// is the terminal state label, `answers` the total streamed.
    SessionDrain {
        session: u64,
        outcome: &'static str,
        answers: u64,
    },

    // -- clause dispatch (recorded only with `TraceConfig::dispatch`) --
    /// A user-predicate call was dispatched through the switch-on-term
    /// index: `candidates` is the bucket chain length; `determinate`
    /// claims exactly one clause can match, so no choice point was made.
    ClauseDispatch {
        pred: String,
        candidates: usize,
        determinate: bool,
    },
    /// Backtracking re-entered a later clause of `pred` (second or
    /// subsequent clause of one call's chain).
    ClauseRetry { pred: String },

    // -- outcomes --
    /// A solution was recorded.
    Solution,
}

/// Argument value of one event payload field.
enum Arg<'a> {
    U(u64),
    S(&'a str),
}

impl EventKind {
    /// Stable kebab-case event name (Chrome-trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PhaseStart { .. } => "phase-start",
            EventKind::PhaseEnd { .. } => "phase-end",
            EventKind::QuantumStart => "quantum-start",
            EventKind::QuantumEnd { .. } => "quantum-end",
            EventKind::Publish { .. } => "publish",
            EventKind::LaoReuse { .. } => "lao-reuse",
            EventKind::PoolPush { .. } => "pool-push",
            EventKind::PoolPop { .. } => "pool-pop",
            EventKind::Claim { .. } => "claim",
            EventKind::InstallAbort { .. } => "install-abort",
            EventKind::MachineRecycle => "machine-recycle",
            EventKind::ClosureDefer { .. } => "closure-defer",
            EventKind::ClosureMaterialize { .. } => "closure-materialize",
            EventKind::ClosureThaw { .. } => "closure-thaw",
            EventKind::FrameAlloc { .. } => "frame-alloc",
            EventKind::FrameElide { .. } => "frame-elide",
            EventKind::SlotFail => "slot-fail",
            EventKind::MarkerElide => "marker-elide",
            EventKind::PdoMerge => "pdo-merge",
            EventKind::RedoRound => "redo-round",
            EventKind::DomainSteal { .. } => "domain-steal",
            EventKind::StealAttempt => "steal-attempt",
            EventKind::StealSuccess => "steal-success",
            EventKind::StealFail => "steal-fail",
            EventKind::IdleProbe { .. } => "idle-probe",
            EventKind::LockWait { .. } => "lock-wait",
            EventKind::FaultInjected { .. } => "fault-injected",
            EventKind::FaultStall { .. } => "fault-stall",
            EventKind::FaultRetry { .. } => "fault-retry",
            EventKind::Degraded { .. } => "degraded",
            EventKind::MemoHit { .. } => "memo-hit",
            EventKind::MemoStore { .. } => "memo-store",
            EventKind::MemoComplete { .. } => "memo-complete",
            EventKind::TableNew { .. } => "table-new",
            EventKind::TableAnswer { .. } => "table-answer",
            EventKind::TableSuspend { .. } => "table-suspend",
            EventKind::TableResume { .. } => "table-resume",
            EventKind::TableComplete { .. } => "table-complete",
            EventKind::WorkerExit { .. } => "worker-exit",
            EventKind::Abort { .. } => "abort",
            EventKind::SessionAdmit { .. } => "session-admit",
            EventKind::SessionReject { .. } => "session-reject",
            EventKind::SessionCancel { .. } => "session-cancel",
            EventKind::SessionDeadlineCancel { .. } => "session-deadline-cancel",
            EventKind::SessionFirstAnswer { .. } => "session-first-answer",
            EventKind::AnswerStreamed { .. } => "answer-streamed",
            EventKind::SessionDrain { .. } => "session-drain",
            EventKind::ClauseDispatch { .. } => "clause-dispatch",
            EventKind::ClauseRetry { .. } => "clause-retry",
            EventKind::Solution => "solution",
        }
    }

    /// Payload fields, in a render-agnostic form.
    fn args(&self) -> Vec<(&'static str, Arg<'_>)> {
        use Arg::{S, U};
        match self {
            EventKind::PhaseStart { phase } | EventKind::PhaseEnd { phase } => {
                vec![("phase", S(phase))]
            }
            EventKind::QuantumEnd { cost }
            | EventKind::IdleProbe { cost }
            | EventKind::FaultStall { cost } => vec![("cost", U(*cost))],
            EventKind::Publish {
                node,
                epoch,
                alts,
                pred,
            }
            | EventKind::LaoReuse {
                node,
                epoch,
                alts,
                pred,
            } => {
                vec![
                    ("node", U(*node)),
                    ("epoch", U(*epoch)),
                    ("alts", U(*alts as u64)),
                    ("pred", S(pred.as_str())),
                ]
            }
            EventKind::PoolPush { node }
            | EventKind::PoolPop { node }
            | EventKind::InstallAbort { node } => vec![("node", U(*node))],
            EventKind::Claim { node, epoch, alt } => {
                vec![
                    ("node", U(*node)),
                    ("epoch", U(*epoch)),
                    ("alt", U(*alt as u64)),
                ]
            }
            EventKind::ClosureDefer { node, epoch } => {
                vec![("node", U(*node)), ("epoch", U(*epoch))]
            }
            EventKind::ClosureMaterialize { node, epoch, cells }
            | EventKind::ClosureThaw { node, epoch, cells } => {
                vec![
                    ("node", U(*node)),
                    ("epoch", U(*epoch)),
                    ("cells", U(*cells)),
                ]
            }
            EventKind::FrameAlloc { slots } => vec![("slots", U(*slots as u64))],
            EventKind::FrameElide { merged_slots } => {
                vec![("merged_slots", U(*merged_slots as u64))]
            }
            EventKind::MemoHit { key, epoch } | EventKind::MemoStore { key, epoch } => {
                vec![("key", U(*key)), ("epoch", U(*epoch))]
            }
            EventKind::MemoComplete {
                key,
                epoch,
                answers,
            } => vec![
                ("key", U(*key)),
                ("epoch", U(*epoch)),
                ("answers", U(*answers as u64)),
            ],
            EventKind::TableNew { key, subgoal } => {
                vec![("key", U(*key)), ("subgoal", U(*subgoal))]
            }
            EventKind::TableAnswer {
                key,
                subgoal,
                answers,
            }
            | EventKind::TableComplete {
                key,
                subgoal,
                answers,
            } => vec![
                ("key", U(*key)),
                ("subgoal", U(*subgoal)),
                ("answers", U(*answers as u64)),
            ],
            EventKind::TableSuspend { key, subgoal, seen }
            | EventKind::TableResume { key, subgoal, seen } => vec![
                ("key", U(*key)),
                ("subgoal", U(*subgoal)),
                ("seen", U(*seen as u64)),
            ],
            EventKind::DomainSteal {
                node,
                scope,
                local_work,
            } => vec![
                ("node", U(*node)),
                ("scope", S(scope)),
                ("local_work", U(*local_work)),
            ],
            EventKind::LockWait { what, cost } => vec![("what", S(what)), ("cost", U(*cost))],
            EventKind::FaultInjected { kind } => vec![("kind", S(kind))],
            EventKind::FaultRetry { what } => vec![("what", S(what))],
            EventKind::Degraded { reason } | EventKind::Abort { reason } => {
                vec![("reason", S(reason))]
            }
            EventKind::WorkerExit { reason } => vec![("reason", S(reason))],
            EventKind::SessionAdmit { session }
            | EventKind::SessionReject { session }
            | EventKind::SessionCancel { session }
            | EventKind::SessionDeadlineCancel { session }
            | EventKind::SessionFirstAnswer { session }
            | EventKind::AnswerStreamed { session } => vec![("session", U(*session))],
            EventKind::SessionDrain {
                session,
                outcome,
                answers,
            } => vec![
                ("session", U(*session)),
                ("outcome", S(outcome)),
                ("answers", U(*answers)),
            ],
            EventKind::ClauseDispatch {
                pred,
                candidates,
                determinate,
            } => vec![
                ("pred", S(pred.as_str())),
                ("candidates", U(*candidates as u64)),
                ("determinate", U(*determinate as u64)),
            ],
            EventKind::ClauseRetry { pred } => vec![("pred", S(pred.as_str()))],
            EventKind::QuantumStart
            | EventKind::MachineRecycle
            | EventKind::SlotFail
            | EventKind::MarkerElide
            | EventKind::PdoMerge
            | EventKind::RedoRound
            | EventKind::StealAttempt
            | EventKind::StealSuccess
            | EventKind::StealFail
            | EventKind::Solution => vec![],
        }
    }
}

/// One recorded event: what happened, on which worker, at which point of
/// that worker's virtual clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Worker-local virtual time (busy + idle cost units charged so far).
    pub t: u64,
    pub worker: usize,
    pub kind: EventKind,
}

/// A per-worker fixed-capacity ring buffer of events. Drop-oldest on
/// overflow; `dropped` counts evictions so truncation is visible.
#[derive(Debug)]
pub struct TraceBuf {
    pub worker: usize,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    pub dropped: u64,
}

impl TraceBuf {
    pub fn new(worker: usize, capacity: usize) -> Self {
        TraceBuf {
            worker,
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.clamp(1, 1024)),
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A worker's emission handle. Disabled tracing is a `None`: no ring
/// buffer exists and [`Tracer::emit`] is one branch — the payload
/// closure is never called.
#[derive(Debug, Default)]
pub struct Tracer {
    buf: Option<Box<TraceBuf>>,
    lifecycle: bool,
}

impl Tracer {
    /// The no-op tracer (what every worker gets when tracing is off).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer for `worker` per `cfg` — `disabled()` when `cfg` says off.
    pub fn new(cfg: &TraceConfig, worker: usize) -> Tracer {
        if !cfg.enabled {
            return Tracer::disabled();
        }
        Tracer {
            buf: Some(Box::new(TraceBuf::new(worker, cfg.capacity))),
            lifecycle: cfg.lifecycle,
        }
    }

    /// Is a ring buffer attached (i.e. will emissions record)?
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Record lifecycle (high-volume) events too?
    pub fn lifecycle(&self) -> bool {
        self.lifecycle && self.buf.is_some()
    }

    /// Record an event stamped at worker-virtual-time `t`. `kind` is a
    /// closure so that payload construction is skipped when disabled.
    #[inline]
    pub fn emit(&mut self, t: u64, kind: impl FnOnce() -> EventKind) {
        if let Some(buf) = self.buf.as_mut() {
            let worker = buf.worker;
            buf.push(TraceEvent {
                t,
                worker,
                kind: kind(),
            });
        }
    }

    /// Detach the ring buffer (deposited into engine-shared storage when
    /// the worker completes).
    pub fn take(&mut self) -> Option<TraceBuf> {
        self.buf.take().map(|b| *b)
    }
}

/// A cloneable, locked event sink for contexts that outlive or sit
/// outside a single worker (the drivers: worker exits, aborts, phase
/// transitions). Not on any engine hot path.
#[derive(Clone, Debug)]
pub struct TraceSink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
    lifecycle: bool,
}

impl TraceSink {
    pub fn new(cfg: &TraceConfig) -> TraceSink {
        TraceSink {
            events: Arc::new(Mutex::new(Vec::new())),
            lifecycle: cfg.lifecycle,
        }
    }

    pub fn lifecycle(&self) -> bool {
        self.lifecycle
    }

    pub fn emit(&self, t: u64, worker: usize, kind: EventKind) {
        self.events.lock().push(TraceEvent { t, worker, kind });
    }

    /// Take everything recorded so far.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

/// The merged, virtual-time-ordered trace of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, sorted by `t` (stable: per-worker emission order is
    /// preserved among equal timestamps).
    pub events: Vec<TraceEvent>,
    /// Total events evicted from ring buffers across all workers.
    pub dropped: u64,
}

impl Trace {
    /// Merge per-worker ring buffers plus loose (driver-side) events into
    /// one virtual-time-ordered trace.
    pub fn merge(bufs: Vec<TraceBuf>, extra: Vec<TraceEvent>) -> Trace {
        let mut events =
            Vec::with_capacity(bufs.iter().map(TraceBuf::len).sum::<usize>() + extra.len());
        let mut dropped = 0;
        for buf in bufs {
            dropped += buf.dropped;
            events.extend(buf.events);
        }
        events.extend(extra);
        events.sort_by_key(|e| e.t); // stable sort: keeps per-worker order
        Trace { events, dropped }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Highest worker id seen, plus one (0 for an empty trace).
    pub fn workers(&self) -> usize {
        self.events.iter().map(|e| e.worker + 1).max().unwrap_or(0)
    }

    /// Chrome `trace_event` JSON (load in Perfetto or `chrome://tracing`).
    /// Virtual cost units are exported as microseconds; every event is a
    /// thread-scoped instant on `tid = worker`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push_sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        let mut seen: Vec<usize> = self.events.iter().map(|e| e.worker).collect();
        seen.sort_unstable();
        seen.dedup();
        for w in seen {
            push_sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{w},\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            ));
        }
        for ev in &self.events {
            push_sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}",
                escape_json(ev.kind.name()),
                ev.t,
                ev.worker
            ));
            let args = ev.kind.args();
            if !args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, val)) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match val {
                        Arg::U(n) => out.push_str(&format!("\"{key}\":{n}")),
                        Arg::S(s) => out.push_str(&format!("\"{key}\":\"{}\"", escape_json(s))),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str(&format!("],\"droppedEvents\":{}}}", self.dropped));
        out
    }

    /// Compact one-event-per-line text timeline.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!("[{:>12}] w{} {}", ev.t, ev.worker, ev.kind.name()));
            for (key, val) in ev.kind.args() {
                match val {
                    Arg::U(n) => out.push_str(&format!(" {key}={n}")),
                    Arg::S(s) => out.push_str(&format!(" {key}={s:?}")),
                }
            }
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "({} events dropped from ring buffers)\n",
                self.dropped
            ));
        }
        out
    }
}

/// Replays a finished [`Trace`] and asserts scheduler invariants. The
/// merged order is virtual-time order, which is *not* a causal order
/// across workers (two workers' clocks are independent), so every check
/// is set-based rather than sequential:
///
/// * **claims follow publication** — every `claim (node, epoch)` appears
///   in the set of `publish`/`lao-reuse` events for that node and epoch;
/// * **no double issue** — no `(node, epoch, alt)` is claimed twice;
/// * **pool conservation** — pool pops never exceed pushes plus steal
///   successes (in this engine every pop dequeues a pushed handle, so
///   the bound is slack but safe);
/// * **faults are answered** — every `fault-injected` is matched by a
///   recovery record (`fault-retry`, `fault-stall`, `degraded`) or a
///   `worker-exit`/`abort`;
/// * **no install before materialization** — in a run that deferred any
///   closure capture (at least one `closure-defer` recorded), every
///   remote `claim` and every `closure-thaw` of a `(node, epoch)` must
///   match a `closure-materialize` for that same node epoch, and every
///   materialization must match a defer — a claimant can never install
///   an alternative whose closure was never frozen. (The rule is gated
///   on defers being present so synthetic traces from older layers stay
///   valid.)
/// * **no hit before its store** — every `memo-hit (key, epoch)` matches
///   a `memo-store` of the same key epoch recorded in this run, *or*
///   predates every store in the trace (table epochs are globally
///   monotone, so a hit at an epoch below the run's first store can only
///   come from a warm table carried in from a previous run).
/// * **no answer after cancel** — session events carry a server-global
///   sequence number in `t`, so within one session's stream `t` *is*
///   causal: no `answer-streamed`/`session-first-answer` may carry a `t`
///   greater than the session's first `session-cancel` /
///   `session-deadline-cancel` event, and a rejected session streams no
///   answers at all (nor may a session be both admitted and rejected).
///
/// When the trace reports dropped events, count- and set-based checks
/// that eviction could falsify are skipped and the result is the
/// explicit [`TraceVerdict::Incomplete`] rather than a hard pass/fail;
/// the double-issue check still runs (dropping events can hide a
/// duplicate, never create one).
pub struct TraceChecker;

/// Where an event sits in the merged stream — attached to every checker
/// message so a violation at 256 workers is a jump-to, not a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EvRef {
    idx: usize,
    worker: usize,
    t: u64,
}

impl fmt::Display for EvRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event #{} (worker {}, t={})",
            self.idx, self.worker, self.t
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct ClaimInfo {
    count: u64,
    first: EvRef,
    last: EvRef,
    /// Nearest preceding publish/lao-reuse of the claimed node (any
    /// epoch), captured when the claim was replayed.
    nearest_pub: Option<(u64, EvRef)>,
}

/// The outcome of replaying a trace through [`TraceChecker::verdict`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceVerdict {
    /// The stream is complete and every invariant held.
    Passed,
    /// Ring buffers evicted `dropped` events: drop-sensitive checks were
    /// skipped, so this is *not* a pass — the stream is unverifiable.
    /// `violations` lists what the surviving per-event checks still
    /// caught (dropping events can hide a violation, never forge one).
    Incomplete {
        dropped: u64,
        violations: Vec<String>,
    },
    /// The complete stream violated invariants.
    Failed(Vec<String>),
}

impl TraceChecker {
    /// Check all invariants; `Err` carries one message per violation.
    ///
    /// Compatibility wrapper over [`TraceChecker::verdict`]: an
    /// [`TraceVerdict::Incomplete`] trace with no surviving violations
    /// maps to `Ok` (the historical soft-pass); callers that must not
    /// treat truncation as success should match on `verdict` instead.
    pub fn check(trace: &Trace) -> Result<(), Vec<String>> {
        match Self::verdict(trace) {
            TraceVerdict::Passed => Ok(()),
            TraceVerdict::Incomplete { violations, .. } if violations.is_empty() => Ok(()),
            TraceVerdict::Incomplete { violations, .. } | TraceVerdict::Failed(violations) => {
                Err(violations)
            }
        }
    }

    /// Replay the trace and classify it: [`TraceVerdict::Passed`],
    /// [`TraceVerdict::Failed`], or — when ring buffers dropped events —
    /// the explicit [`TraceVerdict::Incomplete`] instead of a silent
    /// check of a truncated stream.
    pub fn verdict(trace: &Trace) -> TraceVerdict {
        let mut published: HashMap<(u64, u64), EvRef> = HashMap::new();
        // Latest publish/lao-reuse seen per node, any epoch — the
        // "nearest preceding related event" for claim diagnostics.
        let mut last_pub_by_node: HashMap<u64, (u64, EvRef)> = HashMap::new();
        let mut claimed: HashMap<(u64, u64, usize), ClaimInfo> = HashMap::new();
        let (mut pushes, mut pops, mut steals) = (0u64, 0u64, 0u64);
        let (mut injected, mut recovered) = (0u64, 0u64);
        let mut memo_stores: HashMap<(u64, u64), EvRef> = HashMap::new();
        let mut last_store_by_key: HashMap<u64, (u64, EvRef)> = HashMap::new();
        // (key, epoch, hit ref, nearest preceding store of key)
        #[allow(clippy::type_complexity)]
        let mut memo_hits: Vec<(u64, u64, EvRef, Option<(u64, EvRef)>)> = Vec::new();
        let mut deferred: HashMap<(u64, u64), EvRef> = HashMap::new();
        let mut materialized: HashMap<(u64, u64), EvRef> = HashMap::new();
        let mut thawed: Vec<(u64, u64, EvRef)> = Vec::new();
        let mut admitted: HashMap<u64, EvRef> = HashMap::new();
        let mut rejected: HashMap<u64, EvRef> = HashMap::new();
        let mut cancelled_at: HashMap<u64, (u64, EvRef)> = HashMap::new();
        let mut streamed: Vec<(u64, u64, EvRef)> = Vec::new(); // (session, t, ref)
                                                               // Tabling is evaluated machine-locally (local scheduling), so the
                                                               // rules are per (worker, subgoal): answers inserted so far, and
                                                               // the point the worker completed the subgoal. Cross-worker
                                                               // virtual times are not causal, so cross-worker rules would be
                                                               // unsound here.
        let mut table_answers_seen: HashMap<(usize, u64), usize> = HashMap::new();
        let mut table_completed: HashMap<(usize, u64), EvRef> = HashMap::new();
        // Clause dispatch is also worker-local: a retry on a worker is
        // judged against the dispatches *that worker* made (a claimed
        // shared alternative retries on the thief, whose own dispatch
        // history for the predicate may be empty — that is fine).
        let mut clause_dispatched: HashMap<(usize, String), EvRef> = HashMap::new();
        let mut clause_nondet: HashSet<(usize, String)> = HashSet::new();
        let mut clause_retries: Vec<(usize, String, EvRef)> = Vec::new();
        // Order-sensitive, so checked inline; only reported when the
        // trace is complete (ring-buffer eviction can eat the answers
        // that justified a resume).
        let mut table_violations: Vec<String> = Vec::new();
        let mut violations = Vec::new();

        for (idx, ev) in trace.events.iter().enumerate() {
            let at = EvRef {
                idx,
                worker: ev.worker,
                t: ev.t,
            };
            match &ev.kind {
                EventKind::Publish { node, epoch, .. }
                | EventKind::LaoReuse { node, epoch, .. } => {
                    published.insert((*node, *epoch), at);
                    last_pub_by_node.insert(*node, (*epoch, at));
                }
                EventKind::Claim { node, epoch, alt } => {
                    let nearest_pub = last_pub_by_node.get(node).copied();
                    claimed
                        .entry((*node, *epoch, *alt))
                        .and_modify(|c| {
                            c.count += 1;
                            c.last = at;
                        })
                        .or_insert(ClaimInfo {
                            count: 1,
                            first: at,
                            last: at,
                            nearest_pub,
                        });
                }
                EventKind::PoolPush { .. } => pushes += 1,
                EventKind::PoolPop { .. } => pops += 1,
                EventKind::StealSuccess => steals += 1,
                EventKind::ClosureDefer { node, epoch } => {
                    deferred.insert((*node, *epoch), at);
                }
                EventKind::ClosureMaterialize { node, epoch, .. } => {
                    materialized.insert((*node, *epoch), at);
                }
                EventKind::ClosureThaw { node, epoch, .. } => thawed.push((*node, *epoch, at)),
                EventKind::MemoStore { key, epoch } => {
                    memo_stores.insert((*key, *epoch), at);
                    last_store_by_key.insert(*key, (*epoch, at));
                }
                EventKind::MemoHit { key, epoch } => {
                    let nearest = last_store_by_key.get(key).copied();
                    memo_hits.push((*key, *epoch, at, nearest));
                }
                EventKind::TableAnswer {
                    subgoal, answers, ..
                } => {
                    table_answers_seen.insert((ev.worker, *subgoal), *answers);
                    if let Some(done_at) = table_completed.get(&(ev.worker, *subgoal)) {
                        table_violations.push(format!(
                            "answer inserted into a completed table: subgoal={subgoal} \
                             at {at}; completed at {done_at}",
                        ));
                    }
                }
                EventKind::TableResume { subgoal, seen, .. } => {
                    let available = table_answers_seen
                        .get(&(ev.worker, *subgoal))
                        .copied()
                        .unwrap_or(0);
                    if *seen >= available {
                        table_violations.push(format!(
                            "table consumer resumed without a prior new answer: \
                             subgoal={subgoal} seen={seen} answers={available} at {at}",
                        ));
                    }
                }
                EventKind::TableComplete { subgoal, .. } => {
                    table_completed.entry((ev.worker, *subgoal)).or_insert(at);
                }
                EventKind::SessionAdmit { session } => {
                    admitted.entry(*session).or_insert(at);
                }
                EventKind::SessionReject { session } => {
                    rejected.entry(*session).or_insert(at);
                }
                EventKind::SessionCancel { session }
                | EventKind::SessionDeadlineCancel { session } => {
                    let entry = cancelled_at.entry(*session).or_insert((ev.t, at));
                    if ev.t < entry.0 {
                        *entry = (ev.t, at);
                    }
                }
                EventKind::SessionFirstAnswer { session }
                | EventKind::AnswerStreamed { session } => streamed.push((*session, ev.t, at)),
                // Hierarchical stealing: a thief never crosses a domain
                // boundary while work is visible in its own domain. The
                // event carries the occupancy snapshot taken at claim
                // time, so the rule is per-event and holds under
                // ring-buffer eviction.
                EventKind::DomainSteal {
                    node,
                    scope,
                    local_work,
                } if *scope == "cross" && *local_work > 0 => {
                    violations.push(format!(
                        "worker {} stole node={node} across domains with {local_work} \
                         local pool entries visible at {at}",
                        ev.worker
                    ));
                }
                EventKind::ClauseDispatch {
                    pred, determinate, ..
                } => {
                    clause_dispatched
                        .entry((ev.worker, pred.clone()))
                        .or_insert(at);
                    if !determinate {
                        clause_nondet.insert((ev.worker, pred.clone()));
                    }
                }
                EventKind::ClauseRetry { pred } => {
                    clause_retries.push((ev.worker, pred.clone(), at));
                }
                EventKind::FaultInjected { .. } => injected += 1,
                EventKind::FaultRetry { .. }
                | EventKind::FaultStall { .. }
                | EventKind::Degraded { .. }
                | EventKind::WorkerExit { .. }
                | EventKind::Abort { .. } => recovered += 1,
                _ => {}
            }
        }

        for ((node, epoch, alt), c) in &claimed {
            if c.count > 1 {
                violations.push(format!(
                    "alternative claimed {} times: node={node} epoch={epoch} alt={alt} — \
                     duplicate at {}; first claim at {}",
                    c.count, c.last, c.first
                ));
            }
        }

        // Eviction can remove a publish whose claim survived (and skew
        // counts); only the complete trace supports the remaining checks.
        if trace.dropped == 0 {
            violations.extend(table_violations);
            // Determinacy claims are binding: if every dispatch of a
            // predicate on a worker reported exactly one candidate, a
            // backtrack into a second clause of it there is impossible.
            for (worker, pred, at) in &clause_retries {
                let k = (*worker, pred.clone());
                if let Some(first) = clause_dispatched.get(&k) {
                    if !clause_nondet.contains(&k) {
                        violations.push(format!(
                            "clause retry of {pred} on worker {worker} at {at}, but every \
                             dispatch of {pred} there claimed determinacy (first at {first})"
                        ));
                    }
                }
            }
            for ((node, epoch, alt), c) in &claimed {
                if !published.contains_key(&(*node, *epoch)) {
                    let context = match c.nearest_pub {
                        Some((pub_epoch, pub_at)) => format!(
                            "; nearest preceding publish of node {node} was epoch \
                             {pub_epoch} at {pub_at}"
                        ),
                        None => format!("; node {node} was never published in this trace"),
                    };
                    violations.push(format!(
                        "claim without publication: node={node} epoch={epoch} alt={alt} \
                         at {}{context}",
                        c.last
                    ));
                }
            }
            if pops > pushes + steals {
                violations.push(format!(
                    "pool pops ({pops}) exceed pushes ({pushes}) + steals ({steals})"
                ));
            }
            if injected > recovered {
                violations.push(format!(
                    "{injected} fault injection(s) but only {recovered} recovery/exit record(s)"
                ));
            }
            // Procrastinated capture: once any defer is recorded, remote
            // installs are only legal against materialized closures.
            if !deferred.is_empty() {
                for ((node, epoch), at) in &materialized {
                    if !deferred.contains_key(&(*node, *epoch)) {
                        violations.push(format!(
                            "closure materialized without a defer: node={node} epoch={epoch} \
                             at {at}"
                        ));
                    }
                }
                for (node, epoch, at) in &thawed {
                    if !materialized.contains_key(&(*node, *epoch)) {
                        let context = match deferred.get(&(*node, *epoch)) {
                            Some(d) => format!("; deferred at {d}"),
                            None => String::new(),
                        };
                        violations.push(format!(
                            "closure thawed before materialization: node={node} epoch={epoch} \
                             at {at}{context}"
                        ));
                    }
                }
                for ((node, epoch, alt), c) in &claimed {
                    if !materialized.contains_key(&(*node, *epoch)) {
                        let context = match deferred.get(&(*node, *epoch)) {
                            Some(d) => format!("; deferred at {d}"),
                            None => String::new(),
                        };
                        violations.push(format!(
                            "alternative installed before its node's closure was \
                             materialized: node={node} epoch={epoch} alt={alt} at {}{context}",
                            c.last
                        ));
                    }
                }
            }
            // Hits at or above the run's first stored epoch must match a
            // recorded store; hits below it are warm-table replays (table
            // epochs are globally monotone across runs).
            let min_store = memo_stores.keys().map(|&(_, e)| e).min();
            for (key, epoch, at, nearest) in &memo_hits {
                let warm = match min_store {
                    None => true,
                    Some(min) => *epoch < min,
                };
                if !warm && !memo_stores.contains_key(&(*key, *epoch)) {
                    let context = match nearest {
                        Some((store_epoch, store_at)) => format!(
                            "; nearest preceding store of key {key} was epoch \
                             {store_epoch} at {store_at}"
                        ),
                        None => format!("; key {key} was never stored in this trace"),
                    };
                    violations.push(format!(
                        "memo hit without a matching store: key={key} epoch={epoch} \
                         at {at}{context}"
                    ));
                }
            }
            // Session streams: answers stop at the cancel event, rejected
            // sessions never stream, and admit/reject are exclusive.
            for (s, admit_at) in &admitted {
                if let Some(reject_at) = rejected.get(s) {
                    violations.push(format!(
                        "session {s} both admitted and rejected \
                         (admitted at {admit_at}; rejected at {reject_at})"
                    ));
                }
            }
            for (session, t, at) in &streamed {
                if let Some(reject_at) = rejected.get(session) {
                    violations.push(format!(
                        "answer streamed for rejected session {session} at t={t} ({at}); \
                         rejected at {reject_at}"
                    ));
                }
                if let Some((cancel_t, cancel_at)) = cancelled_at.get(session) {
                    if t > cancel_t {
                        violations.push(format!(
                            "answer streamed after session cancel: session={session} \
                             answer t={t} ({at}) cancel t={cancel_t} ({cancel_at})"
                        ));
                    }
                }
            }
        }

        if trace.dropped > 0 {
            TraceVerdict::Incomplete {
                dropped: trace.dropped,
                violations,
            }
        } else if violations.is_empty() {
            TraceVerdict::Passed
        } else {
            TraceVerdict::Failed(violations)
        }
    }
}

/// Escape a string for inclusion inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, worker: usize, kind: EventKind) -> TraceEvent {
        TraceEvent { t, worker, kind }
    }

    #[test]
    fn disabled_tracer_has_no_buffer_and_skips_payloads() {
        let mut tr = Tracer::new(&TraceConfig::default(), 0);
        assert!(!tr.is_enabled());
        tr.emit(10, || panic!("payload must not be built when disabled"));
        assert!(tr.take().is_none());
    }

    #[test]
    fn ring_buffer_wraparound_counts_drops() {
        let mut buf = TraceBuf::new(0, 4);
        for t in 0..10 {
            buf.push(ev(t, 0, EventKind::StealAttempt));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped, 6);
        // oldest events were evicted: the survivors are t = 6..10
        assert_eq!(buf.events.front().unwrap().t, 6);
        assert_eq!(buf.events.back().unwrap().t, 9);
    }

    #[test]
    fn merge_orders_by_virtual_time_across_workers() {
        let mut a = TraceBuf::new(0, 16);
        let mut b = TraceBuf::new(1, 16);
        for t in [5u64, 20, 40] {
            a.push(ev(t, 0, EventKind::StealAttempt));
        }
        for t in [1u64, 20, 30, 50] {
            b.push(ev(t, 1, EventKind::StealFail));
        }
        let trace = Trace::merge(
            vec![a, b],
            vec![ev(
                45,
                0,
                EventKind::WorkerExit {
                    reason: "completed".into(),
                },
            )],
        );
        let ts: Vec<u64> = trace.events.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1, 5, 20, 20, 30, 40, 45, 50]);
        // per-worker order is monotone after the merge
        for w in 0..trace.workers() {
            let mut last = 0;
            for e in trace.events.iter().filter(|e| e.worker == w) {
                assert!(e.t >= last, "worker {w} went backwards");
                last = e.t;
            }
        }
        assert_eq!(trace.workers(), 2);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn chrome_json_escapes_event_payload_strings() {
        let trace = Trace::merge(
            vec![],
            vec![ev(
                3,
                0,
                EventKind::WorkerExit {
                    reason: "panic: \"quoted\" \\ back\nslash\ttab\u{1}".into(),
                },
            )],
        );
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(r#"\"quoted\""#), "quotes escaped: {json}");
        assert!(json.contains(r"\\ back"), "backslash escaped: {json}");
        assert!(json.contains(r"\n"), "newline escaped: {json}");
        assert!(json.contains(r"\t"), "tab escaped: {json}");
        assert!(json.contains("\\u0001"), "control char escaped: {json}");
        assert!(!json.contains('\n'), "raw newline leaked into JSON");
    }

    #[test]
    fn timeline_renders_one_line_per_event() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::Publish {
                        node: 7,
                        epoch: 0,
                        alts: 3,
                        pred: "p/1".into(),
                    },
                ),
                ev(
                    2,
                    1,
                    EventKind::Claim {
                        node: 7,
                        epoch: 0,
                        alt: 1,
                    },
                ),
            ],
        );
        let text = trace.timeline();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("publish") && text.contains("node=7"));
    }

    #[test]
    fn checker_accepts_publish_claim_pairs() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::Publish {
                        node: 1,
                        epoch: 0,
                        alts: 2,
                        pred: "p/1".into(),
                    },
                ),
                ev(2, 0, EventKind::PoolPush { node: 1 }),
                ev(3, 1, EventKind::PoolPop { node: 1 }),
                ev(
                    4,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
                ev(
                    5,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 1,
                    },
                ),
                ev(6, 1, EventKind::StealSuccess),
            ],
        );
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_domain_steal_rule() {
        // Same-domain steals and cross-domain steals with an empty local
        // domain are fine, whatever the local occupancy says for the
        // former.
        let ok = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    1,
                    EventKind::DomainSteal {
                        node: 3,
                        scope: "domain",
                        local_work: 4,
                    },
                ),
                ev(
                    2,
                    2,
                    EventKind::DomainSteal {
                        node: 4,
                        scope: "cross",
                        local_work: 0,
                    },
                ),
            ],
        );
        assert!(TraceChecker::check(&ok).is_ok());

        // Crossing a domain while local work is visible is a violation.
        let bad = Trace::merge(
            vec![],
            vec![ev(
                1,
                2,
                EventKind::DomainSteal {
                    node: 5,
                    scope: "cross",
                    local_work: 3,
                },
            )],
        );
        let errs = TraceChecker::check(&bad).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("across domains")),
            "{errs:?}"
        );
    }

    #[test]
    fn checker_rejects_double_claim_and_orphan_claim() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::Publish {
                        node: 1,
                        epoch: 0,
                        alts: 1,
                        pred: "p/1".into(),
                    },
                ),
                ev(
                    2,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
                ev(
                    3,
                    2,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
                ev(
                    4,
                    2,
                    EventKind::Claim {
                        node: 9,
                        epoch: 3,
                        alt: 0,
                    },
                ),
            ],
        );
        let violations = TraceChecker::check(&trace).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("claimed 2 times")));
        assert!(violations.iter().any(|v| v.contains("without publication")));
    }

    #[test]
    fn checker_requires_fault_recovery_records() {
        let bad = Trace::merge(
            vec![],
            vec![ev(1, 0, EventKind::FaultInjected { kind: "steal-fail" })],
        );
        assert!(TraceChecker::check(&bad).is_err());

        let good = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::FaultInjected { kind: "steal-fail" }),
                ev(2, 0, EventKind::FaultRetry { what: "steal" }),
            ],
        );
        assert!(TraceChecker::check(&good).is_ok());
    }

    #[test]
    fn checker_softens_on_dropped_events() {
        let mut buf = TraceBuf::new(0, 1);
        buf.push(ev(
            1,
            0,
            EventKind::Publish {
                node: 1,
                epoch: 0,
                alts: 1,
                pred: "p/1".into(),
            },
        ));
        buf.push(ev(
            2,
            0,
            EventKind::Claim {
                node: 1,
                epoch: 0,
                alt: 0,
            },
        ));
        let trace = Trace::merge(vec![buf], vec![]);
        assert_eq!(trace.dropped, 1);
        // the publish was evicted, but the checker must not false-positive
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_accepts_defer_materialize_thaw_claim_chain() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::Publish {
                        node: 1,
                        epoch: 0,
                        alts: 2,
                        pred: "p/1".into(),
                    },
                ),
                ev(1, 0, EventKind::ClosureDefer { node: 1, epoch: 0 }),
                ev(
                    4,
                    0,
                    EventKind::ClosureMaterialize {
                        node: 1,
                        epoch: 0,
                        cells: 12,
                    },
                ),
                ev(
                    6,
                    1,
                    EventKind::ClosureThaw {
                        node: 1,
                        epoch: 0,
                        cells: 12,
                    },
                ),
                ev(
                    6,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
            ],
        );
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_rejects_install_before_materialization() {
        // A defer exists, so installs of un-materialized nodes are illegal.
        let claim_unmaterialized = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::Publish {
                        node: 1,
                        epoch: 0,
                        alts: 1,
                        pred: "p/1".into(),
                    },
                ),
                ev(1, 0, EventKind::ClosureDefer { node: 1, epoch: 0 }),
                ev(
                    3,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
            ],
        );
        let violations = TraceChecker::check(&claim_unmaterialized).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("before its node's closure was")));

        let thaw_unmaterialized = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::ClosureDefer { node: 2, epoch: 0 }),
                ev(
                    3,
                    1,
                    EventKind::ClosureThaw {
                        node: 2,
                        epoch: 0,
                        cells: 5,
                    },
                ),
            ],
        );
        let violations = TraceChecker::check(&thaw_unmaterialized).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("thawed before materialization")));

        let materialize_undeferred = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::ClosureDefer { node: 3, epoch: 0 }),
                ev(
                    2,
                    0,
                    EventKind::ClosureMaterialize {
                        node: 9,
                        epoch: 4,
                        cells: 1,
                    },
                ),
            ],
        );
        let violations = TraceChecker::check(&materialize_undeferred).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("materialized without a defer")));
    }

    #[test]
    fn checker_gate_keeps_deferless_traces_valid() {
        // No closure-defer events at all: pre-procrastination synthetic
        // traces (claims with no closure lifecycle) must stay accepted.
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::Publish {
                        node: 1,
                        epoch: 0,
                        alts: 1,
                        pred: "p/1".into(),
                    },
                ),
                ev(
                    2,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
            ],
        );
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_accepts_memo_hit_after_store() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::MemoStore { key: 42, epoch: 3 }),
                ev(
                    1,
                    0,
                    EventKind::MemoComplete {
                        key: 42,
                        epoch: 3,
                        answers: 1,
                    },
                ),
                ev(5, 1, EventKind::MemoHit { key: 42, epoch: 3 }),
            ],
        );
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_rejects_retry_after_determinate_dispatch() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::ClauseDispatch {
                        pred: "p/1".into(),
                        candidates: 1,
                        determinate: true,
                    },
                ),
                ev(9, 0, EventKind::ClauseRetry { pred: "p/1".into() }),
            ],
        );
        let errs = TraceChecker::check(&trace).unwrap_err();
        assert!(errs[0].contains("claimed determinacy"), "{errs:?}");
    }

    #[test]
    fn checker_allows_retry_after_nondeterminate_dispatch() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::ClauseDispatch {
                        pred: "member/2".into(),
                        candidates: 2,
                        determinate: false,
                    },
                ),
                ev(
                    9,
                    0,
                    EventKind::ClauseRetry {
                        pred: "member/2".into(),
                    },
                ),
            ],
        );
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_scopes_dispatch_determinacy_per_worker() {
        // Worker 0 dispatched determinately; the retry happens on worker 1
        // (a claimed shared alternative), whose own history is empty.
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::ClauseDispatch {
                        pred: "p/1".into(),
                        candidates: 1,
                        determinate: true,
                    },
                ),
                ev(9, 1, EventKind::ClauseRetry { pred: "p/1".into() }),
            ],
        );
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_rejects_memo_hit_without_store() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::MemoStore { key: 42, epoch: 3 }),
                // epoch 7 >= first stored epoch but was never stored
                ev(5, 1, EventKind::MemoHit { key: 9, epoch: 7 }),
            ],
        );
        let violations = TraceChecker::check(&trace).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("memo hit without a matching store")));
    }

    #[test]
    fn checker_allows_warm_table_memo_hits() {
        // A hit with no stores at all: table warmed by a previous run.
        let only_hit = Trace::merge(
            vec![],
            vec![ev(2, 0, EventKind::MemoHit { key: 9, epoch: 1 })],
        );
        assert!(TraceChecker::check(&only_hit).is_ok());
        // A hit below the run's first stored epoch: also warm (epochs
        // are globally monotone across runs sharing a table).
        let old_epoch = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::MemoStore { key: 42, epoch: 5 }),
                ev(2, 1, EventKind::MemoHit { key: 9, epoch: 2 }),
            ],
        );
        assert!(TraceChecker::check(&old_epoch).is_ok());
    }

    #[test]
    fn checker_accepts_well_formed_tabling_protocol() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::TableNew { key: 7, subgoal: 1 }),
                ev(
                    2,
                    0,
                    EventKind::TableSuspend {
                        key: 7,
                        subgoal: 1,
                        seen: 0,
                    },
                ),
                ev(
                    3,
                    0,
                    EventKind::TableAnswer {
                        key: 7,
                        subgoal: 1,
                        answers: 1,
                    },
                ),
                ev(
                    4,
                    0,
                    EventKind::TableResume {
                        key: 7,
                        subgoal: 1,
                        seen: 0,
                    },
                ),
                ev(
                    5,
                    0,
                    EventKind::TableComplete {
                        key: 7,
                        subgoal: 1,
                        answers: 1,
                    },
                ),
                // another worker shadow-evaluating the same subgoal keeps
                // its own answer ledger — its resume is justified locally
                ev(
                    2,
                    1,
                    EventKind::TableAnswer {
                        key: 7,
                        subgoal: 1,
                        answers: 1,
                    },
                ),
                ev(
                    3,
                    1,
                    EventKind::TableResume {
                        key: 7,
                        subgoal: 1,
                        seen: 0,
                    },
                ),
            ],
        );
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_rejects_resume_without_new_answer() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::TableNew { key: 7, subgoal: 1 }),
                ev(
                    2,
                    0,
                    EventKind::TableAnswer {
                        key: 7,
                        subgoal: 1,
                        answers: 1,
                    },
                ),
                // resumed at seen=1 with only 1 answer inserted: nothing
                // new to feed the consumer
                ev(
                    3,
                    0,
                    EventKind::TableResume {
                        key: 7,
                        subgoal: 1,
                        seen: 1,
                    },
                ),
            ],
        );
        let violations = TraceChecker::check(&trace).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("resumed without a prior new answer")));
    }

    #[test]
    fn checker_rejects_answer_into_completed_table() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::TableComplete {
                        key: 7,
                        subgoal: 3,
                        answers: 2,
                    },
                ),
                ev(
                    2,
                    0,
                    EventKind::TableAnswer {
                        key: 7,
                        subgoal: 3,
                        answers: 3,
                    },
                ),
            ],
        );
        let violations = TraceChecker::check(&trace).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("answer inserted into a completed table")));
        // ...but another worker completing the same subgoal later is fine
        // (shadow evaluation) — the rule is per-worker
        let cross = Trace::merge(
            vec![],
            vec![
                ev(
                    1,
                    0,
                    EventKind::TableComplete {
                        key: 7,
                        subgoal: 3,
                        answers: 2,
                    },
                ),
                ev(
                    5,
                    1,
                    EventKind::TableAnswer {
                        key: 7,
                        subgoal: 3,
                        answers: 1,
                    },
                ),
            ],
        );
        assert!(TraceChecker::check(&cross).is_ok());
    }

    #[test]
    fn checker_accepts_well_formed_session_stream() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::SessionAdmit { session: 7 }),
                ev(2, 0, EventKind::SessionFirstAnswer { session: 7 }),
                ev(2, 0, EventKind::AnswerStreamed { session: 7 }),
                ev(3, 0, EventKind::AnswerStreamed { session: 7 }),
                ev(4, 0, EventKind::SessionCancel { session: 7 }),
                ev(
                    5,
                    0,
                    EventKind::SessionDrain {
                        session: 7,
                        outcome: "cancelled",
                        answers: 2,
                    },
                ),
                ev(6, 1, EventKind::SessionReject { session: 8 }),
            ],
        );
        assert!(TraceChecker::check(&trace).is_ok());
    }

    #[test]
    fn checker_rejects_answer_after_session_cancel() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::SessionAdmit { session: 3 }),
                ev(2, 0, EventKind::SessionDeadlineCancel { session: 3 }),
                ev(5, 0, EventKind::AnswerStreamed { session: 3 }),
            ],
        );
        let violations = TraceChecker::check(&trace).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("answer streamed after session cancel")));
    }

    #[test]
    fn checker_rejects_stream_from_rejected_session() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::SessionReject { session: 9 }),
                ev(2, 0, EventKind::AnswerStreamed { session: 9 }),
            ],
        );
        let violations = TraceChecker::check(&trace).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("rejected session 9")));

        let both = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::SessionAdmit { session: 4 }),
                ev(2, 0, EventKind::SessionReject { session: 4 }),
            ],
        );
        let violations = TraceChecker::check(&both).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("both admitted and rejected")));
    }

    #[test]
    fn verdict_distinguishes_incomplete_from_passed_and_failed() {
        // Complete, clean trace: Passed.
        let clean = Trace::merge(vec![], vec![ev(1, 0, EventKind::StealAttempt)]);
        assert_eq!(TraceChecker::verdict(&clean), TraceVerdict::Passed);

        // Complete trace with a violation: Failed.
        let bad = Trace::merge(
            vec![],
            vec![ev(1, 0, EventKind::FaultInjected { kind: "die" })],
        );
        assert!(matches!(
            TraceChecker::verdict(&bad),
            TraceVerdict::Failed(_)
        ));

        // Truncated trace: Incomplete, never a silent pass — even though
        // check() still soft-passes for compatibility.
        let mut buf = TraceBuf::new(0, 1);
        buf.push(ev(1, 0, EventKind::StealAttempt));
        buf.push(ev(2, 0, EventKind::StealFail));
        let truncated = Trace::merge(vec![buf], vec![]);
        match TraceChecker::verdict(&truncated) {
            TraceVerdict::Incomplete {
                dropped,
                violations,
            } => {
                assert_eq!(dropped, 1);
                assert!(violations.is_empty());
            }
            v => panic!("expected Incomplete, got {v:?}"),
        }
        assert!(TraceChecker::check(&truncated).is_ok());

        // Truncated trace with a drop-proof violation: Incomplete carries
        // it, and check() still errors.
        let mut buf = TraceBuf::new(0, 2);
        buf.push(ev(1, 0, EventKind::StealAttempt));
        buf.push(ev(2, 0, EventKind::StealAttempt));
        buf.push(ev(3, 0, EventKind::StealAttempt));
        let double = Trace::merge(
            vec![buf],
            vec![
                ev(
                    4,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
                ev(
                    5,
                    2,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
            ],
        );
        match TraceChecker::verdict(&double) {
            TraceVerdict::Incomplete {
                dropped,
                violations,
            } => {
                assert_eq!(dropped, 1);
                assert!(violations.iter().any(|v| v.contains("claimed 2 times")));
            }
            v => panic!("expected Incomplete, got {v:?}"),
        }
        assert!(TraceChecker::check(&double).is_err());
    }

    #[test]
    fn checker_messages_locate_the_offending_event() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(
                    10,
                    0,
                    EventKind::Publish {
                        node: 1,
                        epoch: 0,
                        alts: 1,
                        pred: "p/1".into(),
                    },
                ),
                ev(
                    20,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
                ev(
                    30,
                    2,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
                // Claimed epoch never published; node published at epoch 0.
                ev(
                    40,
                    3,
                    EventKind::Claim {
                        node: 1,
                        epoch: 9,
                        alt: 0,
                    },
                ),
            ],
        );
        let errs = TraceChecker::check(&trace).unwrap_err();
        let double = errs
            .iter()
            .find(|e| e.contains("claimed 2 times"))
            .expect("double-claim violation");
        // Offending (duplicate) event and the nearest related (first
        // claim) are both pinpointed: index, worker, virtual time.
        assert!(
            double.contains("duplicate at event #2 (worker 2, t=30)"),
            "{double}"
        );
        assert!(
            double.contains("first claim at event #1 (worker 1, t=20)"),
            "{double}"
        );
        let orphan = errs
            .iter()
            .find(|e| e.contains("without publication"))
            .expect("orphan-claim violation");
        assert!(orphan.contains("at event #3 (worker 3, t=40)"), "{orphan}");
        assert!(
            orphan.contains("nearest preceding publish of node 1 was epoch 0 at event #0"),
            "{orphan}"
        );
    }

    #[test]
    fn sink_collects_and_drains() {
        let sink = TraceSink::new(&TraceConfig::enabled());
        let clone = sink.clone();
        clone.emit(
            9,
            2,
            EventKind::Abort {
                reason: "livelock".into(),
            },
        );
        let events = sink.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].worker, 2);
        assert!(sink.drain().is_empty());
    }
}
