//! Live metrics: a lock-free registry of sharded counters, gauges and
//! log-bucketed histograms, merged on scrape.
//!
//! The tracer (see [`crate::trace`]) answers "what happened in this
//! run?" after the report lands; this module answers "what is happening
//! right now?" for long-lived processes like the query server, where
//! per-run artifacts are useless for watching a fleet serve traffic.
//!
//! Design contract, mirroring the tracer's:
//!
//! * **Always compiled, off by default.** [`crate::EngineConfig::metrics`]
//!   is `None` unless [`crate::EngineConfig::with_metrics`] installs a
//!   registry. Every hot-path emission point holds an
//!   `Option<...>`-shaped handle, so the disabled path is one branch.
//! * **Zero virtual cost.** Recording a metric never charges the cost
//!   model — observability must not perturb the simulated schedule.
//!   CI guards that a metrics-disabled run is bit-identical in
//!   `virtual_time` and the full [`Stats`] sheet.
//! * **Write-fast, read-slow.** Counters are sharded per worker
//!   ([`Counter::add`] is one relaxed `fetch_add` on the caller's own
//!   cache line); scrapes ([`MetricsRegistry::snapshot`]) sum the
//!   shards. Registration (name + labels → handle) is the only code
//!   path behind a mutex, and it runs once per handle, not per event.
//!
//! Histograms bucket values logarithmically: exact buckets below 16,
//! then four sub-buckets per power of two (worst-case bucket error
//! ~25%, 256 buckets covering all of `u64`). [`HistogramSnapshot::quantile`]
//! reads quantiles off the cumulative bucket counts, and
//! [`MetricsSnapshot::render_prometheus`] emits the standard text
//! exposition format (`_bucket{le=...}` / `_sum` / `_count`).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::stats::Stats;

/// Exact buckets `0..16`, then log-spaced buckets.
const LINEAR_BUCKETS: usize = 16;
/// Sub-buckets per power of two in the log range.
const SUB_BUCKETS: usize = 4;
/// Total bucket count: 16 linear + 4 per octave for octaves 4..=63.
pub const HISTOGRAM_BUCKETS: usize = LINEAR_BUCKETS + (64 - 4) * SUB_BUCKETS;

/// Bucket index for a histogram observation: identity below 16, then
/// `16 + (octave - 4) * 4 + sub` where `sub` is the top two mantissa
/// bits — log-spaced with four sub-buckets per power of two.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 4 here
    let sub = ((v >> (octave - 2)) & 3) as usize;
    LINEAR_BUCKETS + (octave - 4) * SUB_BUCKETS + sub
}

/// Inclusive upper bound of bucket `idx` (the Prometheus `le` value).
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < LINEAR_BUCKETS {
        return idx as u64;
    }
    let octave = 4 + (idx - LINEAR_BUCKETS) / SUB_BUCKETS;
    let sub = (idx - LINEAR_BUCKETS) % SUB_BUCKETS;
    let ub = (1u128 << octave) + (((sub as u128) + 1) << (octave - 2)) - 1;
    ub.min(u64::MAX as u128) as u64
}

// ----------------------------------------------------------------------
// Instruments
// ----------------------------------------------------------------------

/// A monotonically increasing counter, sharded to keep concurrent
/// writers off each other's cache lines. Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Counter {
    cells: Arc<[AtomicU64]>,
    mask: usize,
}

impl Counter {
    fn new(shards: usize) -> Counter {
        let shards = shards.next_power_of_two().max(1);
        let cells: Arc<[AtomicU64]> = (0..shards).map(|_| AtomicU64::new(0)).collect();
        Counter {
            mask: shards - 1,
            cells,
        }
    }

    /// Add `n`, routed by `shard` (pass the worker id; any value works).
    #[inline]
    pub fn add(&self, shard: usize, n: u64) {
        self.cells[shard & self.mask].fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self, shard: usize) {
        self.add(shard, 1);
    }

    /// Sum of all shards (scrape path).
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// A signed instantaneous value (queue depth, pool occupancy).
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            cell: Arc::new(AtomicI64::new(0)),
        }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>, // HISTOGRAM_BUCKETS entries
    sum: AtomicU64,
    count: AtomicU64,
}

/// A log-bucketed histogram of `u64` observations (latencies in µs,
/// cost units, sizes). Fixed 256-bucket layout; see [`bucket_index`].
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.core.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                buckets.push((bucket_upper_bound(i), cum));
            }
        }
        HistogramSnapshot {
            buckets,
            sum: self.core.sum.load(Ordering::Relaxed),
            count: self.core.count.load(Ordering::Relaxed),
        }
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

type SeriesKey = (String, Vec<(String, String)>);

#[derive(Default)]
struct Families {
    counters: BTreeMap<SeriesKey, Counter>,
    gauges: BTreeMap<SeriesKey, Gauge>,
    histograms: BTreeMap<SeriesKey, Histogram>,
    help: BTreeMap<String, String>,
}

/// The process-wide (or server-wide, or run-wide — scope is the
/// caller's choice) metrics registry. Share it as `Arc<MetricsRegistry>`
/// via [`crate::EngineConfig::with_metrics`]; scrape it with
/// [`MetricsRegistry::snapshot`].
pub struct MetricsRegistry {
    shards: usize,
    inner: Mutex<Families>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("shards", &self.shards)
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl MetricsRegistry {
    /// A registry with the default counter shard count (8).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_shards(8)
    }

    /// A registry whose counters split into `shards` cells (rounded up
    /// to a power of two). Size to the expected worker fleet; more
    /// shards cost memory per series, never correctness.
    pub fn with_shards(shards: usize) -> MetricsRegistry {
        MetricsRegistry {
            shards: shards.next_power_of_two().max(1),
            inner: Mutex::new(Families::default()),
        }
    }

    /// Convenience: `Arc::new(MetricsRegistry::new())`.
    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    /// Attach a `# HELP` line to every series of family `name`.
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .lock()
            .help
            .insert(name.to_string(), help.to_string());
    }

    /// Resolve (registering on first use) the counter `name{labels}`.
    /// Cold path: call once and keep the returned handle.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = series_key(name, labels);
        let mut inner = self.inner.lock();
        let shards = self.shards;
        inner
            .counters
            .entry(key)
            .or_insert_with(|| Counter::new(shards))
            .clone()
    }

    /// Resolve (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = series_key(name, labels);
        self.inner
            .lock()
            .gauges
            .entry(key)
            .or_insert_with(Gauge::new)
            .clone()
    }

    /// Resolve (registering on first use) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = series_key(name, labels);
        self.inner
            .lock()
            .histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// Fold one finished run's statistics sheet into the registry: every
    /// nonzero [`Stats`] counter becomes `ace_engine_stat_total{engine,stat}`,
    /// plus run count, virtual time, and per-tenant memo activity. Cold
    /// path — called once per run at report time, so the engines' hot
    /// loops never see it.
    pub fn record_run(&self, engine: &str, tenant: u32, stats: &Stats, virtual_time: u64) {
        let e = [("engine", engine)];
        self.counter("ace_engine_runs_total", &e).add(0, 1);
        self.counter("ace_engine_virtual_time_total", &e)
            .add(0, virtual_time);
        for (name, value) in stats.fields() {
            if value > 0 {
                self.counter(
                    "ace_engine_stat_total",
                    &[("engine", engine), ("stat", name)],
                )
                .add(0, value);
            }
        }
        // A run has exactly one memo tenant, so per-tenant memo traffic
        // is derivable here without threading tenant ids through the
        // table's lookup path.
        let tenant = tenant.to_string();
        for (event, n) in [
            ("hit", stats.memo_hits),
            ("miss", stats.memo_misses),
            ("store", stats.memo_stores),
            ("eviction", stats.memo_evictions),
        ] {
            if n > 0 {
                self.counter(
                    "ace_memo_tenant_total",
                    &[("event", event), ("tenant", &tenant)],
                )
                .add(0, n);
            }
        }
        // Tabling mirrors the memo block: completed tables are charged to
        // the same tenant, so SLG activity is attributable per tenant too.
        for (event, n) in [
            ("hit", stats.table_hits),
            ("subgoal", stats.table_subgoals),
            ("answer", stats.table_answers),
            ("duplicate", stats.table_dups),
            ("suspend", stats.table_suspends),
            ("resume", stats.table_resumes),
            ("complete", stats.table_completes),
        ] {
            if n > 0 {
                self.counter(
                    "ace_table_tenant_total",
                    &[("event", event), ("tenant", &tenant)],
                )
                .add(0, n);
            }
        }
    }

    /// Merge every series into an immutable, self-contained snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut samples: Vec<Sample> = Vec::new();
        for ((name, labels), c) in &inner.counters {
            samples.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Counter(c.value()),
            });
        }
        for ((name, labels), g) in &inner.gauges {
            samples.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Gauge(g.value()),
            });
        }
        for ((name, labels), h) in &inner.histograms {
            samples.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Histogram(h.snapshot()),
            });
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot {
            samples,
            help: inner.help.clone(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

// ----------------------------------------------------------------------
// Snapshot
// ----------------------------------------------------------------------

/// One series in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    pub value: SampleValue,
}

/// The value of one series at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// Merged histogram state: non-empty buckets as `(upper_bound,
/// cumulative_count)`, plus the running sum and total count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<(u64, u64)>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// The smallest bucket upper bound covering quantile `q` of the
    /// observations (so accurate to the ~25% worst-case bucket width).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        for &(le, cum) in &self.buckets {
            if cum >= target {
                return le;
            }
        }
        self.buckets.last().map(|&(le, _)| le).unwrap_or(0)
    }

    /// Mean of the observations (exact, from `sum`/`count`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// An immutable scrape of every registered series, ordered by name then
/// labels. Produced by [`MetricsRegistry::snapshot`]; renders to the
/// Prometheus text exposition format.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub samples: Vec<Sample>,
    help: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// The empty snapshot (what a metrics-disabled component scrapes to).
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        let (name, labels) = series_key(name, labels);
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
    }

    /// Value of the counter `name{labels}` (exact label match).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Sum of every counter series in family `name`, regardless of labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// Value of the gauge `name{labels}` (exact label match).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.find(name, labels)?.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// The histogram `name{labels}` (exact label match).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Render the snapshot in the Prometheus text exposition format:
    /// `# HELP`/`# TYPE` once per family, histograms as cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for s in &self.samples {
            if s.name != last_family {
                last_family = &s.name;
                if let Some(help) = self.help.get(&s.name) {
                    let _ = writeln!(out, "# HELP {} {}", s.name, help);
                }
                let kind = match s.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, None), v);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, None), v);
                }
                SampleValue::Histogram(h) => {
                    for &(le, cum) in &h.buckets {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            render_labels(&s.labels, Some(&le.to_string())),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        render_labels(&s.labels, Some("+Inf")),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        render_labels(&s.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        render_labels(&s.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut last = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for v in [v.saturating_sub(1), v, v.saturating_add(1)] {
                let idx = bucket_index(v);
                assert!(idx < HISTOGRAM_BUCKETS, "v={v} idx={idx}");
                assert!(idx >= last || v < (1u64 << shift), "v={v}");
                last = last.max(idx);
                // The value must sit inside its bucket's bounds.
                assert!(v <= bucket_upper_bound(idx), "v={v} idx={idx}");
                if idx > 0 {
                    assert!(v > bucket_upper_bound(idx - 1), "v={v} idx={idx}");
                }
            }
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_error_stays_under_a_quarter() {
        for v in [17u64, 100, 999, 12_345, 7_000_000, u32::MAX as u64 * 17] {
            let ub = bucket_upper_bound(bucket_index(v));
            assert!(ub >= v);
            assert!(
                (ub - v) as f64 <= 0.25 * v as f64 + 1.0,
                "v={v} ub={ub} error too large"
            );
        }
    }

    #[test]
    fn counter_shards_sum_on_read() {
        let c = Counter::new(4);
        for worker in 0..64 {
            c.add(worker, 2);
        }
        assert_eq!(c.value(), 128);
        let c2 = c.clone();
        c2.inc(3);
        assert_eq!(c.value(), 129, "clones share cells");
    }

    #[test]
    fn gauge_tracks_depth() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        g.set(-5);
        assert_eq!(g.value(), -5);
    }

    #[test]
    fn registry_reuses_series_and_separates_labels() {
        let r = MetricsRegistry::new();
        let a = r.counter("req_total", &[("tenant", "1")]);
        let b = r.counter("req_total", &[("tenant", "1")]);
        let c = r.counter("req_total", &[("tenant", "2")]);
        a.add(0, 5);
        b.add(1, 5);
        c.add(0, 1);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter_value("req_total", &[("tenant", "1")]),
            Some(10)
        );
        assert_eq!(snap.counter_value("req_total", &[("tenant", "2")]), Some(1));
        assert_eq!(snap.counter_total("req_total"), 11);
        // Label order must not matter for identity.
        let d = r.counter("pair_total", &[("a", "1"), ("b", "2")]);
        let e = r.counter("pair_total", &[("b", "2"), ("a", "1")]);
        d.inc(0);
        e.inc(0);
        assert_eq!(
            r.snapshot()
                .counter_value("pair_total", &[("a", "1"), ("b", "2")]),
            Some(2)
        );
    }

    #[test]
    fn histogram_quantiles_read_off_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("latency_us", &[]);
        for v in 1..=100u64 {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("latency_us", &[]).unwrap();
        assert_eq!(hs.count, 100);
        assert_eq!(hs.sum, 5050);
        let p50 = hs.quantile(0.5);
        let p99 = hs.quantile(0.99);
        // Bucket upper bounds: within the ~25% bucket width of truth.
        assert!((50..=64).contains(&p50), "p50={p50}");
        assert!((99..=128).contains(&p99), "p99={p99}");
        assert!(hs.quantile(0.0) >= 1);
        assert_eq!(
            HistogramSnapshot {
                buckets: vec![],
                sum: 0,
                count: 0
            }
            .quantile(0.99),
            0
        );
    }

    #[test]
    fn record_run_folds_stats_and_tenant_memo() {
        let r = MetricsRegistry::new();
        let mut st = Stats::new();
        st.calls = 7;
        st.memo_hits = 3;
        st.memo_misses = 1;
        st.table_answers = 5;
        r.record_run("or", 4, &st, 1234);
        r.record_run("or", 4, &st, 66);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter_value("ace_engine_runs_total", &[("engine", "or")]),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("ace_engine_virtual_time_total", &[("engine", "or")]),
            Some(1300)
        );
        assert_eq!(
            snap.counter_value(
                "ace_engine_stat_total",
                &[("engine", "or"), ("stat", "calls")]
            ),
            Some(14)
        );
        assert_eq!(
            snap.counter_value(
                "ace_memo_tenant_total",
                &[("tenant", "4"), ("event", "hit")]
            ),
            Some(6)
        );
        assert_eq!(
            snap.counter_value(
                "ace_table_tenant_total",
                &[("tenant", "4"), ("event", "answer")]
            ),
            Some(10)
        );
        // Zero-valued stats register no series.
        assert_eq!(
            snap.counter_value(
                "ace_engine_stat_total",
                &[("engine", "or"), ("stat", "backtracks")]
            ),
            None
        );
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = MetricsRegistry::new();
        r.describe("req_total", "requests served");
        r.counter("req_total", &[("tenant", "a\"b")]).add(0, 3);
        r.gauge("depth", &[]).set(2);
        let h = r.histogram("lat_us", &[("priority", "high")]);
        h.observe(3);
        h.observe(300);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# HELP req_total requests served"), "{text}");
        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total{tenant=\"a\\\"b\"} 3"), "{text}");
        assert!(text.contains("# TYPE depth gauge"), "{text}");
        assert!(text.contains("depth 2"), "{text}");
        assert!(text.contains("# TYPE lat_us histogram"), "{text}");
        assert!(
            text.contains("lat_us_bucket{priority=\"high\",le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{priority=\"high\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("lat_us_sum{priority=\"high\"} 303"), "{text}");
        assert!(text.contains("lat_us_count{priority=\"high\"} 2"), "{text}");
        // Every non-comment line is "name{...} value" with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            value.parse::<f64>().expect("numeric sample value");
        }
    }

    #[test]
    fn empty_snapshot_is_empty() {
        assert!(MetricsSnapshot::empty().is_empty());
        assert_eq!(MetricsSnapshot::empty().render_prometheus(), "");
        assert!(MetricsRegistry::new().snapshot().is_empty());
    }
}
