//! Virtual-time cost profiler: fold a finished run's trace into a
//! weighted call profile.
//!
//! The trace stream (see [`crate::trace`]) stamps every event with its
//! worker's virtual clock, so the gap between two consecutive events of
//! the same worker *is* the virtual cost of whatever that worker was
//! doing in between. [`Profile::from_trace`] folds those per-worker
//! intervals into frames — semicolon-joined paths like
//! `run;member/2;publish` or `lock;answer` — attributing each interval
//! to the event that ends it:
//!
//! * predicate context comes from `publish`/`lao-reuse` events (which
//!   carry the predicate label) and follows `claim`s through the
//!   node → predicate map, so engine work is charged to the predicate
//!   the worker was executing;
//! * scheduler activity splits into `steal;hunt` (probing for work) and
//!   `steal;install` (installing a claim), `idle;probe`, and
//!   `lock;<what>` for contended-lock waits ([`crate::trace::EventKind::LockWait`]);
//! * fault machinery folds under `fault;*`.
//!
//! Consumers: [`Profile::top`] for a ranked table (surfaced in
//! `RunReport::summary()`), [`Profile::collapsed`] for
//! `inferno`-compatible collapsed-stack flamegraph text (one
//! `frame;sub count` line per frame — feed to `inferno-flamegraph` or
//! any Brendan-Gregg-style `flamegraph.pl` workflow), and
//! [`Profile::table`] for human-readable output in benches and the
//! repl.
//!
//! The attribution is deliberately interval-based rather than
//! event-count-based: a frame's weight is the virtual time spent
//! *reaching* its events, so a contended answer lock that serializes
//! 256 workers shows up as a `lock;answer` frame weighted by the actual
//! serialization cost — the topology-grid cliffs become a ranked list.

use std::collections::{BTreeMap, HashMap};

use crate::trace::{EventKind, Trace};

/// A weighted call profile: virtual cost per frame. Build with
/// [`Profile::from_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    frames: BTreeMap<String, u64>,
    total: u64,
}

impl Profile {
    /// Fold `trace` into a profile (see module docs for the frame
    /// taxonomy). Works on any engine's trace; server-side session
    /// events (sequence-stamped, not virtual-time-stamped) are ignored.
    pub fn from_trace(trace: &Trace) -> Profile {
        // Pass 1: node -> predicate, from the publication events.
        let mut node_pred: HashMap<u64, &str> = HashMap::new();
        for ev in &trace.events {
            if let EventKind::Publish { node, pred, .. } | EventKind::LaoReuse { node, pred, .. } =
                &ev.kind
            {
                node_pred.insert(*node, pred.as_str());
            }
        }

        // Pass 2: per-worker interval folding. The merged stream is
        // sorted by `t` with per-worker order preserved, so consecutive
        // events of one worker bound that worker's activity intervals.
        let mut prev_t: HashMap<usize, u64> = HashMap::new();
        let mut current: HashMap<usize, &str> = HashMap::new();
        let mut frames: BTreeMap<String, u64> = BTreeMap::new();
        let mut total = 0u64;
        for ev in &trace.events {
            let w = ev.worker;
            let prev = prev_t.insert(w, ev.t).unwrap_or(0);
            let dt = ev.t.saturating_sub(prev);
            let pred = current.get(&w).copied().unwrap_or("query");
            let frame: Option<String> = match &ev.kind {
                // Zero-width bookkeeping marks and server sequence
                // stamps: no interval attribution.
                EventKind::PhaseStart { .. }
                | EventKind::PhaseEnd { .. }
                | EventKind::QuantumStart
                | EventKind::SessionAdmit { .. }
                | EventKind::SessionReject { .. }
                | EventKind::SessionCancel { .. }
                | EventKind::SessionDeadlineCancel { .. }
                | EventKind::SessionFirstAnswer { .. }
                | EventKind::AnswerStreamed { .. }
                | EventKind::SessionDrain { .. } => None,
                // Running the program.
                EventKind::QuantumEnd { .. }
                | EventKind::Solution
                | EventKind::WorkerExit { .. }
                | EventKind::Abort { .. }
                | EventKind::Degraded { .. } => Some(format!("run;{pred}")),
                EventKind::Publish { pred, .. } | EventKind::LaoReuse { pred, .. } => {
                    Some(format!("run;{pred};publish"))
                }
                EventKind::ClosureDefer { .. } | EventKind::PoolPush { .. } => {
                    Some(format!("run;{pred};publish"))
                }
                EventKind::ClosureMaterialize { .. } => Some(format!("run;{pred};materialize")),
                EventKind::MemoHit { .. }
                | EventKind::MemoStore { .. }
                | EventKind::MemoComplete { .. } => Some(format!("run;{pred};memo")),
                EventKind::TableNew { .. }
                | EventKind::TableAnswer { .. }
                | EventKind::TableSuspend { .. }
                | EventKind::TableResume { .. }
                | EventKind::TableComplete { .. } => Some(format!("run;{pred};table")),
                EventKind::ClauseDispatch { .. } | EventKind::ClauseRetry { .. } => {
                    Some(format!("run;{pred};dispatch"))
                }
                EventKind::FrameAlloc { .. }
                | EventKind::FrameElide { .. }
                | EventKind::SlotFail
                | EventKind::MarkerElide
                | EventKind::PdoMerge
                | EventKind::RedoRound => Some(format!("run;{pred};parcall")),
                // Hunting for work vs installing a found claim.
                EventKind::PoolPop { .. }
                | EventKind::StealAttempt
                | EventKind::StealFail
                | EventKind::DomainSteal { .. } => Some("steal;hunt".into()),
                EventKind::Claim { .. }
                | EventKind::StealSuccess
                | EventKind::ClosureThaw { .. }
                | EventKind::MachineRecycle
                | EventKind::InstallAbort { .. } => Some("steal;install".into()),
                EventKind::LockWait { what, .. } => Some(format!("lock;{what}")),
                EventKind::IdleProbe { .. } => Some("idle;probe".into()),
                EventKind::FaultStall { .. } => Some("fault;stall".into()),
                EventKind::FaultInjected { .. } | EventKind::FaultRetry { .. } => {
                    Some("fault;inject".into())
                }
            };
            // Track the worker's predicate context *after* attributing
            // the interval that this event ends.
            match &ev.kind {
                EventKind::Publish { pred, .. } | EventKind::LaoReuse { pred, .. } => {
                    current.insert(w, pred.as_str());
                }
                EventKind::Claim { node, .. } => {
                    current.insert(w, node_pred.get(node).copied().unwrap_or("query"));
                }
                EventKind::WorkerExit { .. } => {
                    current.remove(&w);
                }
                _ => {}
            }
            if dt == 0 {
                continue;
            }
            if let Some(frame) = frame {
                *frames.entry(frame).or_insert(0) += dt;
                total += dt;
            }
        }
        Profile { frames, total }
    }

    /// Total attributed virtual cost across all frames.
    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Attributed cost of one exact frame path (0 if absent).
    pub fn cost(&self, frame: &str) -> u64 {
        self.frames.get(frame).copied().unwrap_or(0)
    }

    /// All frames with their costs, in path order.
    pub fn frames(&self) -> impl Iterator<Item = (&str, u64)> {
        self.frames.iter().map(|(f, &c)| (f.as_str(), c))
    }

    /// The `n` most expensive frames as `(frame, cost, percent_of_total)`,
    /// heaviest first (ties broken by frame path).
    pub fn top(&self, n: usize) -> Vec<(String, u64, f64)> {
        let mut v: Vec<(String, u64)> = self.frames.iter().map(|(f, &c)| (f.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(n);
        v.into_iter()
            .map(|(f, c)| {
                let pct = if self.total > 0 {
                    100.0 * c as f64 / self.total as f64
                } else {
                    0.0
                };
                (f, c, pct)
            })
            .collect()
    }

    /// Collapsed-stack flamegraph text: one `frame;sub count` line per
    /// frame, `inferno`/`flamegraph.pl` compatible.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (frame, cost) in &self.frames {
            out.push_str(frame);
            out.push(' ');
            out.push_str(&cost.to_string());
            out.push('\n');
        }
        out
    }

    /// Human-readable top-`n` table (percent, cost, frame path).
    pub fn table(&self, n: usize) -> String {
        let mut out = format!(
            "top {} of {} frames by virtual cost (total {} units):\n",
            n.min(self.frames.len()),
            self.frames.len(),
            self.total
        );
        for (frame, cost, pct) in self.top(n) {
            out.push_str(&format!("  {pct:>5.1}%  {cost:>12}  {frame}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(t: u64, worker: usize, kind: EventKind) -> TraceEvent {
        TraceEvent { t, worker, kind }
    }

    fn sample_trace() -> Trace {
        Trace::merge(
            vec![],
            vec![
                // worker 0: runs p/1, publishes, then waits on the
                // answer lock.
                ev(
                    10,
                    0,
                    EventKind::Publish {
                        node: 1,
                        epoch: 0,
                        alts: 2,
                        pred: "p/1".into(),
                    },
                ),
                ev(
                    15,
                    0,
                    EventKind::LockWait {
                        what: "answer",
                        cost: 5,
                    },
                ),
                ev(40, 0, EventKind::QuantumEnd { cost: 25 }),
                // worker 1: hunts, claims node 1 (=> p/1 context), runs.
                ev(8, 1, EventKind::PoolPop { node: 1 }),
                ev(
                    12,
                    1,
                    EventKind::Claim {
                        node: 1,
                        epoch: 0,
                        alt: 0,
                    },
                ),
                ev(30, 1, EventKind::QuantumEnd { cost: 18 }),
            ],
        )
    }

    #[test]
    fn intervals_fold_into_frames() {
        let p = Profile::from_trace(&sample_trace());
        assert_eq!(p.cost("run;p/1;publish"), 10, "{p:?}");
        assert_eq!(p.cost("lock;answer"), 5);
        // worker 0: 40-15=25 in p/1; worker 1: 30-12=18 in p/1 (context
        // followed through the claim's node -> pred map).
        assert_eq!(p.cost("run;p/1"), 43);
        assert_eq!(p.cost("steal;hunt"), 8);
        assert_eq!(p.cost("steal;install"), 4);
        assert_eq!(p.total(), 10 + 5 + 25 + 8 + 4 + 18);
    }

    #[test]
    fn top_ranks_by_cost() {
        let p = Profile::from_trace(&sample_trace());
        let top = p.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "run;p/1");
        assert_eq!(top[0].1, 43);
        assert!(top[0].2 > top[1].2);
        let pct_sum: f64 = p.top(100).iter().map(|(_, _, pct)| pct).sum();
        assert!((pct_sum - 100.0).abs() < 1e-9, "{pct_sum}");
    }

    #[test]
    fn collapsed_is_inferno_compatible() {
        let p = Profile::from_trace(&sample_trace());
        let text = p.collapsed();
        for line in text.lines() {
            let (frame, count) = line.rsplit_once(' ').expect("frame count");
            assert!(!frame.is_empty());
            count.parse::<u64>().expect("numeric count");
        }
        assert!(text.contains("lock;answer 5\n"), "{text}");
    }

    #[test]
    fn table_renders_percentages() {
        let p = Profile::from_trace(&sample_trace());
        let table = p.table(3);
        assert!(table.starts_with("top 3 of"), "{table}");
        assert!(table.contains("run;p/1"), "{table}");
        assert!(table.contains('%'), "{table}");
    }

    #[test]
    fn empty_trace_profiles_empty() {
        let p = Profile::from_trace(&Trace::default());
        assert!(p.is_empty());
        assert_eq!(p.total(), 0);
        assert_eq!(p.collapsed(), "");
        assert!(p.top(5).is_empty());
    }

    #[test]
    fn server_sequence_events_are_ignored() {
        let trace = Trace::merge(
            vec![],
            vec![
                ev(1, 0, EventKind::SessionAdmit { session: 1 }),
                ev(2, 0, EventKind::AnswerStreamed { session: 1 }),
                ev(
                    3,
                    0,
                    EventKind::SessionDrain {
                        session: 1,
                        outcome: "completed",
                        answers: 1,
                    },
                ),
            ],
        );
        assert!(Profile::from_trace(&trace).is_empty());
    }
}
