//! Machine topology for the virtual-time cost model.
//!
//! The paper's 10-CPU Sequent Symmetry was flat: every steal cost the
//! same and locks were cheap. A modern big box is not — workers live in
//! NUMA domains / core clusters, a steal that crosses a domain boundary
//! pays several times an intra-domain one, and a contended lock costs
//! whatever the previous holder's critical section still owes. This
//! module describes such a machine for the simulator:
//!
//! * [`Topology`] groups the fleet into `domains` equal blocks and
//!   carries the per-edge-class costs the engines charge on top of the
//!   flat [`crate::cost::CostModel`]: `intra_steal` for a claim taken
//!   from another shard in the thief's own domain, `cross_steal` for a
//!   claim that crossed domains, `contended_lock` for a lock
//!   acquisition the sim driver *observed* to be contended.
//! * [`LockClock`] is that observation mechanism. Under [`crate::driver::SimDriver`]
//!   only one worker runs per phase, so real mutexes are never
//!   contended; instead each instrumented lock records the virtual
//!   interval its last acquisition held it, and an acquisition by a
//!   different worker that lands inside the interval is contended — the
//!   acquirer is charged the residual wait plus `contended_lock`, not a
//!   flat constant per lock touch.
//!
//! The default topology is [`Topology::flat`]: one domain, zero steal
//! premiums, zero contention pricing — charge-for-charge identical to
//! the pre-topology engine, so existing benchmarks keep their numbers.
//! Contention observation still *counts* events under the default; only
//! a topology with a nonzero `contended_lock` turns them into charges.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Worker placement and per-edge-class costs for the virtual machine.
///
/// Workers `0..n` are assigned to `domains` contiguous blocks of
/// `ceil(n / domains)` workers each ([`Topology::domain_of`]); the
/// hierarchical `AltPool` in `ace-or` uses the same mapping for its
/// shard tiers, so "domain" means the same thing to the scheduler and
/// to the cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of NUMA domains / core clusters the fleet is split into.
    pub domains: usize,
    /// Extra virtual cost of claiming an alternative from another
    /// shard *within* the thief's domain (on top of the flat
    /// `claim_alternative`/`install_state` costs).
    pub intra_steal: u64,
    /// Extra virtual cost of claiming an alternative across a domain
    /// boundary. Several times `intra_steal` on a NUMA box.
    pub cross_steal: u64,
    /// Cost charged per *observed* contended lock acquisition, on top
    /// of the residual wait for the previous holder (see [`LockClock`]).
    pub contended_lock: u64,
    /// Victim-scan policy for the hierarchical pool: when true (the
    /// default), a thief exhausts its own domain before crossing; when
    /// false the scan is the old flat round-robin over all shards —
    /// kept as the ablation baseline for `BENCH_or_topology.json`.
    pub hierarchical: bool,
    /// When true (the default) each domain accumulates solutions in
    /// its own buffer and the engine-wide merge happens once at report
    /// time; when false every worker flushes into a single shared
    /// buffer — the pre-topology behaviour, kept as the ablation
    /// baseline that exposes the solution-collection cliff.
    pub domain_answer_buffers: bool,
}

impl Topology {
    /// The paper's machine: one flat domain, steals cost nothing beyond
    /// the `CostModel`'s flat charges, and locks are free —
    /// `contended_lock: 0` disables contention *charging* entirely
    /// (observed events are still counted in `Stats::lock_contended`),
    /// so runs under the default topology reproduce the pre-topology
    /// engine's virtual times exactly.
    pub fn flat() -> Self {
        Topology {
            domains: 1,
            intra_steal: 0,
            cross_steal: 0,
            contended_lock: 0,
            hierarchical: true,
            domain_answer_buffers: true,
        }
    }

    /// A NUMA box with `domains` clusters: intra-domain steals pay a
    /// small premium, cross-domain steals four times that, contended
    /// locks slightly more than the flat model assumed (cache-line
    /// migration). Magnitudes follow the same heap-cell unit scale as
    /// [`crate::cost::CostModel`].
    pub fn numa(domains: usize) -> Self {
        Topology {
            domains: domains.max(1),
            intra_steal: 12,
            cross_steal: 48,
            contended_lock: 8,
            hierarchical: true,
            domain_answer_buffers: true,
        }
    }

    pub fn with_domains(mut self, domains: usize) -> Self {
        self.domains = domains.max(1);
        self
    }

    pub fn with_steal_costs(mut self, intra: u64, cross: u64) -> Self {
        self.intra_steal = intra;
        self.cross_steal = cross;
        self
    }

    /// Price contended lock acquisitions: each observed contention
    /// charges the residual wait behind the previous holder plus `cost`.
    /// A zero `cost` disables contention charging (events are still
    /// counted) — the [`Topology::flat`] default.
    pub fn with_contended_lock(mut self, cost: u64) -> Self {
        self.contended_lock = cost;
        self
    }

    /// Whether contended locks are priced in virtual time under this
    /// topology (see [`Topology::with_contended_lock`]).
    pub fn prices_contention(&self) -> bool {
        self.contended_lock > 0
    }

    /// Disable the hierarchical victim scan (flat round-robin over all
    /// shards, as before this topology existed). Steals are still
    /// *classified* by domain so the cross-domain fraction of the flat
    /// policy is measurable.
    pub fn flat_scan(mut self) -> Self {
        self.hierarchical = false;
        self
    }

    /// Disable per-domain solution accumulation (single engine-wide
    /// answer buffer) — the ablation arm for the solution-collection
    /// contention cliff.
    pub fn global_answer_lock(mut self) -> Self {
        self.domain_answer_buffers = false;
        self
    }

    /// Domain of `worker` in a fleet of `workers`: contiguous blocks of
    /// `ceil(workers / domains)`, with the tail clamped into the last
    /// domain. With more domains than workers each worker gets its own.
    pub fn domain_of(&self, worker: usize, workers: usize) -> usize {
        let domains = self.domains.max(1);
        let workers = workers.max(1);
        let per = workers.div_ceil(domains);
        (worker / per.max(1)).min(domains - 1)
    }

    /// Steal premium for a claim whose victim shard lives in another
    /// domain (`cross`) or the thief's own (`!cross`).
    pub fn steal_cost(&self, cross: bool) -> u64 {
        if cross {
            self.cross_steal
        } else {
            self.intra_steal
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::flat()
    }
}

/// Virtual-time contention model for one shared lock.
///
/// Real mutexes never block under the sim driver (phases are
/// serialized), so contention must be *modelled*: each acquisition
/// records the virtual interval `[now, release)` it holds the lock,
/// where `release = max(now, previous release) + hold`. An acquisition
/// by a different worker with `now < previous release` is contended and
/// returns the residual wait `previous release - now`, which the caller
/// charges to its clock (plus [`Topology::contended_lock`]) — so a lock
/// that serializes a 512-worker fleet costs exactly the serialization
/// it causes, not a flat constant.
///
/// Under the threads driver clocks are advanced concurrently, so the
/// observation is approximate there (relaxed atomics, a model rather
/// than a measurement); it only feeds cost accounting and the
/// `lock_contended` statistic, never correctness.
#[derive(Debug)]
pub struct LockClock {
    /// Virtual time at which the last acquisition releases the lock.
    held_until: AtomicU64,
    /// Worker id of the last acquirer (`usize::MAX` = never held).
    owner: AtomicUsize,
}

impl LockClock {
    pub fn new() -> Self {
        LockClock {
            held_until: AtomicU64::new(0),
            owner: AtomicUsize::new(usize::MAX),
        }
    }

    /// Record an acquisition by `worker` at virtual time `now`, holding
    /// the lock for `hold` units. Returns the residual wait in virtual
    /// units: `0` for an uncontended acquisition, otherwise the time
    /// `worker` spent queued behind the previous holder.
    pub fn acquire(&self, worker: usize, now: u64, hold: u64) -> u64 {
        let until = self.held_until.load(Ordering::Relaxed);
        let prev = self.owner.swap(worker, Ordering::Relaxed);
        let contended = prev != worker && prev != usize::MAX && now < until;
        let wait = if contended { until - now } else { 0 };
        self.held_until
            .store(now.max(until) + hold, Ordering::Relaxed);
        wait
    }
}

impl Default for LockClock {
    fn default() -> Self {
        LockClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_the_paper_machine() {
        let t = Topology::default();
        assert_eq!(t.domains, 1);
        assert_eq!(t.intra_steal, 0);
        assert_eq!(t.cross_steal, 0);
        assert_eq!(t.contended_lock, 0);
        assert!(!t.prices_contention());
        assert!(Topology::numa(2).prices_contention());
        assert!(t.hierarchical);
        assert!(t.domain_answer_buffers);
        // Every worker lands in the single domain.
        for w in 0..512 {
            assert_eq!(t.domain_of(w, 512), 0);
        }
    }

    #[test]
    fn numa_cross_steals_cost_more() {
        let t = Topology::numa(4);
        assert!(t.cross_steal > t.intra_steal);
        assert_eq!(t.steal_cost(true), t.cross_steal);
        assert_eq!(t.steal_cost(false), t.intra_steal);
    }

    #[test]
    fn domain_blocks_are_contiguous_and_clamped() {
        let t = Topology::numa(4);
        // 64 workers / 4 domains = blocks of 16.
        assert_eq!(t.domain_of(0, 64), 0);
        assert_eq!(t.domain_of(15, 64), 0);
        assert_eq!(t.domain_of(16, 64), 1);
        assert_eq!(t.domain_of(63, 64), 3);
        // Uneven fleet: 10 workers / 4 domains = blocks of 3, tail clamps.
        assert_eq!(t.domain_of(9, 10), 3);
        // More domains than workers: one worker per domain.
        assert_eq!(t.domain_of(2, 3), 2);
    }

    #[test]
    fn lock_clock_reports_residual_wait() {
        let clock = LockClock::new();
        // First acquisition is free.
        assert_eq!(clock.acquire(0, 100, 10), 0);
        // A different worker inside the holder's interval waits it out.
        assert_eq!(clock.acquire(1, 105, 10), 5);
        // The queue compounds: worker 2 waits behind both.
        assert_eq!(clock.acquire(2, 106, 10), 14);
        // Past the release point the lock is free again.
        assert_eq!(clock.acquire(0, 10_000, 10), 0);
    }

    #[test]
    fn lock_clock_reacquisition_by_owner_is_free() {
        let clock = LockClock::new();
        assert_eq!(clock.acquire(3, 0, 50), 0);
        // Same worker re-entering its own window is not contention.
        assert_eq!(clock.acquire(3, 10, 50), 0);
    }
}
