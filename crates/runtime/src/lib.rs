//! # ace-runtime — parallel runtime substrate
//!
//! Configuration, cost accounting and execution drivers shared by the
//! and-parallel and or-parallel engines.
//!
//! ## The Sequent Symmetry substitution
//!
//! The paper's evaluation ran on a 10-processor Sequent Symmetry. This
//! reproduction instead measures on a **deterministic virtual-time
//! multiprocessor**: every engine operation charges units from a
//! [`cost::CostModel`] to its worker's virtual clock, and the
//! [`driver::SimDriver`] advances the worker whose clock is smallest, so
//! N-worker interleavings are simulated faithfully (including busy-wait
//! idling while looking for work) on any host — results are exact,
//! repeatable, and independent of host core count.
//!
//! The same engines also run under [`driver::ThreadsDriver`] on real OS
//! threads (std scoped threads + parking_lot); tests use it to validate
//! that engine logic is correct under true concurrency, and on multicore
//! hosts it reports wall-clock times.
//!
//! The virtual machine need not be flat: a [`topology::Topology`] on
//! the config groups workers into NUMA-style domains with per-edge-class
//! costs (intra- vs cross-domain steals, observed lock contention via
//! [`topology::LockClock`]), so 64–512-worker fleets are simulated with
//! locality effects the paper's 10-CPU Sequent never exposed.
//!
//! ## Fault model
//!
//! The [`fault`] module provides seeded, deterministic fault injection
//! ([`fault::FaultPlan`] / [`fault::FaultInjector`]), and both drivers
//! supervise their workers: panics become structured
//! [`driver::WorkerExit::Panicked`] entries on the [`driver::RunOutcome`]
//! instead of crashing the process, and the threads driver enforces an
//! optional wall-clock deadline.
//!
//! ## Observability
//!
//! The [`trace`] module provides always-compiled, off-by-default event
//! tracing: each worker records typed events ([`trace::EventKind`]) into
//! a fixed-capacity ring buffer stamped with its virtual clock, engines
//! merge the buffers into a virtual-time-ordered [`trace::Trace`], and
//! consumers export Chrome `trace_event` JSON or replay the trace through
//! [`trace::TraceChecker`] to assert scheduler invariants. Disabled
//! tracing costs one branch per emission point and zero virtual time.
//!
//! The [`metrics`] module adds the *live* counterpart: a lock-free
//! [`metrics::MetricsRegistry`] of sharded counters, gauges and
//! log-bucketed histograms attached via
//! [`config::EngineConfig::with_metrics`], scraped as a
//! [`metrics::MetricsSnapshot`] and rendered in the Prometheus text
//! format — same always-compiled/off-by-default/zero-virtual-cost
//! contract as the tracer. The [`profile`] module folds a finished
//! run's trace into a [`profile::Profile`]: virtual cost attributed to
//! predicate/activity frames, exported as a top-N table or an
//! `inferno`-compatible collapsed-stack flamegraph.
//!
//! ## Memoization
//!
//! [`config::EngineConfig::with_memo`] attaches an [`ace_memo`] answer
//! table (re-exported here as [`MemoTable`]): complete answer sets of
//! deterministic calls are published once and replayed by any worker.
//! Off by default and zero-cost when off — no table is allocated and
//! every consultation point is a single branch.
//!
//! ## Tabling
//!
//! [`config::EngineConfig::with_table`] attaches an [`ace_table`] table
//! space (re-exported here as [`TableSpace`]) for *non-determinate*
//! tabled predicates declared with `:- table(p/n).`: the machine runs
//! SLG-style generator/consumer evaluation with suspension, answer
//! dedup, and leader-based SCC completion, and publishes completed
//! answer sets into the shared space so later calls on any worker are
//! pure lookups. Same off-by-default/zero-cost-when-off contract as
//! memoization.

pub mod cancel;
pub mod config;
pub mod cost;
pub mod driver;
pub mod fault;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod stats;
pub mod topology;
pub mod trace;

pub use ace_memo::{MemoConfig, MemoCounters, MemoEntry, MemoTable, PublishOutcome};
pub use ace_table::{
    RegisterOutcome, TableConfig, TableCounters, TableEntry, TablePublish, TableSpace, TableState,
};
pub use cancel::CancelToken;
pub use config::{
    ClauseExec, DriverKind, EngineConfig, OptFlags, OrDispatch, OrScheduler, ShipPolicy,
};
pub use cost::CostModel;
pub use driver::{supervised, Agent, Phase, RunOutcome, SimDriver, ThreadsDriver, WorkerExit};
pub use fault::{FaultAction, FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, Sample,
    SampleValue,
};
pub use profile::Profile;
pub use sink::{AnswerSink, SinkVerdict};
pub use stats::Stats;
pub use topology::{LockClock, Topology};
pub use trace::{
    EventKind, Trace, TraceBuf, TraceChecker, TraceConfig, TraceEvent, TraceSink, TraceVerdict,
    Tracer,
};
