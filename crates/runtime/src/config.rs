//! Engine configuration: worker count, optimization toggles, driver choice.

use std::sync::Arc;
use std::time::Duration;

use ace_memo::{MemoConfig, MemoTable};
use ace_table::{TableConfig, TableSpace};

use crate::cancel::CancelToken;
use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::metrics::MetricsRegistry;
use crate::sink::AnswerSink;
use crate::topology::Topology;
use crate::trace::TraceConfig;

/// Which optimizations from the paper are enabled.
///
/// Each flag corresponds to one concrete optimization derived from the
/// three schemas (§3–§4 of the paper):
///
/// | flag  | optimization                      | schema             |
/// |-------|-----------------------------------|--------------------|
/// | `lpco`| Last Parallel Call Optimization   | flattening         |
/// | `lao` | Last Alternative Optimization     | flattening         |
/// | `spo` | Shallow Parallelism Optimization  | procrastination    |
/// | `pdo` | Processor Determinacy Optimization| sequentialization  |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptFlags {
    pub lpco: bool,
    pub lao: bool,
    pub spo: bool,
    pub pdo: bool,
}

impl OptFlags {
    /// The unoptimized baseline engine.
    pub fn none() -> Self {
        OptFlags::default()
    }

    /// All four optimizations on (the fully optimized ACE engine).
    pub fn all() -> Self {
        OptFlags {
            lpco: true,
            lao: true,
            spo: true,
            pdo: true,
        }
    }

    pub fn lpco_only() -> Self {
        OptFlags {
            lpco: true,
            ..Default::default()
        }
    }

    pub fn lao_only() -> Self {
        OptFlags {
            lao: true,
            ..Default::default()
        }
    }

    pub fn spo_only() -> Self {
        OptFlags {
            spo: true,
            ..Default::default()
        }
    }

    pub fn pdo_only() -> Self {
        OptFlags {
            pdo: true,
            ..Default::default()
        }
    }

    /// All 16 combinations, for exhaustive equivalence testing.
    pub fn all_combinations() -> Vec<OptFlags> {
        (0..16)
            .map(|m| OptFlags {
                lpco: m & 1 != 0,
                lao: m & 2 != 0,
                spo: m & 4 != 0,
                pdo: m & 8 != 0,
            })
            .collect()
    }

    /// Short label like `"lpco+spo"` (or `"none"`).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.lpco {
            parts.push("lpco");
        }
        if self.lao {
            parts.push("lao");
        }
        if self.spo {
            parts.push("spo");
        }
        if self.pdo {
            parts.push("pdo");
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join("+")
        }
    }
}

/// When and-parallel subgoal closures are copied out for stealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShipPolicy {
    /// Copy closures only when idle workers exist (&ACE-style local goal
    /// stacks; the default — one-worker runs never copy).
    #[default]
    Demand,
    /// Copy every shipped branch at frame creation (simpler, pays the
    /// copy even when nobody steals — kept for ablation).
    Eager,
}

/// Which public or-tree node idle workers draw work from first
/// (the classic Aurora scheduling debate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrDispatch {
    /// Deepest-first (dispatch on bottommost): long private runs, less
    /// task switching.
    #[default]
    Deepest,
    /// Closest to the root (dispatch on topmost): biggest subtrees first.
    Topmost,
}

/// How idle or-engine workers locate unclaimed alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrScheduler {
    /// Sharded alternative pool: publication enqueues a node handle,
    /// stealing pops one — amortized O(1) per claim regardless of
    /// public-tree size.
    #[default]
    Pool,
    /// Full tree traversal from the root on every steal attempt (the
    /// original scheduler). O(tree size) per claim; kept as the oracle
    /// the pool scheduler is validated against.
    Traversal,
}

/// How user-predicate clauses are resolved against calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClauseExec {
    /// WAM-style register code compiled at load time, dispatched through
    /// the switch-on-term first-argument chains — heads match without
    /// copying the clause arena, and only bucket clauses are visited.
    #[default]
    Compiled,
    /// The original tree-walking interpreter: linear first-argument scan
    /// over the raw clause list, block-copy instantiation, general
    /// unification of the copied head. Kept as the validation oracle the
    /// compiled path is checked bit-identical against.
    Interpreted,
}

/// Which execution driver to run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverKind {
    /// Deterministic virtual-time simulation (used for all paper
    /// reproductions; see crate docs).
    #[default]
    Sim,
    /// Real OS threads (correctness validation; wall-clock on multicore).
    Threads,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of workers ("agents"/"processors" in the paper's tables).
    pub workers: usize,
    pub opts: OptFlags,
    pub driver: DriverKind,
    /// Cost-unit prices (virtual time).
    pub costs: CostModel,
    /// Worker placement and per-edge-class steal/contention costs (see
    /// [`crate::topology`]). Flat by default — one domain, zero steal
    /// premiums — which reproduces the pre-topology cost accounting.
    pub topology: Topology,
    /// Maximum cost a worker may accumulate in one uninterrupted phase
    /// before yielding to the driver (bounds cancellation latency and
    /// interleaving granularity in the simulator).
    pub quantum: u64,
    /// Stop after this many solutions of the root query (`None` = all).
    pub max_solutions: Option<usize>,
    /// And-parallel goal-shipping policy.
    pub ship: ShipPolicy,
    /// Or-parallel work-finding order.
    pub or_dispatch: OrDispatch,
    /// Or-parallel work-finding mechanism (pool vs full traversal).
    pub or_scheduler: OrScheduler,
    /// Clause execution mechanism (compiled code vs interpreter oracle).
    pub clause_exec: ClauseExec,
    /// Safety valve: abort if total virtual time exceeds this bound
    /// (catches engine livelocks in tests). `None` = unbounded.
    pub virtual_time_limit: Option<u64>,
    /// Wall-clock budget for a [`DriverKind::Threads`] run. When it
    /// expires the driver raises its stop flag and cancels the engine's
    /// root token; the run ends with `aborted` set and per-worker
    /// `DeadlineExceeded` exits instead of hanging. `None` = no watchdog.
    pub threads_deadline: Option<Duration>,
    /// Deterministic fault schedule injected into the run (testing and
    /// robustness validation; see [`crate::fault`]). `None` = no faults.
    pub fault_plan: Option<FaultPlan>,
    /// Event tracing (see [`crate::trace`]). Off by default; when enabled
    /// the run's merged [`crate::trace::Trace`] is surfaced on the report.
    /// Tracing charges no virtual time.
    pub trace: TraceConfig,
    /// Answer memoization (see [`ace_memo`]). Off by default; when off no
    /// table is allocated and every consultation point is one branch, so
    /// reports stay bit-identical to a memo-free build.
    pub memo: MemoConfig,
    /// An externally owned answer table to reuse across runs (REPL
    /// sessions, warm-table tests). `None` = the engine allocates a fresh
    /// table per run when `memo.enabled`.
    pub memo_table: Option<Arc<MemoTable>>,
    /// Tenant id charged for this run's memo-table insertions (per-tenant
    /// quota accounting when a table is shared across queries; see
    /// [`ace_memo::MemoConfig::tenant_quota`]). Tenant 0 is the default
    /// single-tenant owner. Tabled completions (see `table`) are charged
    /// to the same tenant.
    pub memo_tenant: u32,
    /// Tabling of declared `:- table(p/n).` predicates (see
    /// [`ace_table`]). Off by default; when off no table space is
    /// allocated and every tabled-call check is one branch, so runs stay
    /// bit-identical to a tabling-free build.
    pub table: TableConfig,
    /// An externally owned table space to reuse across runs (REPL
    /// sessions, completed-table warm-up tests). `None` = the engine
    /// allocates a fresh space per run when `table.enabled`.
    pub table_space: Option<Arc<TableSpace>>,
    /// Live metrics registry (see [`crate::metrics`]). `None` (the
    /// default) disables metric recording entirely: every emission point
    /// is one branch, nothing is charged to virtual time, and runs stay
    /// bit-identical to a metrics-free build. Share one registry across
    /// runs/sessions to accumulate fleet-wide series.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Streamed answer delivery (see [`crate::sink`]). `None` = answers
    /// are only collected on the final report, exactly as before.
    pub sink: Option<AnswerSink>,
    /// External cancellation parent. When set, the engine's root token is
    /// created as a child of this one, so an outside supervisor (a query
    /// server session, a deadline watchdog) can cancel the run through
    /// the engines' existing cooperative checkpoints. The engine's own
    /// internal cancellations never propagate *up* into this token.
    pub cancel: Option<CancelToken>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            opts: OptFlags::none(),
            driver: DriverKind::Sim,
            costs: CostModel::default(),
            topology: Topology::flat(),
            quantum: 400,
            max_solutions: Some(1),
            ship: ShipPolicy::default(),
            or_dispatch: OrDispatch::default(),
            or_scheduler: OrScheduler::default(),
            clause_exec: ClauseExec::default(),
            virtual_time_limit: Some(200_000_000_000),
            threads_deadline: Some(Duration::from_secs(60)),
            fault_plan: None,
            trace: TraceConfig::default(),
            memo: MemoConfig::default(),
            memo_table: None,
            memo_tenant: 0,
            table: TableConfig::default(),
            table_space: None,
            metrics: None,
            sink: None,
            cancel: None,
        }
    }
}

impl EngineConfig {
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.opts = opts;
        self
    }

    pub fn with_driver(mut self, driver: DriverKind) -> Self {
        self.driver = driver;
        self
    }

    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    pub fn all_solutions(mut self) -> Self {
        self.max_solutions = None;
        self
    }

    pub fn first_solution(mut self) -> Self {
        self.max_solutions = Some(1);
        self
    }

    pub fn with_or_scheduler(mut self, sched: OrScheduler) -> Self {
        self.or_scheduler = sched;
        self
    }

    pub fn with_clause_exec(mut self, exec: ClauseExec) -> Self {
        self.clause_exec = exec;
        self
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    pub fn with_threads_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.threads_deadline = deadline;
        self
    }

    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Record live metrics into `registry` (see [`crate::metrics`]).
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    pub fn with_memo(mut self, memo: MemoConfig) -> Self {
        self.memo = memo;
        self
    }

    /// Reuse an existing answer table (implies enabling memoization).
    pub fn with_memo_table(mut self, table: Arc<MemoTable>) -> Self {
        self.memo.enabled = true;
        self.memo_table = Some(table);
        self
    }

    /// Charge this run's memo insertions to `tenant` (quota accounting on
    /// shared tables).
    pub fn with_memo_tenant(mut self, tenant: u32) -> Self {
        self.memo_tenant = tenant;
        self
    }

    pub fn with_table(mut self, table: TableConfig) -> Self {
        self.table = table;
        self
    }

    /// Reuse an existing table space (implies enabling tabling).
    pub fn with_table_space(mut self, space: Arc<TableSpace>) -> Self {
        self.table.enabled = true;
        self.table_space = Some(space);
        self
    }

    /// Stream each root solution through `sink` as it is found.
    pub fn with_answer_sink(mut self, sink: AnswerSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Parent the engine's root cancellation token under `token`.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The root cancellation token for a run under this config: a child
    /// of the external parent when one is set, a fresh root otherwise.
    pub fn root_cancel(&self) -> CancelToken {
        match &self.cancel {
            Some(parent) => parent.child(),
            None => CancelToken::new(),
        }
    }

    /// The table this run should consult: the externally provided one, or
    /// a freshly allocated private table; `None` when memoization is off.
    pub fn resolve_memo_table(&self) -> Option<Arc<MemoTable>> {
        if !self.memo.enabled {
            return None;
        }
        Some(self.memo_table.clone().unwrap_or_else(|| {
            // A fresh per-run table is sized to the fleet: the default 16
            // shards serialize lookups once more than ~16 workers hammer
            // the table, so scale the shard count up to the worker count
            // (next power of two keeps the modulo distribution even).
            // Externally supplied tables are reused as-is — their owner
            // chose their geometry.
            let mut memo = self.memo.clone();
            memo.shards = memo.shards.max(self.workers.next_power_of_two());
            Arc::new(MemoTable::new(&memo))
        }))
    }

    /// The table space this run's SLG evaluation should share: the
    /// externally provided one, or a freshly allocated private space;
    /// `None` when tabling is off. Same fleet-scaled shard sizing as
    /// [`EngineConfig::resolve_memo_table`].
    pub fn resolve_table_space(&self) -> Option<Arc<TableSpace>> {
        if !self.table.enabled {
            return None;
        }
        Some(self.table_space.clone().unwrap_or_else(|| {
            let mut table = self.table.clone();
            table.shards = table.shards.max(self.workers.next_power_of_two());
            Arc::new(TableSpace::new(&table))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(OptFlags::none().label(), "none");
        assert_eq!(OptFlags::all().label(), "lpco+lao+spo+pdo");
        assert_eq!(OptFlags::lpco_only().label(), "lpco");
    }

    #[test]
    fn sixteen_combinations_unique() {
        let all = OptFlags::all_combinations();
        assert_eq!(all.len(), 16);
        let labels: std::collections::HashSet<String> = all.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 16);
    }

    #[test]
    fn builder_chains() {
        let c = EngineConfig::default()
            .with_workers(10)
            .with_opts(OptFlags::all())
            .all_solutions();
        assert_eq!(c.workers, 10);
        assert!(c.opts.pdo);
        assert_eq!(c.max_solutions, None);
    }

    #[test]
    fn root_cancel_parents_under_external_token() {
        // no external parent: fresh root, independent of everything
        let free = EngineConfig::default().root_cancel();
        assert!(!free.is_cancelled());

        // external parent: cancelling it cancels the run's root...
        let session = CancelToken::new();
        let cfg = EngineConfig::default().with_cancel(session.clone());
        let root = cfg.root_cancel();
        assert!(!root.is_cancelled());
        session.cancel();
        assert!(root.is_cancelled());

        // ...but an engine-internal cancel never propagates upward
        let session = CancelToken::new();
        let root = EngineConfig::default()
            .with_cancel(session.clone())
            .root_cancel();
        root.cancel();
        assert!(!session.is_cancelled());
    }

    #[test]
    fn memo_table_resolution() {
        // off by default: no table, zero-cost opt-out
        assert!(EngineConfig::default().resolve_memo_table().is_none());
        // enabled without an external table: fresh private table
        let c = EngineConfig::default().with_memo(MemoConfig::enabled());
        assert!(c.resolve_memo_table().is_some());
        // external table is reused identically (and implies enablement)
        let shared = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let c = EngineConfig::default().with_memo_table(shared.clone());
        assert!(c.memo.enabled);
        assert!(Arc::ptr_eq(&c.resolve_memo_table().unwrap(), &shared));
    }

    #[test]
    fn memo_shards_scale_to_the_fleet() {
        // Small fleets keep the configured default geometry...
        let c = EngineConfig::default()
            .with_workers(8)
            .with_memo(MemoConfig::enabled());
        assert_eq!(c.resolve_memo_table().unwrap().shard_count(), 16);
        // ...big fleets get one shard per worker (power-of-two rounded).
        let c = EngineConfig::default()
            .with_workers(100)
            .with_memo(MemoConfig::enabled());
        assert_eq!(c.resolve_memo_table().unwrap().shard_count(), 128);
        // External tables are never resized behind their owner's back.
        let shared = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let c = EngineConfig::default()
            .with_workers(512)
            .with_memo_table(shared.clone());
        assert_eq!(c.resolve_memo_table().unwrap().shard_count(), 16);
    }

    #[test]
    fn table_space_resolution() {
        // off by default: no space, zero-cost opt-out
        assert!(EngineConfig::default().resolve_table_space().is_none());
        // enabled without an external space: fresh private space
        let c = EngineConfig::default().with_table(TableConfig::enabled());
        assert!(c.resolve_table_space().is_some());
        // external space is reused identically (and implies enablement)
        let shared = Arc::new(TableSpace::new(&TableConfig::enabled()));
        let c = EngineConfig::default().with_table_space(shared.clone());
        assert!(c.table.enabled);
        assert!(Arc::ptr_eq(&c.resolve_table_space().unwrap(), &shared));
    }

    #[test]
    fn table_shards_scale_to_the_fleet() {
        let c = EngineConfig::default()
            .with_workers(100)
            .with_table(TableConfig::enabled());
        assert_eq!(c.resolve_table_space().unwrap().shard_count(), 128);
        // External spaces are never resized behind their owner's back.
        let shared = Arc::new(TableSpace::new(&TableConfig::enabled()));
        let c = EngineConfig::default()
            .with_workers(512)
            .with_table_space(shared.clone());
        assert_eq!(c.resolve_table_space().unwrap().shard_count(), 16);
    }

    #[test]
    fn topology_defaults_flat() {
        let c = EngineConfig::default();
        assert_eq!(c.topology, Topology::flat());
        let c = c.with_topology(Topology::numa(4));
        assert_eq!(c.topology.domains, 4);
    }
}
