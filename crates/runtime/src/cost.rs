//! The virtual-time cost model.
//!
//! Each field is the price, in abstract cost units, of one engine
//! operation. The defaults are calibrated to the *relative* magnitudes the
//! paper describes rather than to any concrete hardware:
//!
//! * state-saving data structures (choice points, parcall frames, markers)
//!   are **expensive** — "these extra data-structures can be quite heavy,
//!   and can add considerable overhead to execution" (§2); markers in
//!   particular "store various information" (§4.1);
//! * elementary resolution work (unification steps, heap cells) is cheap;
//! * scheduler interactions (stealing, publication, idle probing) carry a
//!   synchronization premium.
//!
//! Every constant lives here so ablation benches can vary one knob at a
//! time (`bench/ablation_costs.rs`).

/// Cost-unit prices for every chargeable engine operation.
#[derive(Debug, Clone)]
pub struct CostModel {
    // -- sequential resolution --------------------------------------------
    /// Dispatch of one goal (procedure call overhead).
    pub call_dispatch: u64,
    /// One elementary unification step (per node visited).
    pub unify_step: u64,
    /// One heap cell written (clause instantiation, term building, copy).
    pub heap_cell: u64,
    /// One trail entry undone on backtracking.
    pub trail_undo: u64,
    /// Clause-index lookup for a call (switch-on-term bucket dispatch:
    /// flat, independent of predicate size).
    pub index_lookup: u64,
    /// One clause key-tested by the interpreter oracle's *linear* scan of
    /// the clause list (charged per clause visited; the compiled path
    /// never pays it).
    pub index_scan: u64,
    /// One compiled head/body instruction executed (register-code
    /// dispatch; general unification inside `get_val`/`unify_val` adds
    /// `unify_step` per node as usual).
    pub instr: u64,
    /// One builtin evaluation (plus per-step arithmetic below).
    pub builtin: u64,
    /// One arithmetic operator application.
    pub arith_op: u64,

    // -- nondeterminism ----------------------------------------------------
    /// Allocating a choice point.
    pub choice_point_alloc: u64,
    /// Restoring a choice point on backtracking (minus trail costs).
    pub choice_point_retry: u64,
    /// LAO applicability check performed at choice-point allocation.
    pub lao_check: u64,
    /// In-place reuse of a choice point under LAO (vs a fresh allocation).
    pub lao_reuse: u64,

    // -- and-parallelism ----------------------------------------------------
    /// Allocating a parcall frame (base price).
    pub parcall_frame_alloc: u64,
    /// Per-slot price within a parcall frame.
    pub parcall_slot: u64,
    /// LPCO applicability check at a nested parallel call.
    pub lpco_check: u64,
    /// Merging slots into an ancestor frame under LPCO (per slot).
    pub lpco_merge_slot: u64,
    /// Allocating an input or end marker.
    pub marker_alloc: u64,
    /// SPO procrastination bookkeeping when a marker is *not* allocated.
    pub spo_track: u64,
    /// PDO adjacency check on scheduler exit.
    pub pdo_check: u64,
    /// Traversing one level of nested parcall frames during failure
    /// propagation or backtracking.
    pub frame_traverse: u64,
    /// Joining/synchronizing on a finished slot.
    pub slot_join: u64,

    // -- or-parallelism ------------------------------------------------------
    /// Publishing a choice point into the shared or-tree (base price;
    /// copied state adds `heap_cell` per cell).
    pub publish_node: u64,
    /// Visiting one or-tree node while hunting for work.
    pub tree_visit: u64,
    /// Taking an alternative from a shared node (claim + bookkeeping).
    pub claim_alternative: u64,
    /// Reconstructing machine state from a published closure (base price;
    /// copied state adds `heap_cell` per cell).
    pub install_state: u64,
    /// Aborting an install whose head unification fails immediately: the
    /// branch dies before any machine state is set up, so the kill path is
    /// much cheaper than a completed `install_state`.
    pub install_abort: u64,
    /// Freezing a deferred closure into an immutable arena snapshot on
    /// first remote demand (base price; the structural copy adds
    /// `heap_cell` per cell). Paid at most once per published node.
    pub closure_freeze: u64,
    /// Thawing a frozen closure arena into a claimant's heap. The splice
    /// is a block copy plus pointer relocation — bandwidth-bound, not a
    /// per-cell structural walk — so the price is flat in closure size.
    pub closure_thaw: u64,

    // -- memoization ---------------------------------------------------------
    /// One answer-table consultation (key canonicalization + sharded
    /// lookup); thawed answer cells add `heap_cell` each on a hit.
    pub memo_lookup: u64,
    /// Publishing one complete answer set into the table (freeze + insert).
    pub memo_store: u64,

    // -- scheduling / synchronization ---------------------------------------
    /// Pushing or popping the shared work pool.
    pub queue_op: u64,
    /// Stealing a task from another worker.
    pub steal: u64,
    /// One idle probe (busy-wait iteration) while looking for work.
    pub idle_probe: u64,
    /// Acquiring a contended lock (uncontended costs are folded into the
    /// operation prices above).
    pub lock: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            call_dispatch: 3,
            unify_step: 1,
            heap_cell: 1,
            trail_undo: 1,
            index_lookup: 2,
            index_scan: 1,
            instr: 1,
            builtin: 3,
            arith_op: 1,

            choice_point_alloc: 18,
            choice_point_retry: 6,
            lao_check: 2,
            lao_reuse: 6,

            parcall_frame_alloc: 40,
            parcall_slot: 8,
            lpco_check: 2,
            lpco_merge_slot: 4,
            marker_alloc: 30,
            spo_track: 2,
            pdo_check: 2,
            frame_traverse: 48,
            slot_join: 6,

            publish_node: 35,
            tree_visit: 8,
            claim_alternative: 10,
            install_state: 20,
            install_abort: 5,
            closure_freeze: 12,
            closure_thaw: 6,

            memo_lookup: 8,
            memo_store: 12,

            queue_op: 6,
            steal: 30,
            idle_probe: 12,
            lock: 5,
        }
    }
}

impl CostModel {
    /// A model where every operation costs one unit — useful for pure
    /// operation-count comparisons in tests.
    pub fn unit() -> Self {
        CostModel {
            call_dispatch: 1,
            unify_step: 1,
            heap_cell: 1,
            trail_undo: 1,
            index_lookup: 1,
            index_scan: 1,
            instr: 1,
            builtin: 1,
            arith_op: 1,
            choice_point_alloc: 1,
            choice_point_retry: 1,
            lao_check: 1,
            lao_reuse: 1,
            parcall_frame_alloc: 1,
            parcall_slot: 1,
            lpco_check: 1,
            lpco_merge_slot: 1,
            marker_alloc: 1,
            spo_track: 1,
            pdo_check: 1,
            frame_traverse: 1,
            slot_join: 1,
            publish_node: 1,
            tree_visit: 1,
            claim_alternative: 1,
            install_state: 1,
            install_abort: 1,
            closure_freeze: 1,
            closure_thaw: 1,
            memo_lookup: 1,
            memo_store: 1,
            queue_op: 1,
            steal: 1,
            idle_probe: 1,
            lock: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reflect_paper_magnitudes() {
        let m = CostModel::default();
        // markers and frames dominate elementary steps
        assert!(m.marker_alloc > 10 * m.unify_step);
        assert!(m.parcall_frame_alloc > m.choice_point_alloc);
        // procrastination bookkeeping is much cheaper than the marker it
        // replaces — otherwise SPO could not pay off
        assert!(m.spo_track * 10 <= m.marker_alloc);
        // LPCO's runtime check is "limited to very simple runtime checks"
        assert!(m.lpco_check <= 4);
        // a branch killed at head unification never pays full state setup
        assert!(m.install_abort < m.install_state);
        // thawing a frozen arena is a flat block splice, cheaper than the
        // full install bookkeeping around it, and freezing undercuts the
        // publish base price — procrastination must not invert the curve
        assert!(m.closure_thaw < m.install_state);
        assert!(m.closure_freeze < m.publish_node);
        // a memo hit must undercut even one choice point of re-execution,
        // or the table could never pay off
        assert!(m.memo_lookup < m.choice_point_alloc);
        assert!(m.memo_store < m.parcall_frame_alloc);
        // compiled instructions are elementary work, priced like unify
        // steps; bucket dispatch must not cost more than a few scanned
        // clauses or switch-on-term could not pay off
        assert!(m.instr <= m.unify_step);
        assert!(m.index_lookup <= 4 * m.index_scan);
    }

    #[test]
    fn unit_model_is_all_ones() {
        let m = CostModel::unit();
        assert_eq!(m.marker_alloc, 1);
        assert_eq!(m.steal, 1);
    }

    #[test]
    fn debug_formatting_names_fields() {
        let m = CostModel::default();
        let d = format!("{m:?}");
        assert!(d.contains("marker_alloc"));
        assert!(d.contains("tree_visit"));
    }
}
