//! A tiny non-cryptographic hasher for the engine's hot-path tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds
//! per lookup — measurable when every `call_user` resolves a predicate and
//! a switch-on-term bucket. The keys hashed here (interned symbol ids,
//! arities, small integers) are engine-internal and never
//! attacker-controlled, so the classic Fx multiply-mix (the compiler's own
//! workhorse hasher) is the right trade: one rotate + xor + multiply per
//! word.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher(u64);

/// `HashMap`/`HashSet` build-hasher plugging [`FxHasher`] in.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by engine-internal values (symbols, arities, index
/// keys) using the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` over engine-internal values using the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let h = |k: (u32, u32)| {
            let mut s = FxHasher::default();
            s.write_u32(k.0);
            s.write_u32(k.1);
            s.finish()
        };
        assert_ne!(h((1, 2)), h((2, 1)));
        assert_ne!(h((0, 0)), h((0, 1)));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<(u32, u32), &str> = FxHashMap::default();
        m.insert((7, 2), "member/2");
        m.insert((7, 3), "member/3");
        assert_eq!(m.get(&(7, 2)), Some(&"member/2"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_tail_is_hashed() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh-tail");
        let mut b = FxHasher::default();
        b.write(b"abcdefgh-tali");
        assert_ne!(a.finish(), b.finish());
    }
}
