//! Term writer: renders heap terms back to (re-readable) Prolog text.
//!
//! Operator terms are written infix with minimal parenthesisation based on
//! the same operator table the reader uses, so `parse ∘ write` is the
//! identity on term structure (verified by property tests).

use std::fmt::Write as _;

use crate::heap::{Cell, Heap};
use crate::term::{view, TermView};

/// Render `t` to a string.
pub fn term_to_string(heap: &Heap, t: Cell) -> String {
    let mut out = String::new();
    write_term(&mut out, heap, t, 1200);
    out
}

/// Render `t` with a priority bound (terms of higher priority get parens).
fn write_term(out: &mut String, heap: &Heap, t: Cell, max_prec: u16) {
    match view(heap, t) {
        TermView::Var(a) => {
            let _ = write!(out, "_G{}", a.0);
        }
        TermView::Int(i) => {
            let _ = write!(out, "{i}");
        }
        TermView::Nil => out.push_str("[]"),
        TermView::Atom(s) => write_atom(out, &s.name()),
        TermView::List(_) => write_list(out, heap, t),
        TermView::Struct(f, n, hdr) => {
            let name = f.name();
            if n == 2 {
                if let Some((prec, lmax, rmax)) = infix_prec(&name) {
                    let parens = prec > max_prec;
                    if parens {
                        out.push('(');
                    }
                    write_term(out, heap, heap.str_arg(hdr, 0), lmax);
                    let mut right = String::new();
                    write_term(&mut right, heap, heap.str_arg(hdr, 1), rmax);
                    if name == "," {
                        out.push(',');
                    } else if name.bytes().all(|b| b.is_ascii_alphanumeric()) {
                        // alphabetic operators (is, mod, rem) need spacing
                        let _ = write!(out, " {name} ");
                    } else {
                        // symbolic: insert spaces only where tokens would
                        // otherwise merge (e.g. `1- -2`, `a= =b`)
                        if out.ends_with(|c: char| is_symbolic(c)) {
                            out.push(' ');
                        }
                        let _ = write!(out, "{name}");
                        if right.starts_with(|c: char| is_symbolic(c)) {
                            out.push(' ');
                        }
                    }
                    out.push_str(&right);
                    if parens {
                        out.push(')');
                    }
                    return;
                }
            }
            if n == 1 {
                if let Some((prec, amax)) = prefix_prec(&name) {
                    let parens = prec > max_prec;
                    if parens {
                        out.push('(');
                    }
                    let _ = write!(out, "{name} ");
                    write_term(out, heap, heap.str_arg(hdr, 0), amax);
                    if parens {
                        out.push(')');
                    }
                    return;
                }
            }
            write_atom(out, &name);
            out.push('(');
            for i in 0..n {
                if i > 0 {
                    out.push(',');
                }
                write_term(out, heap, heap.str_arg(hdr, i), 999);
            }
            out.push(')');
        }
    }
}

fn write_list(out: &mut String, heap: &Heap, t: Cell) {
    out.push('[');
    let mut cur = t;
    let mut first = true;
    loop {
        match view(heap, cur) {
            TermView::List(p) => {
                if !first {
                    out.push(',');
                }
                first = false;
                write_term(out, heap, heap.lst_head(p), 999);
                cur = heap.lst_tail(p);
            }
            TermView::Nil => break,
            _ => {
                out.push('|');
                write_term(out, heap, cur, 999);
                break;
            }
        }
    }
    out.push(']');
}

/// (priority, left-arg max, right-arg max) for infix operators the reader
/// knows; mirrors `read::infix_op`.
fn infix_prec(name: &str) -> Option<(u16, u16, u16)> {
    Some(match name {
        ":-" | "-->" => (1200, 1199, 1199),
        ";" => (1100, 1099, 1100),
        "->" => (1050, 1049, 1050),
        "&" => (1025, 1024, 1025),
        "," => (1000, 999, 1000),
        "=" | "\\=" | "==" | "\\==" | "is" | "=:=" | "=\\=" | "<" | ">" | "=<" | ">=" | "@<"
        | "@>" | "@=<" | "@>=" | "=.." => (700, 699, 699),
        "+" | "-" => (500, 500, 499),
        "*" | "/" | "//" | "mod" | "rem" | ">>" | "<<" => (400, 400, 399),
        "**" => (200, 199, 199),
        "^" => (200, 199, 200),
        _ => return None,
    })
}

fn prefix_prec(name: &str) -> Option<(u16, u16)> {
    Some(match name {
        ":-" | "?-" => (1200, 1199),
        "\\+" => (900, 900),
        "\\" => (200, 200),
        _ => return None,
    })
}

fn is_symbolic(c: char) -> bool {
    "+-*/\\^<>=~:.?@#&$".contains(c)
}

fn write_atom(out: &mut String, name: &str) {
    if needs_quotes(name) {
        out.push('\'');
        for ch in name.chars() {
            if ch == '\'' {
                out.push_str("''");
            } else {
                out.push(ch);
            }
        }
        out.push('\'');
    } else {
        out.push_str(name);
    }
}

fn needs_quotes(name: &str) -> bool {
    if name.is_empty() {
        return true;
    }
    let bytes = name.as_bytes();
    // plain atom: lowercase alnum run
    if bytes[0].is_ascii_lowercase()
        && bytes
            .iter()
            .all(|b| b.is_ascii_alphanumeric() || *b == b'_')
    {
        return false;
    }
    // symbolic atom
    const SYMBOLIC: &[u8] = b"+-*/\\^<>=~:.?@#&$";
    if bytes.iter().all(|b| SYMBOLIC.contains(b)) {
        return false;
    }
    // solo atoms
    if matches!(name, "!" | ";" | "[]" | "{}") {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::parse_term;

    fn rt(src: &str) -> String {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, src).unwrap();
        term_to_string(&h, t)
    }

    #[test]
    fn atoms() {
        assert_eq!(rt("foo"), "foo");
        assert_eq!(rt("'hello world'"), "'hello world'");
        assert_eq!(rt("[]"), "[]");
        assert_eq!(rt("'it''s'"), "'it''s'");
    }

    #[test]
    fn operators_minimal_parens() {
        assert_eq!(rt("1+2*3"), "1+2*3");
        assert_eq!(rt("(1+2)*3"), "(1+2)*3");
        assert_eq!(rt("1-2-3"), "1-2-3");
        assert_eq!(rt("1-(2-3)"), "1-(2-3)");
    }

    #[test]
    fn clause_shape() {
        assert_eq!(rt("p(X) :- q(X), r(X)"), "p(_G0):-q(_G0),r(_G0)");
    }

    #[test]
    fn parallel_conj() {
        assert_eq!(rt("a & b & c"), "a&b&c");
        assert_eq!(rt("(a, b) & c"), "a,b&c");
    }

    #[test]
    fn lists_with_tails() {
        assert_eq!(rt("[1,2|T]"), "[1,2|_G0]");
        assert_eq!(rt("[1,2,3]"), "[1,2,3]");
    }

    #[test]
    fn reparse_identity() {
        for src in [
            "f(a,g(B,1),[])",
            "p(X):-q(X),r(X)",
            "a&b&c",
            "1+2*3",
            "(1+2)*3",
            "[1,[2,x],'q w'|T]",
            "\\+ p(X)",
            "X is Y mod 3",
        ] {
            let s1 = rt(src);
            let mut h = Heap::new();
            let (t2, _) = parse_term(&mut h, &s1).unwrap();
            let s2 = term_to_string(&h, t2);
            assert_eq!(s1, s2, "unstable roundtrip for {src}");
        }
    }
}
