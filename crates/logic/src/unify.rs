//! Iterative unification over a single heap.
//!
//! Bindings are trailed in the heap, so a failed (or later abandoned)
//! unification is undone by `heap.undo_to(mark)` — the caller owns the
//! mark. [`unify`] reports the number of elementary unification steps
//! performed so engines can charge it to the virtual cost model.

use crate::heap::{Cell, Heap};
use crate::term::view;

/// Result of a unification attempt: `Some(steps)` on success (number of
/// elementary steps performed, for cost accounting), `None` on failure.
/// On failure the caller must undo the trail to its pre-call mark — partial
/// bindings are left in place so the caller's choice point logic stays the
/// single restoration point (exactly as in a WAM).
pub fn unify(heap: &mut Heap, a: Cell, b: Cell) -> Option<usize> {
    let mut steps = 0usize;
    let mut stack: Vec<(Cell, Cell)> = vec![(a, b)];

    while let Some((a, b)) = stack.pop() {
        steps += 1;
        let da = heap.deref(a);
        let db = heap.deref(b);
        if da == db {
            continue;
        }
        match (da, db) {
            (Cell::Ref(x), Cell::Ref(y)) => heap.bind_vars(x, y),
            (Cell::Ref(x), t) | (t, Cell::Ref(x)) => heap.bind(x, t),
            (Cell::Atom(f), Cell::Atom(g)) => {
                if f != g {
                    return None;
                }
            }
            (Cell::Int(i), Cell::Int(j)) => {
                if i != j {
                    return None;
                }
            }
            (Cell::Nil, Cell::Nil) => {}
            (Cell::Lst(p), Cell::Lst(q)) => {
                stack.push((heap.lst_tail(p), heap.lst_tail(q)));
                stack.push((heap.lst_head(p), heap.lst_head(q)));
            }
            (Cell::Str(p), Cell::Str(q)) => {
                let (f, n) = heap.functor_at(p);
                let (g, m) = heap.functor_at(q);
                if f != g || n != m {
                    return None;
                }
                for i in (0..n).rev() {
                    stack.push((heap.str_arg(p, i), heap.str_arg(q, i)));
                }
            }
            _ => return None,
        }
    }
    Some(steps)
}

/// Unification with the occurs check (used by property tests and available
/// as a library feature; the engines use plain [`unify`], as real Prolog
/// systems do).
pub fn unify_oc(heap: &mut Heap, a: Cell, b: Cell) -> Option<usize> {
    let mut steps = 0usize;
    let mut stack: Vec<(Cell, Cell)> = vec![(a, b)];

    while let Some((a, b)) = stack.pop() {
        steps += 1;
        let da = heap.deref(a);
        let db = heap.deref(b);
        if da == db {
            continue;
        }
        match (da, db) {
            (Cell::Ref(x), Cell::Ref(y)) => heap.bind_vars(x, y),
            (Cell::Ref(x), t) | (t, Cell::Ref(x)) => {
                if occurs(heap, x, t) {
                    return None;
                }
                heap.bind(x, t);
            }
            (Cell::Atom(f), Cell::Atom(g)) if f == g => {}
            (Cell::Int(i), Cell::Int(j)) if i == j => {}
            (Cell::Nil, Cell::Nil) => {}
            (Cell::Lst(p), Cell::Lst(q)) => {
                stack.push((heap.lst_tail(p), heap.lst_tail(q)));
                stack.push((heap.lst_head(p), heap.lst_head(q)));
            }
            (Cell::Str(p), Cell::Str(q)) => {
                let (f, n) = heap.functor_at(p);
                let (g, m) = heap.functor_at(q);
                if f != g || n != m {
                    return None;
                }
                for i in (0..n).rev() {
                    stack.push((heap.str_arg(p, i), heap.str_arg(q, i)));
                }
            }
            _ => return None,
        }
    }
    Some(steps)
}

fn occurs(heap: &Heap, var: crate::heap::Addr, t: Cell) -> bool {
    let mut stack = vec![t];
    while let Some(c) = stack.pop() {
        match view(heap, c) {
            crate::term::TermView::Var(a) if a == var => return true,
            crate::term::TermView::Var(_) => {}
            crate::term::TermView::Struct(_, n, hdr) => {
                for i in 0..n {
                    stack.push(heap.str_arg(hdr, i));
                }
            }
            crate::term::TermView::List(p) => {
                stack.push(heap.lst_head(p));
                stack.push(heap.lst_tail(p));
            }
            _ => {}
        }
    }
    false
}

/// Structural equality without binding (`==`/2).
pub fn struct_eq(heap: &Heap, a: Cell, b: Cell) -> bool {
    let mut stack = vec![(a, b)];
    while let Some((a, b)) = stack.pop() {
        let da = heap.deref(a);
        let db = heap.deref(b);
        if da == db {
            continue;
        }
        match (da, db) {
            (Cell::Lst(p), Cell::Lst(q)) => {
                stack.push((heap.lst_tail(p), heap.lst_tail(q)));
                stack.push((heap.lst_head(p), heap.lst_head(q)));
            }
            (Cell::Str(p), Cell::Str(q)) => {
                let (f, n) = heap.functor_at(p);
                let (g, m) = heap.functor_at(q);
                if f != g || n != m {
                    return false;
                }
                for i in (0..n).rev() {
                    stack.push((heap.str_arg(p, i), heap.str_arg(q, i)));
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;

    fn mk(h: &mut Heap) -> (Cell, Cell) {
        let x = h.new_var();
        let y = h.new_var();
        (x, y)
    }

    #[test]
    fn unify_var_with_const() {
        let mut h = Heap::new();
        let (x, _) = mk(&mut h);
        assert!(unify(&mut h, x, Cell::Int(3)).is_some());
        assert_eq!(h.deref(x), Cell::Int(3));
    }

    #[test]
    fn unify_structures() {
        let mut h = Heap::new();
        let x = h.new_var();
        let s1 = h.new_struct(sym("f"), &[x, Cell::Int(2)]);
        let s2 = h.new_struct(sym("f"), &[Cell::Int(1), Cell::Int(2)]);
        assert!(unify(&mut h, s1, s2).is_some());
        assert_eq!(h.deref(x), Cell::Int(1));
    }

    #[test]
    fn unify_fails_on_clash() {
        let mut h = Heap::new();
        let mark = h.trail_mark();
        let x = h.new_var();
        let s1 = h.new_struct(sym("f"), &[x, Cell::Int(2)]);
        let s2 = h.new_struct(sym("f"), &[Cell::Int(1), Cell::Int(3)]);
        assert!(unify(&mut h, s1, s2).is_none());
        h.undo_to(mark);
        assert!(h.is_unbound(h.deref(x)));
    }

    #[test]
    fn unify_arity_mismatch_fails() {
        let mut h = Heap::new();
        let s1 = h.new_struct(sym("f"), &[Cell::Int(1)]);
        let s2 = h.new_struct(sym("f"), &[Cell::Int(1), Cell::Int(2)]);
        assert!(unify(&mut h, s1, s2).is_none());
    }

    #[test]
    fn unify_lists() {
        let mut h = Heap::new();
        let x = h.new_var();
        let t = h.new_var();
        let l1 = h.cons(x, t);
        let l2 = h.list(&[Cell::Int(1), Cell::Int(2)]);
        assert!(unify(&mut h, l1, l2).is_some());
        assert_eq!(h.deref(x), Cell::Int(1));
        let items = crate::term::proper_list(&h, t).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(h.deref(items[0]), Cell::Int(2));
    }

    #[test]
    fn var_var_then_bind_propagates() {
        let mut h = Heap::new();
        let (x, y) = mk(&mut h);
        assert!(unify(&mut h, x, y).is_some());
        assert!(unify(&mut h, y, Cell::Atom(sym("q"))).is_some());
        assert_eq!(h.deref(x), Cell::Atom(sym("q")));
    }

    #[test]
    fn occurs_check_rejects_cyclic() {
        let mut h = Heap::new();
        let x = h.new_var();
        let s = h.new_struct(sym("f"), &[x]);
        assert!(unify_oc(&mut h, x, s).is_none());
        // plain unify happily creates the cycle (like real Prologs)
        let mut h2 = Heap::new();
        let x2 = h2.new_var();
        let s2 = h2.new_struct(sym("f"), &[x2]);
        assert!(unify(&mut h2, x2, s2).is_some());
    }

    #[test]
    fn struct_eq_no_binding() {
        let mut h = Heap::new();
        let x = h.new_var();
        let s1 = h.new_struct(sym("f"), &[x]);
        let s2 = h.new_struct(sym("f"), &[Cell::Int(1)]);
        assert!(!struct_eq(&h, s1, s2));
        assert!(h.is_unbound(h.deref(x)));
        assert!(struct_eq(&h, s1, s1));
    }

    #[test]
    fn unify_is_symmetric_on_failure_cases() {
        let mut h = Heap::new();
        let s1 = h.new_struct(sym("f"), &[Cell::Int(1)]);
        assert!(unify(&mut h, s1, Cell::Nil).is_none());
        assert!(unify(&mut h, Cell::Nil, s1).is_none());
        assert!(unify(&mut h, Cell::Atom(sym("a")), Cell::Int(1)).is_none());
    }
}
