//! # ace-logic — logic-programming substrate
//!
//! The term, unification and program representation layer underneath the
//! ACE-style parallel engines in this workspace. It is a self-contained,
//! dependency-free reconstruction of the parts of a WAM-like Prolog runtime
//! that the IPPS'97 optimization schemas act upon:
//!
//! * a **flat cell heap** ([`heap::Heap`]) with dereferencing, binding and a
//!   **trail** supporting exact state restoration on backtracking — the
//!   substrate nondeterministic systems need to "restore the computation to
//!   every point where a choice was made" (paper §2);
//! * **iterative unification** ([`unify`]) with optional occurs check;
//! * **term copying** ([`copy`]) between independent heaps — the basis of
//!   goal shipping for independent and-parallelism and of MUSE-style state
//!   copying for or-parallelism;
//! * a **reader** ([`read`]) for a practical Prolog subset including the
//!   `&` parallel-conjunction operator used by &ACE program annotations;
//! * a **writer** ([`mod@write`]) producing canonical or operator-aware text;
//! * a **clause database** ([`db`]) with first-argument indexing, storing
//!   clauses as relocatable cell arenas so that clause instantiation is a
//!   single block copy with address relocation.
//!
//! Everything here is engine-agnostic: the sequential machine
//! (`ace-machine`), the and-parallel engine (`ace-and`) and the or-parallel
//! engine (`ace-or`) are all built on these types.

pub mod canon;
pub mod code;
pub mod copy;
pub mod db;
pub mod fxhash;
pub mod heap;
pub mod read;
pub mod sym;
pub mod term;
pub mod unify;
pub mod write;

pub use canon::{CanonKey, TermArena};
pub use code::{
    run_head, BodyStep, CompiledBody, CompiledCode, ExecCost, Instr, StepKind, StepTemplate,
};
pub use db::{Clause, Database, IndexKey, Predicate};
pub use heap::{Addr, Cell, Heap, TrailMark};
pub use read::{parse_program, parse_term, ReadError};
pub use sym::{sym, sym_name, Sym};
pub use term::TermView;
