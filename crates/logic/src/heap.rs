//! Flat cell heap with binding trail.
//!
//! Terms are stored WAM-style in one growable array of [`Cell`]s. A *term*
//! is denoted by a cell **value** (not an address): immediates (`Atom`,
//! `Int`, `Nil`) carry their payload, while `Ref`, `Str` and `Lst` carry an
//! address into the heap. Structures occupy a `Functor` header cell followed
//! by `arity` argument cells; list pairs occupy two adjacent cells.
//!
//! Backtracking support follows the classic two-part discipline the paper's
//! machinery depends on:
//!
//! * the **trail** records every variable binding so it can be undone
//!   ([`Heap::undo_to`]);
//! * the heap only grows during forward execution, so restoring a choice
//!   point truncates it back to the recorded high-water mark
//!   ([`Heap::truncate_to`]).
//!
//! [`Heap::unwind_section`]/[`Heap::rewind_section`] additionally allow a
//! *temporary* detour to an earlier trail state without losing the current
//! bindings — the primitive used by the or-parallel engine to copy the state
//! of an interior choice point out of a running computation (MUSE-style
//! state copying).

use crate::sym::Sym;

/// Index of a cell in a [`Heap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Addr(pub u32);

impl Addr {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub fn offset(self, by: u32) -> Addr {
        Addr(self.0 + by)
    }
}

/// One heap cell. See the module docs for the term encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cell {
    /// A variable. Unbound iff the cell at the carried address is a `Ref`
    /// to itself; otherwise the carried address holds the binding.
    Ref(Addr),
    /// An atom (interned constant).
    Atom(Sym),
    /// A machine integer.
    Int(i64),
    /// A structure; the address points at its `Functor` header cell.
    Str(Addr),
    /// Structure header: functor name and arity. Argument cells follow
    /// contiguously. Never a term value on its own.
    Functor(Sym, u32),
    /// A list pair; the address points at two adjacent cells (head, tail).
    Lst(Addr),
    /// The empty list `[]`.
    Nil,
}

impl Cell {
    /// Does this cell carry a heap address that must be relocated when the
    /// containing region is block-copied to a different base offset?
    #[inline]
    pub fn relocatable(self) -> bool {
        matches!(self, Cell::Ref(_) | Cell::Str(_) | Cell::Lst(_))
    }

    /// Relocate the carried address (if any) by `base`.
    #[inline]
    pub fn relocated(self, base: u32) -> Cell {
        match self {
            Cell::Ref(a) => Cell::Ref(Addr(a.0 + base)),
            Cell::Str(a) => Cell::Str(Addr(a.0 + base)),
            Cell::Lst(a) => Cell::Lst(Addr(a.0 + base)),
            other => other,
        }
    }
}

/// Opaque trail position used to undo bindings back to a choice point.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct TrailMark(pub usize);

/// Heap high-water mark (cell count) used to truncate on backtracking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct HeapMark(pub usize);

/// A growable term heap plus its binding trail.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    cells: Vec<Cell>,
    trail: Vec<Addr>,
}

impl Heap {
    pub fn new() -> Self {
        Heap {
            cells: Vec::with_capacity(1024),
            trail: Vec::with_capacity(256),
        }
    }

    pub fn with_capacity(cells: usize) -> Self {
        Heap {
            cells: Vec::with_capacity(cells),
            trail: Vec::with_capacity(cells / 4 + 16),
        }
    }

    /// Number of live cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Raw cell read.
    #[inline]
    pub fn cell(&self, a: Addr) -> Cell {
        self.cells[a.idx()]
    }

    /// Raw cell slice access (used by block copy / relocation).
    #[inline]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Push a raw cell, returning its address. Low-level; prefer the typed
    /// constructors below.
    #[inline]
    pub fn push(&mut self, c: Cell) -> Addr {
        let a = Addr(self.cells.len() as u32);
        self.cells.push(c);
        a
    }

    /// Overwrite a cell without trailing. Only for heap-construction
    /// protocols that reserve placeholder slots (term copying, relocation);
    /// never for variable binding — use [`Heap::bind`] for that.
    #[inline]
    pub fn set_raw(&mut self, a: Addr, c: Cell) {
        self.cells[a.idx()] = c;
    }

    // ------------------------------------------------------------------
    // Term constructors
    // ------------------------------------------------------------------

    /// Allocate a fresh unbound variable and return a reference to it.
    #[inline]
    pub fn new_var(&mut self) -> Cell {
        let a = Addr(self.cells.len() as u32);
        self.cells.push(Cell::Ref(a));
        Cell::Ref(a)
    }

    /// Build the structure `f(args...)`. With zero args this still builds a
    /// structure (use [`Cell::Atom`] directly for atoms).
    pub fn new_struct(&mut self, f: Sym, args: &[Cell]) -> Cell {
        let hdr = self.push(Cell::Functor(f, args.len() as u32));
        for &arg in args {
            self.cells.push(arg);
        }
        Cell::Str(hdr)
    }

    /// Build the list pair `[head | tail]`.
    pub fn cons(&mut self, head: Cell, tail: Cell) -> Cell {
        let a = self.push(head);
        self.cells.push(tail);
        Cell::Lst(a)
    }

    /// Build a proper list from `items`.
    pub fn list(&mut self, items: &[Cell]) -> Cell {
        let mut tail = Cell::Nil;
        for &item in items.iter().rev() {
            tail = self.cons(item, tail);
        }
        tail
    }

    // ------------------------------------------------------------------
    // Dereferencing and binding
    // ------------------------------------------------------------------

    /// Follow `Ref` chains until reaching an unbound variable (returned as
    /// `Ref(a)` where the cell at `a` is a self-reference) or a non-`Ref`
    /// value cell.
    #[inline]
    pub fn deref(&self, mut c: Cell) -> Cell {
        loop {
            match c {
                Cell::Ref(a) => {
                    let inner = self.cells[a.idx()];
                    if inner == Cell::Ref(a) {
                        return c; // unbound
                    }
                    c = inner;
                }
                other => return other,
            }
        }
    }

    /// Is `c` (already dereferenced) an unbound variable?
    #[inline]
    pub fn is_unbound(&self, c: Cell) -> bool {
        matches!(c, Cell::Ref(a) if self.cells[a.idx()] == Cell::Ref(a))
    }

    /// Bind the unbound variable at `a` to `value`, recording the binding on
    /// the trail. Debug-asserts that `a` is currently unbound.
    #[inline]
    pub fn bind(&mut self, a: Addr, value: Cell) {
        debug_assert_eq!(
            self.cells[a.idx()],
            Cell::Ref(a),
            "bind target must be an unbound variable"
        );
        self.cells[a.idx()] = value;
        self.trail.push(a);
    }

    /// Bind two unbound variables together, choosing the direction that
    /// keeps references pointing from younger to older cells (so heap
    /// truncation can never orphan a binding).
    #[inline]
    pub fn bind_vars(&mut self, a: Addr, b: Addr) {
        if a.0 < b.0 {
            self.bind(b, Cell::Ref(a));
        } else if b.0 < a.0 {
            self.bind(a, Cell::Ref(b));
        }
        // a == b: already the same variable; nothing to do.
    }

    // ------------------------------------------------------------------
    // Trail & backtracking
    // ------------------------------------------------------------------

    /// Current trail position.
    #[inline]
    pub fn trail_mark(&self) -> TrailMark {
        TrailMark(self.trail.len())
    }

    /// Current heap high-water mark.
    #[inline]
    pub fn heap_mark(&self) -> HeapMark {
        HeapMark(self.cells.len())
    }

    /// Number of trail entries (diagnostics / cost accounting).
    #[inline]
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Undo all bindings made since `mark`, returning how many were undone.
    pub fn undo_to(&mut self, mark: TrailMark) -> usize {
        let n = self.trail.len() - mark.0;
        for i in (mark.0..self.trail.len()).rev() {
            let a = self.trail[i];
            self.cells[a.idx()] = Cell::Ref(a);
        }
        self.trail.truncate(mark.0);
        n
    }

    /// Truncate the heap to `mark`. Callers must first [`Heap::undo_to`] the
    /// matching trail mark so no surviving cell references the dead region.
    pub fn truncate_to(&mut self, mark: HeapMark) {
        debug_assert!(mark.0 <= self.cells.len());
        self.cells.truncate(mark.0);
    }

    /// Undo the bindings in `(mark, now]` **while remembering them**, so
    /// they can be exactly restored by [`Heap::rewind_section`]. The heap is
    /// left looking as it did (binding-wise) at `mark`; the cells themselves
    /// are all still present.
    ///
    /// This is the state-copying primitive for or-parallelism: to hand an
    /// untried alternative of an interior choice point to another worker we
    /// must read the goal and continuation *as they were at that choice
    /// point*, without destroying the current (younger) bindings.
    pub fn unwind_section(&mut self, mark: TrailMark) -> UnwoundSection {
        let mut saved = Vec::with_capacity(self.trail.len() - mark.0);
        for i in (mark.0..self.trail.len()).rev() {
            let a = self.trail[i];
            saved.push((a, self.cells[a.idx()]));
            self.cells[a.idx()] = Cell::Ref(a);
        }
        UnwoundSection { mark, saved }
    }

    /// Restore the bindings captured by [`Heap::unwind_section`]. Must be
    /// called with the section produced by the matching `unwind_section`
    /// while no other binding activity happened in between.
    pub fn rewind_section(&mut self, section: UnwoundSection) {
        debug_assert_eq!(section.mark.0 + section.saved.len(), self.trail.len());
        for &(a, cell) in section.saved.iter().rev() {
            self.cells[a.idx()] = cell;
        }
    }

    /// The trail addresses recorded in `(mark, now]`, oldest first.
    /// Used by the shallow-parallelism optimization, which must remember a
    /// deterministic subgoal's *trail section* instead of its markers.
    pub fn trail_section(&self, mark: TrailMark) -> &[Addr] {
        &self.trail[mark.0..]
    }

    /// Reset the heap to empty (machine pooling).
    pub fn clear(&mut self) {
        self.cells.clear();
        self.trail.clear();
    }

    // ------------------------------------------------------------------
    // Structure access helpers
    // ------------------------------------------------------------------

    /// Functor name and arity of the structure whose header is at `hdr`.
    #[inline]
    pub fn functor_at(&self, hdr: Addr) -> (Sym, u32) {
        match self.cells[hdr.idx()] {
            Cell::Functor(f, n) => (f, n),
            other => panic!("functor_at: not a Functor header: {other:?}"),
        }
    }

    /// The `i`-th (0-based) argument cell of the structure at `hdr`.
    #[inline]
    pub fn str_arg(&self, hdr: Addr, i: u32) -> Cell {
        self.cells[hdr.idx() + 1 + i as usize]
    }

    /// Head cell of the list pair at `pair`.
    #[inline]
    pub fn lst_head(&self, pair: Addr) -> Cell {
        self.cells[pair.idx()]
    }

    /// Tail cell of the list pair at `pair`.
    #[inline]
    pub fn lst_tail(&self, pair: Addr) -> Cell {
        self.cells[pair.idx() + 1]
    }
}

/// Saved bindings from [`Heap::unwind_section`], consumed by
/// [`Heap::rewind_section`].
#[derive(Debug)]
pub struct UnwoundSection {
    mark: TrailMark,
    /// `(addr, value-it-had)` pairs in undo order (youngest first).
    saved: Vec<(Addr, Cell)>,
}

impl UnwoundSection {
    /// Number of bindings temporarily undone.
    pub fn len(&self) -> usize {
        self.saved.len()
    }

    pub fn is_empty(&self) -> bool {
        self.saved.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;

    #[test]
    fn fresh_var_is_unbound() {
        let mut h = Heap::new();
        let v = h.new_var();
        assert!(h.is_unbound(h.deref(v)));
    }

    #[test]
    fn bind_and_deref() {
        let mut h = Heap::new();
        let v = h.new_var();
        let Cell::Ref(a) = v else { unreachable!() };
        h.bind(a, Cell::Int(42));
        assert_eq!(h.deref(v), Cell::Int(42));
    }

    #[test]
    fn deref_follows_chains() {
        let mut h = Heap::new();
        let v1 = h.new_var();
        let v2 = h.new_var();
        let Cell::Ref(a1) = v1 else { unreachable!() };
        let Cell::Ref(a2) = v2 else { unreachable!() };
        h.bind(a2, Cell::Ref(a1)); // v2 -> v1 (younger to older)
        assert!(h.is_unbound(h.deref(v2)));
        h.bind(a1, Cell::Atom(sym("x")));
        assert_eq!(h.deref(v2), Cell::Atom(sym("x")));
    }

    #[test]
    fn bind_vars_points_younger_to_older() {
        let mut h = Heap::new();
        let v1 = h.new_var();
        let v2 = h.new_var();
        let (Cell::Ref(a1), Cell::Ref(a2)) = (v1, v2) else {
            unreachable!()
        };
        h.bind_vars(a2, a1);
        assert_eq!(h.cell(a2), Cell::Ref(a1));
        assert_eq!(h.cell(a1), Cell::Ref(a1));
    }

    #[test]
    fn undo_restores_unbound_state() {
        let mut h = Heap::new();
        let v = h.new_var();
        let Cell::Ref(a) = v else { unreachable!() };
        let mark = h.trail_mark();
        h.bind(a, Cell::Int(7));
        assert_eq!(h.undo_to(mark), 1);
        assert!(h.is_unbound(h.deref(v)));
    }

    #[test]
    fn undo_then_truncate_roundtrip() {
        let mut h = Heap::new();
        let v = h.new_var();
        let Cell::Ref(a) = v else { unreachable!() };
        let tm = h.trail_mark();
        let hm = h.heap_mark();
        let s = h.new_struct(sym("f"), &[Cell::Int(1), Cell::Int(2)]);
        let Cell::Str(_) = s else { unreachable!() };
        h.bind(a, s);
        h.undo_to(tm);
        h.truncate_to(hm);
        assert_eq!(h.len(), 1);
        assert!(h.is_unbound(h.deref(v)));
    }

    #[test]
    fn struct_arg_access() {
        let mut h = Heap::new();
        let s = h.new_struct(sym("point"), &[Cell::Int(3), Cell::Int(4)]);
        let Cell::Str(hdr) = s else { unreachable!() };
        assert_eq!(h.functor_at(hdr), (sym("point"), 2));
        assert_eq!(h.str_arg(hdr, 0), Cell::Int(3));
        assert_eq!(h.str_arg(hdr, 1), Cell::Int(4));
    }

    #[test]
    fn list_construction() {
        let mut h = Heap::new();
        let l = h.list(&[Cell::Int(1), Cell::Int(2), Cell::Int(3)]);
        let Cell::Lst(p) = l else { unreachable!() };
        assert_eq!(h.lst_head(p), Cell::Int(1));
        let Cell::Lst(p2) = h.lst_tail(p) else {
            unreachable!()
        };
        assert_eq!(h.lst_head(p2), Cell::Int(2));
        let Cell::Lst(p3) = h.lst_tail(p2) else {
            unreachable!()
        };
        assert_eq!(h.lst_head(p3), Cell::Int(3));
        assert_eq!(h.lst_tail(p3), Cell::Nil);
    }

    #[test]
    fn empty_list_is_nil() {
        let mut h = Heap::new();
        assert_eq!(h.list(&[]), Cell::Nil);
    }

    #[test]
    fn unwind_rewind_preserves_current_bindings() {
        let mut h = Heap::new();
        let v1 = h.new_var();
        let v2 = h.new_var();
        let (Cell::Ref(a1), Cell::Ref(a2)) = (v1, v2) else {
            unreachable!()
        };
        h.bind(a1, Cell::Int(1));
        let mark = h.trail_mark();
        h.bind(a2, Cell::Int(2));

        let sect = h.unwind_section(mark);
        // At the mark, v1 was bound but v2 was not.
        assert_eq!(h.deref(v1), Cell::Int(1));
        assert!(h.is_unbound(h.deref(v2)));

        h.rewind_section(sect);
        assert_eq!(h.deref(v2), Cell::Int(2));
    }

    #[test]
    fn trail_section_reports_addresses() {
        let mut h = Heap::new();
        let v1 = h.new_var();
        let v2 = h.new_var();
        let (Cell::Ref(a1), Cell::Ref(a2)) = (v1, v2) else {
            unreachable!()
        };
        let mark = h.trail_mark();
        h.bind(a1, Cell::Int(1));
        h.bind(a2, Cell::Int(2));
        assert_eq!(h.trail_section(mark), &[a1, a2]);
    }

    #[test]
    fn relocation() {
        assert_eq!(Cell::Ref(Addr(3)).relocated(10), Cell::Ref(Addr(13)));
        assert_eq!(Cell::Str(Addr(0)).relocated(5), Cell::Str(Addr(5)));
        assert_eq!(Cell::Int(9).relocated(100), Cell::Int(9));
        assert!(!Cell::Nil.relocatable());
        assert!(Cell::Lst(Addr(1)).relocatable());
    }
}
