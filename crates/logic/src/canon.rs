//! Canonical call keys and relocatable answer arenas — the term-level
//! substrate of the answer-memoization subsystem (`ace-memo`).
//!
//! * [`CanonKey`] writes a *variant-normalized* byte encoding of a call
//!   term: variables are numbered in first-occurrence order, so two calls
//!   that differ only by a renaming of their variables produce
//!   byte-identical keys (and therefore hit the same table entry).
//!   Shared/cyclic subterms are encoded as back-references, which makes
//!   the writer terminate on rational trees and keeps the encoding
//!   injective up to variance.
//! * [`TermArena`] is a self-contained relocatable cell block holding one
//!   copied term — the storage format for memoized answers. Any worker
//!   can splice ("thaw") the arena into its own heap with a single block
//!   copy plus address relocation, exactly the mechanism clause
//!   instantiation already uses, without re-running the goal that
//!   produced it.

use std::collections::HashMap;

use crate::copy::copy_term;
use crate::heap::{Addr, Cell, Heap};

/// FNV-1a over the key bytes (no dependency, stable across runs of one
/// process — `Sym` ids are process-global interner indices).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A variant-normalized encoding of one call term, used as the lookup key
/// of the concurrent answer table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonKey {
    /// The canonical byte string (see the tag constants in `of`).
    pub bytes: Vec<u8>,
    /// FNV-1a hash of `bytes` (shard selection, trace correlation).
    pub hash: u64,
}

impl CanonKey {
    /// Canonicalize the term rooted at `root` in `heap`.
    ///
    /// Encoding, preorder: `V<id>` unbound variable (first-occurrence
    /// numbering), `A<sym>` atom, `I<i64>` integer, `S<sym><arity>` then
    /// the arguments, `L` then head and tail, `N` nil, `B<id>` a
    /// back-reference to the `id`-th compound already being (or done
    /// being) written. All integers little-endian.
    pub fn of(heap: &Heap, root: Cell) -> CanonKey {
        let mut bytes = Vec::with_capacity(64);
        let mut var_ids: HashMap<Addr, u32> = HashMap::new();
        // compound (Str header / Lst pair) address -> visit id
        let mut seen: HashMap<(bool, Addr), u32> = HashMap::new();
        let mut next_compound: u32 = 0;
        let mut stack = vec![root];
        while let Some(c) = stack.pop() {
            match heap.deref(c) {
                Cell::Ref(a) => {
                    let n = var_ids.len() as u32;
                    let id = *var_ids.entry(a).or_insert(n);
                    bytes.push(b'V');
                    bytes.extend_from_slice(&id.to_le_bytes());
                }
                Cell::Atom(s) => {
                    bytes.push(b'A');
                    bytes.extend_from_slice(&s.0.to_le_bytes());
                }
                Cell::Int(i) => {
                    bytes.push(b'I');
                    bytes.extend_from_slice(&i.to_le_bytes());
                }
                Cell::Str(hdr) => {
                    if let Some(&id) = seen.get(&(false, hdr)) {
                        bytes.push(b'B');
                        bytes.extend_from_slice(&id.to_le_bytes());
                        continue;
                    }
                    seen.insert((false, hdr), next_compound);
                    next_compound += 1;
                    let (f, n) = heap.functor_at(hdr);
                    bytes.push(b'S');
                    bytes.extend_from_slice(&f.0.to_le_bytes());
                    bytes.extend_from_slice(&n.to_le_bytes());
                    for i in (0..n).rev() {
                        stack.push(heap.str_arg(hdr, i));
                    }
                }
                Cell::Lst(a) => {
                    if let Some(&id) = seen.get(&(true, a)) {
                        bytes.push(b'B');
                        bytes.extend_from_slice(&id.to_le_bytes());
                        continue;
                    }
                    seen.insert((true, a), next_compound);
                    next_compound += 1;
                    bytes.push(b'L');
                    stack.push(heap.lst_tail(a));
                    stack.push(heap.lst_head(a));
                }
                Cell::Nil => bytes.push(b'N'),
                Cell::Functor(..) => unreachable!("Functor header is not a term"),
            }
        }
        let hash = fnv1a(&bytes);
        CanonKey { bytes, hash }
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// A self-contained relocatable cell block holding one term — the storage
/// format of memoized answers. Produced by [`TermArena::freeze`] (a
/// structure-sharing [`copy_term`] into a private heap) and consumed by
/// [`TermArena::thaw`] (block append with address relocation, as in clause
/// instantiation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermArena {
    cells: Vec<Cell>,
    root: Cell,
}

impl TermArena {
    /// Copy the term rooted at `root` out of `src` into a fresh arena.
    pub fn freeze(src: &Heap, root: Cell) -> TermArena {
        let mut scratch = Heap::new();
        let out = copy_term(src, root, &mut scratch);
        TermArena {
            cells: scratch.cells().to_vec(),
            root: out.root,
        }
    }

    /// Splice the arena into `dst`; returns the root cell (valid in
    /// `dst`) and the number of cells appended (cost accounting).
    pub fn thaw(&self, dst: &mut Heap) -> (Cell, usize) {
        let base = dst.len() as u32;
        for &c in &self.cells {
            dst.push(c.relocated(base));
        }
        (self.root.relocated(base), self.cells.len())
    }

    /// Cells occupied by the frozen term.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::parse_term;
    use crate::sym::sym;
    use crate::write::term_to_string;

    fn term(heap: &mut Heap, src: &str) -> Cell {
        parse_term(heap, src).unwrap().0
    }

    #[test]
    fn keys_are_variant_invariant() {
        let mut h1 = Heap::new();
        let t1 = term(&mut h1, "f(X, g(Y, X), [a, 1 | Z])");
        let mut h2 = Heap::new();
        let t2 = term(&mut h2, "f(Q, g(R, Q), [a, 1 | S])");
        assert_eq!(CanonKey::of(&h1, t1), CanonKey::of(&h2, t2));
    }

    #[test]
    fn keys_distinguish_variable_sharing() {
        let mut h1 = Heap::new();
        let t1 = term(&mut h1, "f(X, X)");
        let mut h2 = Heap::new();
        let t2 = term(&mut h2, "f(X, Y)");
        assert_ne!(CanonKey::of(&h1, t1), CanonKey::of(&h2, t2));
    }

    #[test]
    fn keys_distinguish_functor_atom_int_and_shape() {
        let mut h = Heap::new();
        let a = term(&mut h, "f(a)");
        let b = term(&mut h, "g(a)");
        let c = term(&mut h, "f(b)");
        let d = term(&mut h, "f(1)");
        let e = term(&mut h, "f(a, a)");
        let keys: Vec<CanonKey> = [a, b, c, d, e]
            .iter()
            .map(|&t| CanonKey::of(&h, t))
            .collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "terms {i} and {j} collided");
            }
        }
    }

    #[test]
    fn keys_follow_bindings() {
        // f(X) with X bound to 7 must key like f(7)
        let mut h = Heap::new();
        let x = h.new_var();
        let fx = h.new_struct(sym("f"), &[x]);
        let Cell::Ref(a) = x else { unreachable!() };
        h.bind(a, Cell::Int(7));
        let mut h2 = Heap::new();
        let f7 = term(&mut h2, "f(7)");
        assert_eq!(CanonKey::of(&h, fx), CanonKey::of(&h2, f7));
    }

    #[test]
    fn cyclic_terms_terminate_with_backrefs() {
        // X = f(X): canonicalization must terminate and be stable
        let mut h = Heap::new();
        let x = h.new_var();
        let fx = h.new_struct(sym("f"), &[x]);
        let Cell::Ref(a) = x else { unreachable!() };
        h.bind(a, fx);
        let k1 = CanonKey::of(&h, fx);
        let k2 = CanonKey::of(&h, fx);
        assert_eq!(k1, k2);
        assert!(k1.bytes.contains(&b'B'), "cycle must emit a back-reference");
    }

    #[test]
    fn arena_round_trips_structure() {
        let mut src = Heap::new();
        let t = term(&mut src, "answer(f(1, [a, B]), g(B))");
        let arena = TermArena::freeze(&src, t);
        let mut dst = Heap::new();
        // pre-existing cells force a nonzero relocation base
        dst.push(Cell::Int(99));
        let (thawed, appended) = arena.thaw(&mut dst);
        assert_eq!(appended, arena.len());
        // variable names are heap-address-derived, so compare canonically
        assert_eq!(CanonKey::of(&dst, thawed), CanonKey::of(&src, t));
        assert!(term_to_string(&dst, thawed).starts_with("answer("));
        // a second thaw is a variant of the first (fresh variables)
        let (again, _) = arena.thaw(&mut dst);
        assert_eq!(CanonKey::of(&dst, thawed), CanonKey::of(&dst, again));
    }

    #[test]
    fn thawed_arena_keys_like_the_original() {
        let mut src = Heap::new();
        let t = term(&mut src, "p(X, [1, X], q(Y))");
        let arena = TermArena::freeze(&src, t);
        let mut dst = Heap::new();
        let (thawed, _) = arena.thaw(&mut dst);
        assert_eq!(CanonKey::of(&src, t), CanonKey::of(&dst, thawed));
    }
}
