//! Term copying between (or within) heaps.
//!
//! [`copy_term`] produces an isomorphic copy of a term in a destination
//! heap, with fresh variables standing in for the source's unbound
//! variables. Structure sharing is preserved (a shared subterm is copied
//! once), which also makes the copy terminate on cyclic terms.
//!
//! This is the workhorse of both parallel engines:
//! * **goal shipping** (and-parallelism): a parcall subgoal is copied into
//!   the executing machine's heap, and its solution copied back;
//! * **state copying** (or-parallelism): the goal and continuation of a
//!   published choice point are copied into the shared or-tree node.
//!
//! The returned [`CopyOut::cells_copied`] feeds the virtual cost model.

use std::collections::HashMap;

use crate::heap::{Addr, Cell, Heap};

/// Result of a [`copy_term`] call.
#[derive(Debug, Clone, Copy)]
pub struct CopyOut {
    /// The copied term's root cell, valid in the destination heap.
    pub root: Cell,
    /// Number of destination cells written (cost metric).
    pub cells_copied: usize,
    /// Number of fresh variables created.
    pub fresh_vars: usize,
}

/// Copy `root` from `src` into `dst` with fresh variables.
pub fn copy_term(src: &Heap, root: Cell, dst: &mut Heap) -> CopyOut {
    let mut copier = Copier {
        var_map: HashMap::new(),
        block_map: HashMap::new(),
        cells: 0,
        vars: 0,
    };
    let mut work: Vec<(Cell, Addr)> = Vec::new();
    let out_root = copier.translate(src, root, dst, &mut work);
    while let Some((src_cell, at)) = work.pop() {
        let t = copier.translate(src, src_cell, dst, &mut work);
        dst.set_raw(at, t);
    }
    CopyOut {
        root: out_root,
        cells_copied: copier.cells,
        fresh_vars: copier.vars,
    }
}

/// Copy a term within a single heap (fresh variables, new cells at the top).
/// Implements the `copy_term/2` builtin.
pub fn copy_term_within(heap: &mut Heap, root: Cell) -> CopyOut {
    // The copier only reads cells that existed before it starts appending
    // (every source address predates the copy), but expressing that to the
    // borrow checker would need split borrows; `copy_term_within` is a
    // builtin-only path, so a snapshot is acceptable.
    let snapshot = heap.clone();
    copy_term(&snapshot, root, heap)
}

struct Copier {
    /// Unbound-variable source address -> fresh destination variable.
    ///
    /// Kept separate from `block_map`: in the compact (WAM-style) layout
    /// produced by compiled head code, a list pair's head slot can be an
    /// unbound variable stored *at* the pair address, so a single source
    /// address may name both a pair and a variable. A shared map would
    /// resolve the variable to the pair's destination block and
    /// manufacture a cycle (`[X|T]` with `X` = the list itself).
    var_map: HashMap<Addr, Cell>,
    /// Compound header/pair source address -> destination block cell;
    /// presence means the destination block already exists (sharing &
    /// cycle safety).
    block_map: HashMap<Addr, Cell>,
    cells: usize,
    vars: usize,
}

impl Copier {
    /// Translate one source cell to a destination cell. Newly seen compound
    /// terms get their destination block reserved here, and their children
    /// queued onto `work` to be filled in later (iterative, so arbitrarily
    /// deep terms cannot overflow the Rust stack).
    fn translate(
        &mut self,
        src: &Heap,
        c: Cell,
        dst: &mut Heap,
        work: &mut Vec<(Cell, Addr)>,
    ) -> Cell {
        match src.deref(c) {
            Cell::Ref(a) => *self.var_map.entry(a).or_insert_with(|| {
                self.vars += 1;
                self.cells += 1;
                dst.new_var()
            }),
            Cell::Atom(s) => Cell::Atom(s),
            Cell::Int(i) => Cell::Int(i),
            Cell::Nil => Cell::Nil,
            Cell::Str(hdr) => {
                if let Some(&d) = self.block_map.get(&hdr) {
                    return d;
                }
                let (f, n) = src.functor_at(hdr);
                let dhdr = dst.push(Cell::Functor(f, n));
                for i in 0..n {
                    let slot = dst.push(Cell::Nil); // placeholder
                    work.push((src.str_arg(hdr, i), slot));
                }
                self.cells += 1 + n as usize;
                let out = Cell::Str(dhdr);
                self.block_map.insert(hdr, out);
                out
            }
            Cell::Lst(p) => {
                if let Some(&d) = self.block_map.get(&p) {
                    return d;
                }
                let dh = dst.push(Cell::Nil);
                let dt = dst.push(Cell::Nil);
                work.push((src.lst_head(p), dh));
                work.push((src.lst_tail(p), dt));
                self.cells += 2;
                let out = Cell::Lst(dh);
                self.block_map.insert(p, out);
                out
            }
            Cell::Functor(..) => unreachable!("Functor is not a term"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;
    use crate::term::{is_ground, term_size, variables};
    use crate::unify::struct_eq;

    #[test]
    fn copy_ground_struct() {
        let mut src = Heap::new();
        let s = src.new_struct(sym("f"), &[Cell::Int(1), Cell::Atom(sym("a"))]);
        let mut dst = Heap::new();
        let out = copy_term(&src, s, &mut dst);
        assert_eq!(out.cells_copied, 3);
        assert!(is_ground(&dst, out.root));
        let Cell::Str(h) = out.root else {
            unreachable!()
        };
        assert_eq!(dst.functor_at(h), (sym("f"), 2));
        assert_eq!(dst.str_arg(h, 0), Cell::Int(1));
    }

    #[test]
    fn copy_renames_vars_consistently() {
        let mut src = Heap::new();
        let x = src.new_var();
        let s = src.new_struct(sym("f"), &[x, x, Cell::Int(3)]);
        let mut dst = Heap::new();
        let out = copy_term(&src, s, &mut dst);
        let vars = variables(&dst, out.root);
        assert_eq!(vars.len(), 1, "shared var copied once");
        assert_eq!(out.fresh_vars, 1);
    }

    #[test]
    fn copy_list() {
        let mut src = Heap::new();
        let l = src.list(&[Cell::Int(1), Cell::Int(2), Cell::Int(3)]);
        let mut dst = Heap::new();
        let out = copy_term(&src, l, &mut dst);
        let items = crate::term::proper_list(&dst, out.root).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(dst.deref(items[0]), Cell::Int(1));
        assert_eq!(dst.deref(items[2]), Cell::Int(3));
        assert_eq!(term_size(&dst, out.root), term_size(&src, l));
    }

    #[test]
    fn copy_deep_nesting_no_stack_overflow() {
        let mut src = Heap::new();
        let mut t = Cell::Nil;
        for i in 0..50_000 {
            t = src.cons(Cell::Int(i), t);
        }
        let mut dst = Heap::new();
        let out = copy_term(&src, t, &mut dst);
        assert_eq!(term_size(&dst, out.root), term_size(&src, t));
    }

    #[test]
    fn copy_within_heap() {
        let mut h = Heap::new();
        let x = h.new_var();
        let s = h.new_struct(sym("g"), &[x, Cell::Int(7)]);
        let out = copy_term_within(&mut h, s);
        assert!(struct_eq(&h, out.root, out.root));
        // the copy's variable is distinct from the original's
        let v1 = variables(&h, s);
        let v2 = variables(&h, out.root);
        assert_ne!(v1, v2);
    }

    #[test]
    fn copy_follows_bindings() {
        let mut src = Heap::new();
        let x = src.new_var();
        let s = src.new_struct(sym("f"), &[x]);
        let Cell::Ref(a) = x else { unreachable!() };
        src.bind(a, Cell::Int(9));
        let mut dst = Heap::new();
        let out = copy_term(&src, s, &mut dst);
        let Cell::Str(h) = out.root else {
            unreachable!()
        };
        assert_eq!(dst.str_arg(h, 0), Cell::Int(9));
    }

    #[test]
    fn copy_preserves_sharing() {
        let mut src = Heap::new();
        let shared = src.new_struct(sym("s"), &[Cell::Int(1)]);
        let outer = src.new_struct(sym("f"), &[shared, shared]);
        let mut dst = Heap::new();
        let out = copy_term(&src, outer, &mut dst);
        let Cell::Str(h) = out.root else {
            unreachable!()
        };
        assert_eq!(dst.str_arg(h, 0), dst.str_arg(h, 1));
    }

    #[test]
    fn copy_compact_pair_with_var_at_pair_address() {
        // Compiled head code lays `[H|T]` out WAM-style: the pair's head
        // slot *is* the unbound variable H, so the pair address and the
        // variable address coincide. The copy must produce `[H'|T']` with
        // fresh vars — not resolve H to the pair's own destination block.
        let mut src = Heap::new();
        let p = Addr(src.len() as u32);
        src.push(Cell::Ref(p)); // head slot: unbound var at the pair addr
        let t = Addr(src.len() as u32);
        src.push(Cell::Ref(t)); // tail slot: unbound var
        let list = Cell::Lst(p);
        let mut dst = Heap::new();
        let out = copy_term(&src, list, &mut dst);
        let Cell::Lst(dp) = out.root else {
            unreachable!()
        };
        assert_eq!(out.fresh_vars, 2);
        let head = dst.deref(dst.lst_head(dp));
        let tail = dst.deref(dst.lst_tail(dp));
        assert!(matches!(head, Cell::Ref(_)), "head stays a var: {head:?}");
        assert!(matches!(tail, Cell::Ref(_)), "tail stays a var: {tail:?}");
        assert_ne!(head, tail);
    }

    #[test]
    fn copy_terminates_on_cyclic_term() {
        let mut src = Heap::new();
        let x = src.new_var();
        let s = src.new_struct(sym("f"), &[x]);
        let Cell::Ref(a) = x else { unreachable!() };
        // create the rational tree f(f(f(...))) without occurs check
        crate::unify::unify(&mut src, Cell::Ref(a), s).unwrap();
        let mut dst = Heap::new();
        let out = copy_term(&src, s, &mut dst);
        // the copy is itself cyclic and was produced in finite time
        let Cell::Str(h) = out.root else {
            unreachable!()
        };
        assert_eq!(dst.deref(dst.str_arg(h, 0)), Cell::Str(h));
    }
}
