//! Reader: tokenizer and operator-precedence parser for the Prolog subset
//! used by the benchmark corpus and examples.
//!
//! Supported syntax: atoms (plain, quoted, symbolic), variables, integers,
//! compound terms, lists with `|` tails, parenthesised terms, `%` line and
//! `/* */` block comments, and the standard operator table extended with
//! the `&` **parallel conjunction** operator (priority 1025, `xfy`) that
//! &ACE programs use to annotate independent and-parallel goals:
//!
//! ```text
//! process_list([H|T], [Hout|Tout]) :-
//!     process(H, Hout) & process_list(T, Tout).
//! ```
//!
//! Terms are built directly into a caller-supplied [`Heap`]; parsing a
//! program yields one self-contained heap ("arena") per clause, which the
//! database later instantiates by block copy + relocation.

use std::collections::HashMap;
use std::fmt;

use crate::heap::{Cell, Heap};
use crate::sym::sym;

/// Reader errors with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ReadError {}

fn err<T>(at: usize, msg: impl Into<String>) -> Result<T, ReadError> {
    Err(ReadError {
        at,
        msg: msg.into(),
    })
}

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Atom or symbolic atom; bool = followed immediately by `(`.
    Atom(String, bool),
    Var(String),
    Int(i64),
    Open,   // (
    Close,  // )
    OpenB,  // [
    CloseB, // ]
    Comma,  // ,
    Bar,    // |
    End,    // clause-terminating .
    Eof,
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
}

const SYMBOLIC: &[u8] = b"+-*/\\^<>=~:.?@#&$";

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) -> Result<(), ReadError> {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'/'
                && self.src[self.pos + 1] == b'*'
            {
                let start = self.pos;
                self.pos += 2;
                loop {
                    if self.pos + 1 >= self.src.len() {
                        return err(start, "unterminated block comment");
                    }
                    if self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/' {
                        self.pos += 2;
                        break;
                    }
                    self.pos += 1;
                }
                continue;
            }
            return Ok(());
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    /// Lex the next token.
    fn next(&mut self) -> Result<(usize, Tok), ReadError> {
        self.skip_ws()?;
        let at = self.pos;
        let Some(c) = self.peek_byte() else {
            return Ok((at, Tok::Eof));
        };
        match c {
            b'(' => {
                self.pos += 1;
                Ok((at, Tok::Open))
            }
            b')' => {
                self.pos += 1;
                Ok((at, Tok::Close))
            }
            b'[' => {
                self.pos += 1;
                Ok((at, Tok::OpenB))
            }
            b']' => {
                self.pos += 1;
                Ok((at, Tok::CloseB))
            }
            b',' => {
                self.pos += 1;
                Ok((at, Tok::Comma))
            }
            b'|' => {
                self.pos += 1;
                Ok((at, Tok::Bar))
            }
            b'!' => {
                self.pos += 1;
                Ok((at, self.atom_tok("!")))
            }
            b';' => {
                self.pos += 1;
                Ok((at, self.atom_tok(";")))
            }
            b'\'' => self.quoted_atom(at),
            b'0'..=b'9' => self.number(at),
            b'_' | b'A'..=b'Z' => {
                let name = self.ident();
                Ok((at, Tok::Var(name)))
            }
            b'a'..=b'z' => {
                let name = self.ident();
                Ok((at, self.atom_tok(&name)))
            }
            c if SYMBOLIC.contains(&c) => {
                let start = self.pos;
                while self.pos < self.src.len() && SYMBOLIC.contains(&self.src[self.pos]) {
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .unwrap()
                    .to_owned();
                // A lone '.' followed by whitespace/EOF terminates a clause.
                if s == "." {
                    let next_ws = self
                        .peek_byte()
                        .is_none_or(|b| b.is_ascii_whitespace() || b == b'%');
                    if next_ws {
                        return Ok((at, Tok::End));
                    }
                }
                Ok((at, self.atom_tok(&s)))
            }
            other => err(at, format!("unexpected character {:?}", other as char)),
        }
    }

    fn atom_tok(&self, name: &str) -> Tok {
        let calls = self.peek_byte() == Some(b'(');
        Tok::Atom(name.to_owned(), calls)
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_owned()
    }

    fn number(&mut self, at: usize) -> Result<(usize, Tok), ReadError> {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match text.parse::<i64>() {
            Ok(v) => Ok((at, Tok::Int(v))),
            Err(_) => err(at, "integer literal out of range"),
        }
    }

    fn quoted_atom(&mut self, at: usize) -> Result<(usize, Tok), ReadError> {
        self.pos += 1; // opening quote
                       // Collect raw bytes so multi-byte UTF-8 inside quoted atoms
                       // survives intact (the input is valid UTF-8 and all delimiters
                       // and escapes are ASCII, so byte-level scanning is safe).
        let mut bytes: Vec<u8> = Vec::new();
        loop {
            match self.peek_byte() {
                None => return err(at, "unterminated quoted atom"),
                Some(b'\'') => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'\'') {
                        bytes.push(b'\'');
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek_byte() {
                        Some(b'n') => bytes.push(b'\n'),
                        Some(b't') => bytes.push(b'\t'),
                        Some(b'\\') => bytes.push(b'\\'),
                        Some(b'\'') => bytes.push(b'\''),
                        other => {
                            return err(
                                self.pos,
                                format!("bad escape {:?}", other.map(|b| b as char)),
                            )
                        }
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    bytes.push(b);
                    self.pos += 1;
                }
            }
        }
        let out = String::from_utf8(bytes).map_err(|_| ReadError {
            at,
            msg: "invalid UTF-8 in quoted atom".into(),
        })?;
        let calls = self.peek_byte() == Some(b'(');
        Ok((at, Tok::Atom(out, calls)))
    }
}

// ---------------------------------------------------------------------------
// Operator table
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpType {
    Xfx,
    Xfy,
    Yfx,
    Fy,
    Fx,
}

#[derive(Debug, Clone, Copy)]
struct OpDef {
    prec: u16,
    typ: OpType,
}

fn infix_op(name: &str) -> Option<OpDef> {
    use OpType::*;
    let (prec, typ) = match name {
        ":-" | "-->" => (1200, Xfx),
        ";" => (1100, Xfy),
        "->" => (1050, Xfy),
        // &ACE parallel conjunction: binds tighter than ';' and looser
        // than ','  so  `a, b & c, d`  reads as  `(a, b) & (c, d)`.
        "&" => (1025, Xfy),
        "," => (1000, Xfy),
        "=" | "\\=" | "==" | "\\==" | "is" | "=:=" | "=\\=" | "<" | ">" | "=<" | ">=" | "@<"
        | "@>" | "@=<" | "@>=" | "=.." => (700, Xfx),
        "+" | "-" => (500, Yfx),
        "*" | "/" | "//" | "mod" | "rem" | ">>" | "<<" => (400, Yfx),
        "**" => (200, Xfx),
        "^" => (200, Xfy),
        _ => return None,
    };
    Some(OpDef { prec, typ })
}

fn prefix_op(name: &str) -> Option<OpDef> {
    use OpType::*;
    let (prec, typ) = match name {
        ":-" | "?-" => (1200, Fx),
        "\\+" => (900, Fy),
        "-" | "+" | "\\" => (200, Fy),
        _ => return None,
    };
    Some(OpDef { prec, typ })
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'s, 'h> {
    lx: Lexer<'s>,
    heap: &'h mut Heap,
    vars: HashMap<String, Cell>,
    /// one-token lookahead
    peeked: Option<(usize, Tok)>,
}

impl<'s, 'h> Parser<'s, 'h> {
    fn new(src: &'s str, heap: &'h mut Heap) -> Self {
        Parser {
            lx: Lexer::new(src),
            heap,
            vars: HashMap::new(),
            peeked: None,
        }
    }

    fn peek(&mut self) -> Result<&(usize, Tok), ReadError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lx.next()?);
        }
        Ok(self.peeked.as_ref().unwrap())
    }

    fn bump(&mut self) -> Result<(usize, Tok), ReadError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lx.next(),
        }
    }

    fn var(&mut self, name: &str) -> Cell {
        if name == "_" {
            return self.heap.new_var();
        }
        if let Some(&c) = self.vars.get(name) {
            return c;
        }
        let c = self.heap.new_var();
        self.vars.insert(name.to_owned(), c);
        c
    }

    /// Parse a term with priority at most `max_prec`.
    fn term(&mut self, max_prec: u16) -> Result<Cell, ReadError> {
        let (mut left, mut left_prec) = self.primary(max_prec)?;
        loop {
            let (at, tok) = self.peek()?.clone();
            let opname = match &tok {
                Tok::Atom(name, _) => name.clone(),
                Tok::Comma => ",".to_owned(),
                Tok::Bar if max_prec >= 1100 => {
                    // '|' as alternative separator is not supported;
                    // it only appears in lists.
                    break;
                }
                _ => break,
            };
            let Some(op) = infix_op(&opname) else { break };
            if op.prec > max_prec {
                break;
            }
            let (larg_max, rarg_max) = match op.typ {
                OpType::Xfx => (op.prec - 1, op.prec - 1),
                OpType::Xfy => (op.prec - 1, op.prec),
                OpType::Yfx => (op.prec, op.prec - 1),
                _ => unreachable!(),
            };
            if left_prec > larg_max {
                break;
            }
            self.bump()?; // consume the operator
            let right = self.term(rarg_max).map_err(|e| ReadError {
                at: e.at.max(at),
                msg: e.msg,
            })?;
            left = self.heap.new_struct(sym(&opname), &[left, right]);
            left_prec = op.prec;
        }
        Ok(left)
    }

    /// Parse a primary (possibly prefixed) term; returns (term, priority).
    fn primary(&mut self, max_prec: u16) -> Result<(Cell, u16), ReadError> {
        let (at, tok) = self.bump()?;
        match tok {
            Tok::Int(v) => Ok((Cell::Int(v), 0)),
            Tok::Var(name) => Ok((self.var(&name), 0)),
            Tok::Open => {
                let t = self.term(1200)?;
                self.expect_close()?;
                Ok((t, 0))
            }
            Tok::OpenB => self.list(),
            Tok::Atom(name, calls_args) => {
                if calls_args {
                    // functional notation f(...)
                    let args = self.arglist()?;
                    let t = self.heap.new_struct(sym(&name), &args);
                    return Ok((t, 0));
                }
                // Prefix operator?
                if let Some(op) = prefix_op(&name) {
                    if op.prec <= max_prec && self.starts_term()? {
                        // Special case: -Integer is a negative literal.
                        if name == "-" {
                            if let (_, Tok::Int(v)) = self.peek()?.clone() {
                                self.bump()?;
                                return Ok((Cell::Int(-v), 0));
                            }
                        }
                        let arg_max = match op.typ {
                            OpType::Fy => op.prec,
                            OpType::Fx => op.prec - 1,
                            _ => unreachable!(),
                        };
                        let arg = self.term(arg_max)?;
                        let t = self.heap.new_struct(sym(&name), &[arg]);
                        return Ok((t, op.prec));
                    }
                }
                if infix_op(&name).is_some() && !self.at_term_end()? {
                    // an infix operator in primary position with more input
                    // following is a syntax error unless parenthesised
                    return err(at, format!("operator `{name}` used as term"));
                }
                Ok((atom_cell(&name), 0))
            }
            Tok::Comma => err(at, "unexpected `,`"),
            Tok::Bar => err(at, "unexpected `|`"),
            Tok::Close => err(at, "unexpected `)`"),
            Tok::CloseB => err(at, "unexpected `]`"),
            Tok::End => err(at, "unexpected end of clause"),
            Tok::Eof => err(at, "unexpected end of input"),
        }
    }

    /// Could the next token begin a term?
    fn starts_term(&mut self) -> Result<bool, ReadError> {
        Ok(matches!(
            self.peek()?.1,
            Tok::Int(_) | Tok::Var(_) | Tok::Atom(..) | Tok::Open | Tok::OpenB
        ))
    }

    fn at_term_end(&mut self) -> Result<bool, ReadError> {
        Ok(matches!(
            self.peek()?.1,
            Tok::End | Tok::Eof | Tok::Close | Tok::CloseB | Tok::Comma | Tok::Bar
        ))
    }

    fn expect_close(&mut self) -> Result<(), ReadError> {
        match self.bump()? {
            (_, Tok::Close) => Ok(()),
            (at, other) => err(at, format!("expected `)`, found {other:?}")),
        }
    }

    /// `(` already consumed by the `calls_args` path? No — the open paren
    /// still sits in the stream; consume it, then parse comma-separated
    /// arguments at priority 999.
    fn arglist(&mut self) -> Result<Vec<Cell>, ReadError> {
        match self.bump()? {
            (_, Tok::Open) => {}
            (at, other) => return err(at, format!("expected `(`, found {other:?}")),
        }
        let mut args = Vec::new();
        loop {
            args.push(self.term(999)?);
            match self.bump()? {
                (_, Tok::Comma) => continue,
                (_, Tok::Close) => break,
                (at, other) => return err(at, format!("expected `,` or `)`, found {other:?}")),
            }
        }
        Ok(args)
    }

    /// `[` already consumed.
    fn list(&mut self) -> Result<(Cell, u16), ReadError> {
        if matches!(self.peek()?.1, Tok::CloseB) {
            self.bump()?;
            return Ok((Cell::Nil, 0));
        }
        let mut items = Vec::new();
        let tail;
        loop {
            items.push(self.term(999)?);
            match self.bump()? {
                (_, Tok::Comma) => continue,
                (_, Tok::CloseB) => {
                    tail = Cell::Nil;
                    break;
                }
                (_, Tok::Bar) => {
                    tail = self.term(999)?;
                    match self.bump()? {
                        (_, Tok::CloseB) => {}
                        (at, other) => return err(at, format!("expected `]`, found {other:?}")),
                    }
                    break;
                }
                (at, other) => {
                    return err(at, format!("expected `,`, `|` or `]`, found {other:?}"))
                }
            }
        }
        let mut t = tail;
        for &item in items.iter().rev() {
            t = self.heap.cons(item, t);
        }
        Ok((t, 0))
    }
}

fn atom_cell(name: &str) -> Cell {
    if name == "[]" {
        Cell::Nil
    } else {
        Cell::Atom(sym(name))
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Parse a single term (terminated by `.` or end of input) into `heap`.
/// Returns the term and the variable-name bindings encountered.
pub fn parse_term(heap: &mut Heap, src: &str) -> Result<(Cell, Vec<(String, Cell)>), ReadError> {
    let mut p = Parser::new(src, heap);
    let t = p.term(1200)?;
    match p.bump()? {
        (_, Tok::End) | (_, Tok::Eof) => {}
        (at, other) => return err(at, format!("trailing input: {other:?}")),
    }
    let mut names: Vec<(String, Cell)> = p.vars.into_iter().collect();
    names.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((t, names))
}

/// A clause read from program text, as a self-contained heap arena.
#[derive(Debug, Clone)]
pub struct ReadClause {
    /// The arena containing the whole clause term.
    pub arena: Heap,
    /// The clause term (`Head`, `Head :- Body`, or `:- Directive`).
    pub root: Cell,
}

/// Parse a whole program: a sequence of `.`-terminated clauses.
pub fn parse_program(src: &str) -> Result<Vec<ReadClause>, ReadError> {
    let mut out = Vec::new();
    let mut rest = src;
    let mut consumed = 0usize;
    loop {
        // Skip to see whether anything is left.
        {
            let mut lx = Lexer::new(rest);
            lx.skip_ws().map_err(|e| ReadError {
                at: e.at + consumed,
                msg: e.msg,
            })?;
            if lx.peek_byte().is_none() {
                break;
            }
        }
        let mut arena = Heap::new();
        let mut p = Parser::new(rest, &mut arena);
        let root = p.term(1200).map_err(|e| ReadError {
            at: e.at + consumed,
            msg: e.msg,
        })?;
        match p.bump().map_err(|e| ReadError {
            at: e.at + consumed,
            msg: e.msg,
        })? {
            (_, Tok::End) => {}
            (at, Tok::Eof) => return err(at + consumed, "clause not terminated by `.`"),
            (at, other) => return err(at + consumed, format!("expected `.`, found {other:?}")),
        }
        let advanced = p.lx.pos;
        out.push(ReadClause { arena, root });
        consumed += advanced;
        rest = &rest[advanced..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;
    use crate::term::{proper_list, view, TermView};
    use crate::write::term_to_string;

    fn roundtrip(src: &str) -> String {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, src).unwrap();
        term_to_string(&h, t)
    }

    #[test]
    fn atoms_ints_vars() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "foo").unwrap();
        assert_eq!(t, Cell::Atom(sym("foo")));
        let (t, _) = parse_term(&mut h, "42").unwrap();
        assert_eq!(t, Cell::Int(42));
        let (t, vars) = parse_term(&mut h, "X").unwrap();
        assert!(matches!(view(&h, t), TermView::Var(_)));
        assert_eq!(vars.len(), 1);
        assert_eq!(vars[0].0, "X");
    }

    #[test]
    fn negative_literal() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "-7").unwrap();
        assert_eq!(t, Cell::Int(-7));
    }

    #[test]
    fn compound_and_nesting() {
        assert_eq!(roundtrip("f(a, g(B, 1), [])"), "f(a,g(_G0,1),[])");
    }

    #[test]
    fn variables_scoped_within_term() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "f(X, X, Y)").unwrap();
        let TermView::Struct(_, 3, hdr) = view(&h, t) else {
            unreachable!()
        };
        assert_eq!(h.deref(h.str_arg(hdr, 0)), h.deref(h.str_arg(hdr, 1)));
        assert_ne!(h.deref(h.str_arg(hdr, 0)), h.deref(h.str_arg(hdr, 2)));
    }

    #[test]
    fn lists() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "[1,2,3]").unwrap();
        let items = proper_list(&h, t).unwrap();
        assert_eq!(items.len(), 3);
        let (t2, _) = parse_term(&mut h, "[H|T]").unwrap();
        assert!(matches!(view(&h, t2), TermView::List(_)));
        let (t3, _) = parse_term(&mut h, "[]").unwrap();
        assert_eq!(t3, Cell::Nil);
    }

    #[test]
    fn operators_precedence() {
        // 1+2*3 = +(1, *(2,3))
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "1+2*3").unwrap();
        let TermView::Struct(f, 2, hdr) = view(&h, t) else {
            unreachable!()
        };
        assert_eq!(f, sym("+"));
        assert_eq!(h.str_arg(hdr, 0), Cell::Int(1));
        let TermView::Struct(g, 2, _) = view(&h, h.str_arg(hdr, 1)) else {
            unreachable!()
        };
        assert_eq!(g, sym("*"));
    }

    #[test]
    fn yfx_left_assoc() {
        // 1-2-3 = -(-(1,2),3)
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "1-2-3").unwrap();
        let TermView::Struct(f, 2, hdr) = view(&h, t) else {
            unreachable!()
        };
        assert_eq!(f, sym("-"));
        assert_eq!(h.str_arg(hdr, 1), Cell::Int(3));
    }

    #[test]
    fn comma_and_amp_structure() {
        // a, b & c, d  =  &( ','(a,b) , ','(c,d) )
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "a, b & c, d").unwrap();
        let TermView::Struct(f, 2, hdr) = view(&h, t) else {
            unreachable!()
        };
        assert_eq!(f, sym("&"));
        let TermView::Struct(l, 2, _) = view(&h, h.str_arg(hdr, 0)) else {
            unreachable!()
        };
        assert_eq!(l, sym(","));
    }

    #[test]
    fn clause_neck() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "p(X) :- q(X), r(X)").unwrap();
        let TermView::Struct(f, 2, _) = view(&h, t) else {
            unreachable!()
        };
        assert_eq!(f, sym(":-"));
    }

    #[test]
    fn parse_program_multi_clause() {
        let prog = r#"
            % list membership
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
        "#;
        let clauses = parse_program(prog).unwrap();
        assert_eq!(clauses.len(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let prog = "/* block */ p. % line\nq.";
        let clauses = parse_program(prog).unwrap();
        assert_eq!(clauses.len(), 2);
    }

    #[test]
    fn quoted_atoms() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "'hello world'").unwrap();
        assert_eq!(t, Cell::Atom(sym("hello world")));
        let (t2, _) = parse_term(&mut h, "'it''s'").unwrap();
        assert_eq!(t2, Cell::Atom(sym("it's")));
    }

    #[test]
    fn cut_and_control_atoms() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "p :- !, q").unwrap();
        let s = term_to_string(&h, t);
        assert!(s.contains('!'), "{s}");
    }

    #[test]
    fn naf_prefix() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "\\+ p(X)").unwrap();
        let TermView::Struct(f, 1, _) = view(&h, t) else {
            unreachable!()
        };
        assert_eq!(f, sym("\\+"));
    }

    #[test]
    fn errors_reported() {
        let mut h = Heap::new();
        assert!(parse_term(&mut h, "f(").is_err());
        assert!(parse_term(&mut h, "[1,2").is_err());
        assert!(parse_program("p :- q").is_err()); // missing end dot
    }

    #[test]
    fn end_dot_after_operand() {
        let clauses = parse_program("x(X) :- X = a.\ny.").unwrap();
        assert_eq!(clauses.len(), 2);
    }

    #[test]
    fn parallel_conj_in_clause() {
        let prog = "p(L, O) :- q(L, M) & r(M, O).";
        let clauses = parse_program(prog).unwrap();
        assert_eq!(clauses.len(), 1);
        let c = &clauses[0];
        let TermView::Struct(neck, 2, hdr) = view(&c.arena, c.root) else {
            unreachable!()
        };
        assert_eq!(neck, sym(":-"));
        let body = c.arena.str_arg(hdr, 1);
        let TermView::Struct(amp, 2, _) = view(&c.arena, body) else {
            unreachable!()
        };
        assert_eq!(amp, sym("&"));
    }
}
