//! Structured views over heap cells and term-level utilities.

use crate::heap::{Addr, Cell, Heap};
use crate::sym::Sym;

/// A dereferenced, pattern-matchable view of a term.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TermView {
    /// Unbound variable at the given heap address.
    Var(Addr),
    Atom(Sym),
    Int(i64),
    /// Structure `f/arity` whose header cell is at the given address.
    Struct(Sym, u32, Addr),
    /// List pair at the given address (head at `a`, tail at `a+1`).
    List(Addr),
    Nil,
}

/// Dereference `c` in `heap` and classify it.
#[inline]
pub fn view(heap: &Heap, c: Cell) -> TermView {
    match heap.deref(c) {
        Cell::Ref(a) => TermView::Var(a),
        Cell::Atom(s) => TermView::Atom(s),
        Cell::Int(i) => TermView::Int(i),
        Cell::Str(hdr) => {
            let (f, n) = heap.functor_at(hdr);
            TermView::Struct(f, n, hdr)
        }
        Cell::Lst(a) => TermView::List(a),
        Cell::Nil => TermView::Nil,
        Cell::Functor(..) => unreachable!("Functor header is not a term"),
    }
}

/// Iterate the elements of a (possibly improper) list term. Yields each
/// element cell; `rest()` reports the final tail (Nil for proper lists).
pub struct ListIter<'h> {
    heap: &'h Heap,
    cur: Cell,
}

impl<'h> ListIter<'h> {
    pub fn new(heap: &'h Heap, list: Cell) -> Self {
        ListIter { heap, cur: list }
    }

    /// The unconsumed tail (call after exhausting the iterator).
    pub fn rest(&self) -> Cell {
        self.heap.deref(self.cur)
    }
}

impl<'h> Iterator for ListIter<'h> {
    type Item = Cell;

    fn next(&mut self) -> Option<Cell> {
        match self.heap.deref(self.cur) {
            Cell::Lst(p) => {
                let head = self.heap.lst_head(p);
                self.cur = self.heap.lst_tail(p);
                Some(head)
            }
            _ => None,
        }
    }
}

/// Collect a proper list into a `Vec` of element cells. Returns `None` if
/// the term is not a proper list (unbound or non-nil tail).
pub fn proper_list(heap: &Heap, list: Cell) -> Option<Vec<Cell>> {
    let mut it = ListIter::new(heap, list);
    let items: Vec<Cell> = it.by_ref().collect();
    if it.rest() == Cell::Nil {
        Some(items)
    } else {
        None
    }
}

/// Is the term fully ground (no unbound variables)?
pub fn is_ground(heap: &Heap, c: Cell) -> bool {
    let mut stack = vec![c];
    while let Some(c) = stack.pop() {
        match view(heap, c) {
            TermView::Var(_) => return false,
            TermView::Struct(_, n, hdr) => {
                for i in 0..n {
                    stack.push(heap.str_arg(hdr, i));
                }
            }
            TermView::List(p) => {
                stack.push(heap.lst_head(p));
                stack.push(heap.lst_tail(p));
            }
            _ => {}
        }
    }
    true
}

/// Number of cells the term transitively occupies (size metric used by the
/// cost model for copy charging).
pub fn term_size(heap: &Heap, c: Cell) -> usize {
    let mut size = 0;
    let mut stack = vec![c];
    while let Some(c) = stack.pop() {
        size += 1;
        match view(heap, c) {
            TermView::Struct(_, n, hdr) => {
                for i in 0..n {
                    stack.push(heap.str_arg(hdr, i));
                }
            }
            TermView::List(p) => {
                stack.push(heap.lst_head(p));
                stack.push(heap.lst_tail(p));
            }
            _ => {}
        }
    }
    size
}

/// Collect the distinct unbound variables in `c`, in first-occurrence order.
pub fn variables(heap: &Heap, c: Cell) -> Vec<Addr> {
    let mut seen = Vec::new();
    let mut stack = vec![c];
    // depth-first, left-to-right: push children reversed
    while let Some(c) = stack.pop() {
        match view(heap, c) {
            TermView::Var(a) if !seen.contains(&a) => seen.push(a),
            TermView::Var(_) => {}
            TermView::Struct(_, n, hdr) => {
                for i in (0..n).rev() {
                    stack.push(heap.str_arg(hdr, i));
                }
            }
            TermView::List(p) => {
                stack.push(heap.lst_tail(p));
                stack.push(heap.lst_head(p));
            }
            _ => {}
        }
    }
    seen
}

/// Standard order of terms comparison (Var < Int < Atom < compound;
/// compound by arity, then functor name, then args left-to-right).
pub fn compare(heap: &Heap, a: Cell, b: Cell) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    use TermView as V;

    fn rank(v: &TermView) -> u8 {
        match v {
            V::Var(_) => 0,
            V::Int(_) => 1,
            V::Atom(_) => 2,
            V::Nil => 2, // '[]' is an atom in the standard order
            V::List(_) => 3,
            V::Struct(..) => 3,
        }
    }

    let va = view(heap, a);
    let vb = view(heap, b);
    let (ra, rb) = (rank(&va), rank(&vb));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (va, vb) {
        (V::Var(x), V::Var(y)) => x.0.cmp(&y.0),
        (V::Int(x), V::Int(y)) => x.cmp(&y),
        (V::Atom(x), V::Atom(y)) => x.name().cmp(&y.name()),
        (V::Nil, V::Nil) => Ordering::Equal,
        (V::Atom(x), V::Nil) => x.name().cmp(&"[]".to_owned()),
        (V::Nil, V::Atom(y)) => "[]".to_owned().cmp(&y.name()),
        (ta, tb) => {
            // compound: compare arity, then name, then args
            let (fa, na, args_a) = compound_parts(heap, ta);
            let (fb, nb, args_b) = compound_parts(heap, tb);
            na.cmp(&nb)
                .then_with(|| fa.name().cmp(&fb.name()))
                .then_with(|| {
                    for (x, y) in args_a.iter().zip(args_b.iter()) {
                        let o = compare(heap, *x, *y);
                        if o != Ordering::Equal {
                            return o;
                        }
                    }
                    Ordering::Equal
                })
        }
    }
}

fn compound_parts(heap: &Heap, v: TermView) -> (Sym, u32, Vec<Cell>) {
    match v {
        TermView::Struct(f, n, hdr) => (f, n, (0..n).map(|i| heap.str_arg(hdr, i)).collect()),
        TermView::List(p) => (
            crate::sym::wk().dot,
            2,
            vec![heap.lst_head(p), heap.lst_tail(p)],
        ),
        _ => unreachable!("compound_parts on non-compound"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;

    #[test]
    fn view_classifies() {
        let mut h = Heap::new();
        let v = h.new_var();
        assert!(matches!(view(&h, v), TermView::Var(_)));
        assert_eq!(view(&h, Cell::Atom(sym("a"))), TermView::Atom(sym("a")));
        assert_eq!(view(&h, Cell::Int(5)), TermView::Int(5));
        assert_eq!(view(&h, Cell::Nil), TermView::Nil);
        let s = h.new_struct(sym("f"), &[Cell::Int(1)]);
        assert!(matches!(view(&h, s), TermView::Struct(f, 1, _) if f == sym("f")));
    }

    #[test]
    fn proper_list_roundtrip() {
        let mut h = Heap::new();
        let l = h.list(&[Cell::Int(1), Cell::Int(2)]);
        let items = proper_list(&h, l).unwrap();
        assert_eq!(items, vec![Cell::Int(1), Cell::Int(2)]);
    }

    #[test]
    fn improper_list_detected() {
        let mut h = Heap::new();
        let v = h.new_var();
        let l = h.cons(Cell::Int(1), v);
        assert!(proper_list(&h, l).is_none());
    }

    #[test]
    fn groundness() {
        let mut h = Heap::new();
        let v = h.new_var();
        let s1 = h.new_struct(sym("f"), &[Cell::Int(1), v]);
        assert!(!is_ground(&h, s1));
        let s2 = h.new_struct(sym("f"), &[Cell::Int(1), Cell::Atom(sym("a"))]);
        assert!(is_ground(&h, s2));
        // binding the var makes s1 ground
        let Cell::Ref(a) = v else { unreachable!() };
        h.bind(a, Cell::Int(9));
        assert!(is_ground(&h, s1));
    }

    #[test]
    fn sizes() {
        let mut h = Heap::new();
        assert_eq!(term_size(&h, Cell::Int(1)), 1);
        let s = h.new_struct(sym("f"), &[Cell::Int(1), Cell::Int(2)]);
        assert_eq!(term_size(&h, s), 3);
        let l = h.list(&[Cell::Int(1), Cell::Int(2)]);
        // [1,2] = Lst -> 1, Lst -> 2, Nil  => pair + head + pair + head + nil
        assert_eq!(term_size(&h, l), 5);
    }

    #[test]
    fn collect_variables_in_order() {
        let mut h = Heap::new();
        let x = h.new_var();
        let y = h.new_var();
        let inner = h.new_struct(sym("g"), &[y, x]);
        let s = h.new_struct(sym("f"), &[x, inner]);
        let (Cell::Ref(ax), Cell::Ref(ay)) = (x, y) else {
            unreachable!()
        };
        assert_eq!(variables(&h, s), vec![ax, ay]);
    }

    #[test]
    fn standard_order() {
        use std::cmp::Ordering::*;
        let mut h = Heap::new();
        let v = h.new_var();
        assert_eq!(compare(&h, v, Cell::Int(0)), Less);
        assert_eq!(compare(&h, Cell::Int(3), Cell::Atom(sym("a"))), Less);
        let s = h.new_struct(sym("f"), &[Cell::Int(1)]);
        assert_eq!(compare(&h, Cell::Atom(sym("z")), s), Less);
        assert_eq!(compare(&h, Cell::Int(2), Cell::Int(2)), Equal);
        let s2 = h.new_struct(sym("f"), &[Cell::Int(2)]);
        assert_eq!(compare(&h, s, s2), Less);
        let g1 = h.new_struct(sym("a"), &[Cell::Int(1)]);
        let g2 = h.new_struct(sym("b"), &[Cell::Int(0)]);
        assert_eq!(compare(&h, g1, g2), Less);
    }
}
