//! Clause database with first-argument indexing.
//!
//! Each clause is kept as a **self-contained heap arena** produced by the
//! reader. Calling a clause instantiates it by a single block copy with
//! address relocation — variables in the arena are self-referential `Ref`
//! cells, so relocation automatically renames them apart (the classic
//! "copy-based" clause representation).
//!
//! First-argument indexing matters here beyond raw speed: the engines
//! detect **determinacy at runtime** by asking how many clauses *can still
//! match* a call. The paper's optimizations (LPCO condition (i), shallow
//! parallelism) key off exactly this runtime-determinacy information, which
//! "is completely known at runtime" unlike compile-time approximations
//! (paper §1).

use std::collections::HashSet;
use std::sync::Arc;

use crate::code::CompiledCode;
use crate::fxhash::FxHashMap;
use crate::heap::{Cell, Heap};
use crate::read::{parse_program, ReadClause, ReadError};
use crate::sym::{sym, sym_name, wk, Sym};
use crate::term::{view, TermView};

/// First-argument index key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IndexKey {
    /// Clause head's first argument is a variable (matches anything), or
    /// the predicate has arity 0.
    Any,
    Atom(Sym),
    Int(i64),
    Struct(Sym, u32),
    /// A list pair `[_|_]`.
    List,
    Nil,
}

impl IndexKey {
    /// Compute the key of a term (used both for clause heads at load time
    /// and call arguments at runtime).
    pub fn of(heap: &Heap, t: Cell) -> IndexKey {
        match view(heap, t) {
            TermView::Var(_) => IndexKey::Any,
            TermView::Atom(s) => IndexKey::Atom(s),
            TermView::Int(i) => IndexKey::Int(i),
            TermView::Struct(f, n, _) => IndexKey::Struct(f, n),
            TermView::List(_) => IndexKey::List,
            TermView::Nil => IndexKey::Nil,
        }
    }

    /// Could a clause with key `self` match a call with key `call`?
    #[inline]
    pub fn may_match(self, call: IndexKey) -> bool {
        self == IndexKey::Any || call == IndexKey::Any || self == call
    }
}

impl std::fmt::Display for IndexKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexKey::Any => write!(f, "var"),
            IndexKey::Atom(s) => write!(f, "{}", sym_name(*s)),
            IndexKey::Int(i) => write!(f, "{i}"),
            IndexKey::Struct(s, n) => write!(f, "{}/{n}", sym_name(*s)),
            IndexKey::List => write!(f, "[_|_]"),
            IndexKey::Nil => write!(f, "[]"),
        }
    }
}

/// One program clause in relocatable form.
#[derive(Debug)]
pub struct Clause {
    /// Self-contained cell arena holding head and body.
    arena: Heap,
    /// Head term (arena-relative).
    head: Cell,
    /// Body term (arena-relative); the atom `true` for facts.
    body: Cell,
    /// First-argument index key of the head.
    pub key: IndexKey,
    /// Source position (clause number within its predicate), for tracing.
    pub ordinal: usize,
    /// Register-based compiled form (head code + body template), built
    /// once at load time and cached here.
    code: CompiledCode,
}

impl Clause {
    /// Build from a parsed clause term (`Head`, or `Head :- Body`).
    pub fn from_read(rc: ReadClause, ordinal: usize) -> Result<Clause, String> {
        let ReadClause { arena, root } = rc;
        let (head, body) = match view(&arena, root) {
            TermView::Struct(f, 2, hdr) if f == wk().clause_neck => {
                (arena.str_arg(hdr, 0), arena.str_arg(hdr, 1))
            }
            _ => (root, Cell::Atom(wk().true_)),
        };
        let key = match view(&arena, head) {
            TermView::Atom(_) => IndexKey::Any,
            TermView::Struct(_, _, hdr) => IndexKey::of(&arena, arena.str_arg(hdr, 0)),
            other => {
                return Err(format!("invalid clause head: {other:?}"));
            }
        };
        let code = CompiledCode::compile(&arena, head, body);
        Ok(Clause {
            arena,
            head,
            body,
            key,
            ordinal,
            code,
        })
    }

    /// The compiled form of this clause.
    pub fn code(&self) -> &CompiledCode {
        &self.code
    }

    /// Head functor name and arity.
    pub fn head_functor(&self) -> (Sym, u32) {
        match view(&self.arena, self.head) {
            TermView::Atom(s) => (s, 0),
            TermView::Struct(f, n, _) => (f, n),
            _ => unreachable!("validated in from_read"),
        }
    }

    /// Number of arena cells (instantiation cost metric).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Instantiate this clause on `heap`: block-copy the arena with
    /// relocation and return the (head, body) cells valid in `heap`.
    ///
    /// Cost is one `memcpy`-like pass over the arena; every self-referential
    /// `Ref` cell becomes a fresh unbound variable automatically.
    pub fn instantiate(&self, heap: &mut Heap) -> (Cell, Cell) {
        let base = heap.len() as u32;
        for &c in self.arena.cells() {
            heap.push(c.relocated(base));
        }
        (self.head.relocated(base), self.body.relocated(base))
    }

    /// Read-only access to the stored body (arena-relative), used by load-
    /// time analyses (e.g. detecting a trailing parallel conjunction for
    /// LPCO applicability hints).
    pub fn body_in_arena(&self) -> (&Heap, Cell) {
        (&self.arena, self.body)
    }

    /// Read-only access to the stored head (arena-relative).
    pub fn head_in_arena(&self) -> (&Heap, Cell) {
        (&self.arena, self.head)
    }
}

/// Switch-on-term dispatch table: for every concrete first-argument key
/// seen among the clause heads, the ordinals of the clauses that may match
/// a call with that key — the key's own clauses *merged in source order*
/// with the variable-headed catch-all clauses. Built incrementally as
/// clauses are added; chains are ascending, so stepping to "the next
/// matching clause after `i`" is a binary search, and the match count of
/// a call is one `len()`.
#[derive(Debug, Default)]
struct PredIndex {
    /// Ordinals of clauses whose key is `Any` (variable first argument).
    var_chain: Vec<u32>,
    /// Per concrete key: merged chain of that key's clauses + `Any` clauses.
    buckets: FxHashMap<IndexKey, Vec<u32>>,
}

impl PredIndex {
    fn add(&mut self, ordinal: u32, key: IndexKey) {
        match key {
            IndexKey::Any => {
                // A catch-all clause extends every chain.
                self.var_chain.push(ordinal);
                for chain in self.buckets.values_mut() {
                    chain.push(ordinal);
                }
            }
            k => {
                self.buckets
                    .entry(k)
                    .or_insert_with(|| self.var_chain.clone())
                    .push(ordinal);
            }
        }
    }
}

/// All clauses of one `name/arity` predicate.
#[derive(Debug, Default)]
pub struct Predicate {
    pub clauses: Vec<Arc<Clause>>,
    /// All clause ordinals (the chain served to `Any` calls).
    all: Vec<u32>,
    index: PredIndex,
}

impl Predicate {
    /// Append a clause, keeping the dispatch chains in sync.
    pub fn push(&mut self, clause: Arc<Clause>) {
        let ordinal = self.clauses.len() as u32;
        debug_assert_eq!(clause.ordinal, ordinal as usize);
        self.all.push(ordinal);
        self.index.add(ordinal, clause.key);
        self.clauses.push(clause);
    }

    /// The chain of clause ordinals a call with key `call` must try, in
    /// source order. Non-matching clauses are simply absent.
    pub fn matching_chain(&self, call: IndexKey) -> &[u32] {
        match call {
            IndexKey::Any => &self.all,
            k => self
                .index
                .buckets
                .get(&k)
                .map(|v| &v[..])
                .unwrap_or(&self.index.var_chain),
        }
    }

    /// Indices of clauses whose key may match `call`, starting from clause
    /// `from`. Returns the first such index, or `None`. Served from the
    /// dispatch chains: a binary search, not a scan.
    pub fn next_matching(&self, call: IndexKey, from: usize) -> Option<usize> {
        let chain = self.matching_chain(call);
        let at = chain.partition_point(|&o| (o as usize) < from);
        chain.get(at).map(|&o| o as usize)
    }

    /// The interpreter oracle's linear scan over the raw clause list —
    /// exactly what `next_matching` did before the dispatch chains. Kept
    /// for the interpreted execution mode (whose cost model charges the
    /// scan) and as a property-test oracle for the chains.
    pub fn next_matching_scan(&self, call: IndexKey, from: usize) -> Option<usize> {
        (from..self.clauses.len()).find(|&i| self.clauses[i].key.may_match(call))
    }

    /// How many clauses may match `call`? (Runtime determinacy query: a
    /// call with exactly one matching clause is *determinate*.) O(1) from
    /// the dispatch chains.
    pub fn match_count(&self, call: IndexKey) -> usize {
        self.matching_chain(call).len()
    }

    /// The dispatch table for diagnostics (`:listing`): `(key, chain)`
    /// pairs sorted by key text, followed by the var fallback chain.
    pub fn index_buckets(&self) -> Vec<(String, Vec<u32>)> {
        let mut out: Vec<(String, Vec<u32>)> = self
            .index
            .buckets
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        out.sort();
        out.push(("var (fallback)".into(), self.index.var_chain.clone()));
        out
    }
}

/// Errors produced while loading a program into a database.
#[derive(Debug)]
pub enum LoadError {
    Read(ReadError),
    BadClause(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Read(e) => write!(f, "{e}"),
            LoadError::BadClause(m) => write!(f, "bad clause: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ReadError> for LoadError {
    fn from(e: ReadError) -> Self {
        LoadError::Read(e)
    }
}

/// The program database: immutable once loaded, shared by all machines via
/// `Arc<Database>`.
#[derive(Debug, Default)]
pub struct Database {
    preds: FxHashMap<(Sym, u32), Predicate>,
    /// `?- Goal` / `:- Goal` directives in source order, each as its own
    /// arena (same relocatable representation as clause bodies).
    directives: Vec<Arc<Clause>>,
    /// Predicates declared tabled via `:- table(name/arity).`; the
    /// machine routes calls on these through SLG evaluation instead of
    /// plain clause resolution.
    tabled: HashSet<(Sym, u32)>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Parse and load a program text.
    pub fn load(src: &str) -> Result<Database, LoadError> {
        let mut db = Database::new();
        db.consult(src)?;
        Ok(db)
    }

    /// Add the clauses of `src` to this database.
    pub fn consult(&mut self, src: &str) -> Result<(), LoadError> {
        for rc in parse_program(src)? {
            // Directive?
            if let TermView::Struct(f, 1, hdr) = view(&rc.arena, rc.root) {
                if f == wk().query_neck || f == wk().clause_neck {
                    let goal = rc.arena.str_arg(hdr, 0);
                    // `:- table(p/2, q/3).` declares tabled predicates;
                    // it is consumed at load time, not run as a goal.
                    if self.try_table_directive(&rc.arena, goal)? {
                        continue;
                    }
                    let arena = rc.arena.clone();
                    let code = CompiledCode::compile(&arena, Cell::Atom(wk().true_), goal);
                    self.directives.push(Arc::new(Clause {
                        arena,
                        head: Cell::Atom(wk().true_),
                        body: goal,
                        key: IndexKey::Any,
                        ordinal: self.directives.len(),
                        code,
                    }));
                    continue;
                }
            }
            self.add_clause(rc).map_err(LoadError::BadClause)?;
        }
        Ok(())
    }

    /// Add one parsed clause.
    pub fn add_clause(&mut self, rc: ReadClause) -> Result<(), String> {
        let clause = Clause::from_read(rc, 0)?;
        let fa = clause.head_functor();
        let pred = self.preds.entry(fa).or_default();
        let mut clause = clause;
        clause.ordinal = pred.clauses.len();
        pred.push(Arc::new(clause));
        Ok(())
    }

    /// If `goal` is a `table(Spec)` directive body, record its specs and
    /// return `Ok(true)`. Specs are `name/arity` terms, possibly joined
    /// by `,` — e.g. `:- table(path/2).` or `:- table(p/1, q/2).`.
    fn try_table_directive(&mut self, arena: &Heap, goal: Cell) -> Result<bool, LoadError> {
        let TermView::Struct(f, _, hdr) = view(arena, goal) else {
            return Ok(false);
        };
        if f != sym("table") {
            return Ok(false);
        }
        let TermView::Struct(_, n, _) = view(arena, goal) else {
            unreachable!()
        };
        let mut specs = Vec::new();
        for i in 0..n {
            self.collect_table_specs(arena, arena.str_arg(hdr, i), &mut specs)?;
        }
        for (name, arity) in specs {
            self.tabled.insert((name, arity));
        }
        Ok(true)
    }

    /// Walk a (possibly `,`-joined) table spec term, collecting
    /// `name/arity` pairs.
    fn collect_table_specs(
        &self,
        arena: &Heap,
        spec: Cell,
        out: &mut Vec<(Sym, u32)>,
    ) -> Result<(), LoadError> {
        match view(arena, spec) {
            TermView::Struct(f, 2, hdr) if f == wk().comma => {
                self.collect_table_specs(arena, arena.str_arg(hdr, 0), out)?;
                self.collect_table_specs(arena, arena.str_arg(hdr, 1), out)
            }
            TermView::Struct(f, 2, hdr) if f == wk().slash => {
                let name = view(arena, arena.str_arg(hdr, 0));
                let arity = view(arena, arena.str_arg(hdr, 1));
                match (name, arity) {
                    (TermView::Atom(s), TermView::Int(a)) if a >= 0 => {
                        out.push((s, a as u32));
                        Ok(())
                    }
                    _ => Err(LoadError::BadClause(
                        "table/1 expects name/arity specs".into(),
                    )),
                }
            }
            _ => Err(LoadError::BadClause(
                "table/1 expects name/arity specs".into(),
            )),
        }
    }

    /// Declare `name/arity` tabled programmatically (tests, embedding).
    pub fn declare_tabled(&mut self, name: Sym, arity: u32) {
        self.tabled.insert((name, arity));
    }

    /// Was `name/arity` declared tabled?
    pub fn is_tabled(&self, name: Sym, arity: u32) -> bool {
        self.tabled.contains(&(name, arity))
    }

    /// Any tabled declarations at all? (Engines use this to skip tabled
    /// bookkeeping entirely on untabled programs.)
    pub fn has_tabled(&self) -> bool {
        !self.tabled.is_empty()
    }

    /// Look up a predicate.
    pub fn predicate(&self, name: Sym, arity: u32) -> Option<&Predicate> {
        self.preds.get(&(name, arity))
    }

    /// The `?-`/`:-` directives found while loading, in order.
    pub fn directives(&self) -> &[Arc<Clause>] {
        &self.directives
    }

    /// Iterate all `(name, arity)` pairs defined (diagnostics).
    pub fn predicates(&self) -> impl Iterator<Item = (Sym, u32)> + '_ {
        self.preds.keys().copied()
    }

    /// Total clause count (diagnostics).
    pub fn clause_count(&self) -> usize {
        self.preds.values().map(|p| p.clauses.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;
    use crate::term::proper_list;
    use crate::unify::unify;

    const MEMBER: &str = r#"
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
    "#;

    #[test]
    fn load_and_lookup() {
        let db = Database::load(MEMBER).unwrap();
        let p = db.predicate(sym("member"), 2).unwrap();
        assert_eq!(p.clauses.len(), 2);
        assert_eq!(db.clause_count(), 2);
    }

    #[test]
    fn index_keys() {
        let db = Database::load(
            "p(a). p(b). p(42). p([H|T]) :- q(H, T). p([]). p(f(X)) :- r(X). p(Y) :- s(Y).",
        )
        .unwrap();
        let p = db.predicate(sym("p"), 1).unwrap();
        assert_eq!(p.clauses[0].key, IndexKey::Atom(sym("a")));
        assert_eq!(p.clauses[2].key, IndexKey::Int(42));
        assert_eq!(p.clauses[3].key, IndexKey::List);
        assert_eq!(p.clauses[4].key, IndexKey::Nil);
        assert_eq!(p.clauses[5].key, IndexKey::Struct(sym("f"), 1));
        assert_eq!(p.clauses[6].key, IndexKey::Any);

        // call p(a): matches clause 0 and the catch-all clause 6
        assert_eq!(p.match_count(IndexKey::Atom(sym("a"))), 2);
        // call p(X): matches everything
        assert_eq!(p.match_count(IndexKey::Any), 7);
        // call p(g(1)): only the catch-all
        assert_eq!(p.match_count(IndexKey::Struct(sym("g"), 1)), 1);
        // determinacy: p(99) matches... Int(42) doesn't match 99
        assert_eq!(p.match_count(IndexKey::Int(99)), 1);
    }

    #[test]
    fn next_matching_scans() {
        let db = Database::load("q(a). q(b). q(a).").unwrap();
        let p = db.predicate(sym("q"), 1).unwrap();
        let key = IndexKey::Atom(sym("a"));
        assert_eq!(p.next_matching(key, 0), Some(0));
        assert_eq!(p.next_matching(key, 1), Some(2));
        assert_eq!(p.next_matching(key, 3), None);
    }

    #[test]
    fn chain_dispatch_equals_linear_scan() {
        let db = Database::load(
            "p(a). p(b). p(42). p([H|T]) :- q(H, T). p([]). p(f(X)) :- r(X). p(Y) :- s(Y). p(a).",
        )
        .unwrap();
        let p = db.predicate(sym("p"), 1).unwrap();
        let keys = [
            IndexKey::Any,
            IndexKey::Atom(sym("a")),
            IndexKey::Atom(sym("zz")),
            IndexKey::Int(42),
            IndexKey::Int(7),
            IndexKey::List,
            IndexKey::Nil,
            IndexKey::Struct(sym("f"), 1),
            IndexKey::Struct(sym("f"), 2),
        ];
        for key in keys {
            for from in 0..=p.clauses.len() {
                assert_eq!(
                    p.next_matching(key, from),
                    p.next_matching_scan(key, from),
                    "key {key} from {from}"
                );
            }
        }
    }

    #[test]
    fn match_count_served_from_buckets() {
        // Regression for the O(clauses) determinacy probe: match_count is
        // now chain.len(). Include a catch-all added *after* concrete
        // clauses and concrete clauses added after the catch-all, so the
        // incremental merge is exercised in both directions.
        let db = Database::load("m(a). m(b). m(X) :- x(X). m(a). m(c).").unwrap();
        let p = db.predicate(sym("m"), 1).unwrap();
        assert_eq!(p.match_count(IndexKey::Atom(sym("a"))), 3); // 0, 2, 3
        assert_eq!(p.match_count(IndexKey::Atom(sym("b"))), 2); // 1, 2
        assert_eq!(p.match_count(IndexKey::Atom(sym("c"))), 2); // 2, 4
        assert_eq!(p.match_count(IndexKey::Atom(sym("z"))), 1); // 2 only
        assert_eq!(p.match_count(IndexKey::Any), 5);
        assert_eq!(p.matching_chain(IndexKey::Atom(sym("a"))), &[0, 2, 3]);
        assert_eq!(p.matching_chain(IndexKey::Int(9)), &[2]);
    }

    #[test]
    fn index_buckets_are_reportable() {
        let db = Database::load("p(a). p(f(X)) :- q(X). p(Y) :- r(Y).").unwrap();
        let p = db.predicate(sym("p"), 1).unwrap();
        let buckets = p.index_buckets();
        assert!(buckets.iter().any(|(k, v)| k == "a" && v == &[0, 2]));
        assert!(buckets.iter().any(|(k, v)| k == "f/1" && v == &[1, 2]));
        assert!(buckets
            .iter()
            .any(|(k, v)| k.starts_with("var") && v == &[2]));
    }

    #[test]
    fn instantiate_renames_variables() {
        let db = Database::load(MEMBER).unwrap();
        let p = db.predicate(sym("member"), 2).unwrap();
        let mut heap = Heap::new();
        let (h1, _) = p.clauses[0].instantiate(&mut heap);
        let (h2, _) = p.clauses[0].instantiate(&mut heap);
        // two instantiations have distinct variables: unifying them binds
        // fresh-to-fresh without clashing
        assert!(unify(&mut heap, h1, h2).is_some());
    }

    #[test]
    fn instantiated_clause_unifies_with_call() {
        let db = Database::load(MEMBER).unwrap();
        let p = db.predicate(sym("member"), 2).unwrap();
        let mut heap = Heap::new();
        // call: member(E, [1,2])
        let e = heap.new_var();
        let l = heap.list(&[Cell::Int(1), Cell::Int(2)]);
        let call = heap.new_struct(sym("member"), &[e, l]);
        let (head, body) = p.clauses[0].instantiate(&mut heap);
        assert!(unify(&mut heap, call, head).is_some());
        assert_eq!(heap.deref(e), Cell::Int(1));
        assert_eq!(heap.deref(body), Cell::Atom(wk().true_));
    }

    #[test]
    fn facts_have_true_body() {
        let db = Database::load("f(1).").unwrap();
        let p = db.predicate(sym("f"), 1).unwrap();
        let (arena, body) = p.clauses[0].body_in_arena();
        assert_eq!(arena.deref(body), Cell::Atom(wk().true_));
    }

    #[test]
    fn directives_collected() {
        let db = Database::load("p(1). ?- p(X). :- p(1).").unwrap();
        assert_eq!(db.directives().len(), 2);
    }

    #[test]
    fn table_directive_declares_predicates() {
        let db = Database::load(
            ":- table(path/2).\n\
             path(X, Y) :- path(X, Z), edge(Z, Y).\n\
             path(X, Y) :- edge(X, Y).\n\
             edge(a, b).",
        )
        .unwrap();
        assert!(db.is_tabled(sym("path"), 2));
        assert!(!db.is_tabled(sym("edge"), 2));
        assert!(db.has_tabled());
        // the directive is consumed, not kept as a runnable goal
        assert_eq!(db.directives().len(), 0);
    }

    #[test]
    fn table_directive_accepts_comma_lists_and_multiple_args() {
        let db = Database::load(":- table(p/1, (q/2, r/0)). p(1). q(1,2). r.").unwrap();
        assert!(db.is_tabled(sym("p"), 1));
        assert!(db.is_tabled(sym("q"), 2));
        assert!(db.is_tabled(sym("r"), 0));
    }

    #[test]
    fn malformed_table_directive_is_rejected() {
        assert!(Database::load(":- table(p).").is_err());
        assert!(Database::load(":- table(p/x).").is_err());
    }

    #[test]
    fn declare_tabled_programmatically() {
        let mut db = Database::load("p(1).").unwrap();
        assert!(!db.has_tabled());
        db.declare_tabled(sym("p"), 1);
        assert!(db.is_tabled(sym("p"), 1));
    }

    #[test]
    fn zero_arity_predicates() {
        let db = Database::load("go :- step. step.").unwrap();
        assert!(db.predicate(sym("go"), 0).is_some());
        assert!(db.predicate(sym("step"), 0).is_some());
    }

    #[test]
    fn bad_head_rejected() {
        assert!(Database::load("42 :- q.").is_err());
        assert!(Database::load("[a] :- q.").is_err());
    }

    #[test]
    fn clause_arena_is_self_contained() {
        let db = Database::load("p([H|T], f(H)) :- q(T).").unwrap();
        let p = db.predicate(sym("p"), 2).unwrap();
        let c = &p.clauses[0];
        // every relocatable cell points within the arena
        for cell in c.head_in_arena().0.cells() {
            if let Cell::Ref(a) | Cell::Str(a) | Cell::Lst(a) = cell {
                assert!((a.idx()) < c.arena_len());
            }
        }
    }

    #[test]
    fn instantiate_list_heads() {
        let db = Database::load("first([H|_], H).").unwrap();
        let p = db.predicate(sym("first"), 2).unwrap();
        let mut heap = Heap::new();
        let x = heap.new_var();
        let l = heap.list(&[Cell::Int(7), Cell::Int(8)]);
        let call = heap.new_struct(sym("first"), &[l, x]);
        let (head, _) = p.clauses[0].instantiate(&mut heap);
        assert!(unify(&mut heap, call, head).is_some());
        assert_eq!(heap.deref(x), Cell::Int(7));
        let items = proper_list(&heap, l).unwrap();
        assert_eq!(items.len(), 2);
    }
}
