//! Global symbol (atom / functor name) interner.
//!
//! Symbols are process-global so that terms can be shipped between engine
//! machines (goal shipping, or-parallel state copying) without any name
//! translation: a [`Sym`] is a plain `u32` index valid in every heap.
//!
//! The table is append-only and guarded by an `RwLock`; lookups of already
//! interned names take the read path only. A fixed set of *well-known*
//! symbols (control constructs, operators, common atoms) is interned at
//! table construction with stable indices, so the hot paths of the engines
//! compare against pre-computed constants via [`wk()`].

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned symbol: the name of an atom or functor.
///
/// `Sym` is `Copy` and valid across all heaps and threads in the process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The interner index of this symbol.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// The textual name of this symbol.
    pub fn name(self) -> String {
        sym_name(self)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({}:{})", self.0, sym_name(*self))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", sym_name(*self))
    }
}

struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    fn new() -> Self {
        let mut it = Interner {
            names: Vec::with_capacity(256),
            by_name: HashMap::with_capacity(256),
        };
        // Well-known symbols, in the exact order of the `WellKnown`
        // constructor below. Interning them first gives them stable indices.
        for s in WELL_KNOWN_NAMES {
            it.intern(s);
        }
        it
    }

    fn intern(&mut self, name: &str) -> Sym {
        if let Some(&i) = self.by_name.get(name) {
            return Sym(i);
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), i);
        Sym(i)
    }
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

/// Intern `name`, returning its global symbol.
///
/// The interner lock tolerates poisoning: interning only appends, so a
/// panic while holding the lock cannot leave the table inconsistent, and
/// one dead worker must not poison symbol access for every later run.
pub fn sym(name: &str) -> Sym {
    {
        let rd = interner().read().unwrap_or_else(|e| e.into_inner());
        if let Some(&i) = rd.by_name.get(name) {
            return Sym(i);
        }
    }
    interner()
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .intern(name)
}

/// The textual name of `s`. Panics if `s` did not come from [`sym`].
pub fn sym_name(s: Sym) -> String {
    interner().read().unwrap_or_else(|e| e.into_inner()).names[s.0 as usize].clone()
}

/// Number of symbols interned so far (diagnostics only).
pub fn interned_count() -> usize {
    interner()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .names
        .len()
}

const WELL_KNOWN_NAMES: &[&str] = &[
    ",",
    "&",
    ";",
    "->",
    ":-",
    "?-",
    "!",
    "true",
    "fail",
    "false",
    "[]",
    ".",
    "=",
    "\\=",
    "==",
    "\\==",
    "is",
    "=:=",
    "=\\=",
    "<",
    ">",
    "=<",
    ">=",
    "+",
    "-",
    "*",
    "/",
    "//",
    "mod",
    "rem",
    "abs",
    "min",
    "max",
    "\\+",
    "var",
    "nonvar",
    "atom",
    "number",
    "integer",
    "atomic",
    "compound",
    "functor",
    "arg",
    "=..",
    "copy_term",
    "call",
    "halt",
    "write",
    "nl",
    "between",
    "length",
    "ground",
    "compare",
    "@<",
    "@>",
    "@=<",
    "@>=",
    "succ_or_zero",
    "tab",
    "not",
    "\\",
    ">>",
    "<<",
    "^",
    "writeln",
];

/// Pre-interned well-known symbols used on engine hot paths.
#[derive(Debug)]
pub struct WellKnown {
    pub comma: Sym,
    pub amp: Sym,
    pub semicolon: Sym,
    pub arrow: Sym,
    pub clause_neck: Sym,
    pub query_neck: Sym,
    pub cut: Sym,
    pub true_: Sym,
    pub fail: Sym,
    pub false_: Sym,
    pub nil: Sym,
    pub dot: Sym,
    pub unify: Sym,
    pub not_unify: Sym,
    pub struct_eq: Sym,
    pub struct_ne: Sym,
    pub is: Sym,
    pub arith_eq: Sym,
    pub arith_ne: Sym,
    pub lt: Sym,
    pub gt: Sym,
    pub le: Sym,
    pub ge: Sym,
    pub plus: Sym,
    pub minus: Sym,
    pub star: Sym,
    pub slash: Sym,
    pub int_div: Sym,
    pub mod_: Sym,
    pub rem: Sym,
    pub abs: Sym,
    pub min: Sym,
    pub max: Sym,
    pub naf: Sym,
    pub var_: Sym,
    pub nonvar: Sym,
    pub atom_: Sym,
    pub number: Sym,
    pub integer: Sym,
    pub atomic: Sym,
    pub compound: Sym,
    pub functor: Sym,
    pub arg: Sym,
    pub univ: Sym,
    pub copy_term: Sym,
    pub call: Sym,
    pub halt: Sym,
    pub write: Sym,
    pub nl: Sym,
    pub between: Sym,
    pub length: Sym,
    pub ground: Sym,
    pub compare: Sym,
    pub term_lt: Sym,
    pub term_gt: Sym,
    pub term_le: Sym,
    pub term_ge: Sym,
    pub not: Sym,
    pub writeln: Sym,
}

static WK: OnceLock<WellKnown> = OnceLock::new();

/// Access the well-known symbol table (cheap after first call).
pub fn wk() -> &'static WellKnown {
    WK.get_or_init(|| WellKnown {
        comma: sym(","),
        amp: sym("&"),
        semicolon: sym(";"),
        arrow: sym("->"),
        clause_neck: sym(":-"),
        query_neck: sym("?-"),
        cut: sym("!"),
        true_: sym("true"),
        fail: sym("fail"),
        false_: sym("false"),
        nil: sym("[]"),
        dot: sym("."),
        unify: sym("="),
        not_unify: sym("\\="),
        struct_eq: sym("=="),
        struct_ne: sym("\\=="),
        is: sym("is"),
        arith_eq: sym("=:="),
        arith_ne: sym("=\\="),
        lt: sym("<"),
        gt: sym(">"),
        le: sym("=<"),
        ge: sym(">="),
        plus: sym("+"),
        minus: sym("-"),
        star: sym("*"),
        slash: sym("/"),
        int_div: sym("//"),
        mod_: sym("mod"),
        rem: sym("rem"),
        abs: sym("abs"),
        min: sym("min"),
        max: sym("max"),
        naf: sym("\\+"),
        var_: sym("var"),
        nonvar: sym("nonvar"),
        atom_: sym("atom"),
        number: sym("number"),
        integer: sym("integer"),
        atomic: sym("atomic"),
        compound: sym("compound"),
        functor: sym("functor"),
        arg: sym("arg"),
        univ: sym("=.."),
        copy_term: sym("copy_term"),
        call: sym("call"),
        halt: sym("halt"),
        write: sym("write"),
        nl: sym("nl"),
        between: sym("between"),
        length: sym("length"),
        ground: sym("ground"),
        compare: sym("compare"),
        term_lt: sym("@<"),
        term_gt: sym("@>"),
        term_le: sym("@=<"),
        term_ge: sym("@>="),
        not: sym("not"),
        writeln: sym("writeln"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = sym("hello");
        let b = sym("hello");
        assert_eq!(a, b);
        assert_eq!(sym_name(a), "hello");
    }

    #[test]
    fn distinct_names_distinct_syms() {
        assert_ne!(sym("foo"), sym("bar"));
    }

    #[test]
    fn well_known_match_plain_interning() {
        assert_eq!(wk().comma, sym(","));
        assert_eq!(wk().amp, sym("&"));
        assert_eq!(wk().nil, sym("[]"));
        assert_eq!(wk().univ, sym("=.."));
    }

    #[test]
    fn empty_and_unicode_names() {
        let e = sym("");
        assert_eq!(sym_name(e), "");
        let u = sym("λx");
        assert_eq!(sym_name(u), "λx");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names: Vec<String> = (0..64).map(|i| format!("c{i}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || names.iter().map(|n| sym(n)).collect::<Vec<_>>())
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
