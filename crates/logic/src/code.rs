//! Clause compilation to a register-based code cache.
//!
//! The interpreter executes a call by block-copying the whole clause arena
//! into the runtime heap and then general-unifying the copied head against
//! the call (`Clause::instantiate` + `unify`). That pays for every arena
//! cell — including body cells that a failing head match never needed — and
//! runs the full unification machinery even when the head is a pattern that
//! could be matched by a handful of specialized comparisons.
//!
//! This module compiles each clause, once at load time, into:
//!
//! * **head code** — a flat sequence of WAM-flavored [`Instr`]s
//!   (`get_*`/`unify_*`) that matches the call's argument registers
//!   directly against the head pattern, binding call variables in place.
//!   Nested compounds are flattened through temporary *slots* (the WAM's
//!   X registers), so execution is a single non-recursive scan;
//! * **body steps** — the body's top-level conjunction flattened into
//!   per-conjunct templates (cells pre-relocated, variable occurrences
//!   either slot references or fresh self-references). Arithmetic tests
//!   (`<`, `=<`, …), `is/2` and `=/2` conjuncts are tagged for *inline*
//!   execution: the machine evaluates them straight off the template and
//!   the slot registers, so a failing guard never materializes the rest
//!   of the body, and an `( ArithTest -> Then ; Else )` body selects its
//!   branch at clause entry without allocating a choice point. Remaining
//!   goals materialize one at a time behind a `'$body'` continuation
//!   marker; facts skip body work entirely.
//!
//! The executor ([`run_head`]) is read/write-mode WAM matching: against a
//! bound compound it walks the existing cells (read mode); against an
//! unbound variable it builds the pattern on the heap and binds (write
//! mode). Slot cells always denote heap terms — `UnifyVar` in write mode
//! allocates a real heap variable — so there is no unsafe-value problem.

use std::collections::{HashMap, VecDeque};

use crate::heap::{Addr, Cell, Heap};
use crate::sym::{sym_name, wk, Sym};
use crate::term::{view, TermView};
use crate::unify::unify;

/// Body-template addresses `>= SLOT_BASE` denote slot indices rather than
/// template-relative cells (`Ref(SLOT_BASE + s)` reads slot `s`).
pub const SLOT_BASE: u32 = 0x8000_0000;

/// Sentinel for a slot no instruction has written yet. `Addr(u32::MAX)`
/// can never be a real heap address (heaps are bounded well below it), so
/// the executor can distinguish "unset" from any captured cell — including
/// a captured `[]`.
pub const UNSET_SLOT: Cell = Cell::Ref(Addr(u32::MAX));

/// One compiled head instruction.
///
/// `Get*` instructions match an argument register of the call; `Slot*`
/// instructions match a deferred nested compound captured earlier into a
/// slot; `Unify*` instructions handle the subterms of the most recent
/// `Get*`/`Slot*` compound, in read or write mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// First occurrence of a variable at argument `arg`: capture the raw
    /// argument cell into `slot`.
    GetVar { slot: u16, arg: u16 },
    /// Later occurrence: general-unify `slot` with argument `arg`.
    GetVal { slot: u16, arg: u16 },
    /// Argument `arg` must be the constant `what` (or an unbound variable,
    /// which is bound to it).
    GetConst { what: Cell, arg: u16 },
    /// Argument `arg` must be a structure `f/n` (read mode) or an unbound
    /// variable (write mode: build and bind). The next `n` instructions
    /// are `Unify*` forms handling the arguments.
    GetStruct { f: Sym, n: u32, arg: u16 },
    /// Argument `arg` must be a list pair; the next 2 instructions handle
    /// head and tail.
    GetList { arg: u16 },
    /// Like `GetStruct`, but matched against the term captured in `slot`
    /// (a flattened nested compound).
    SlotStruct { f: Sym, n: u32, slot: u16 },
    /// Like `GetList`, against `slot`.
    SlotList { slot: u16 },
    /// Subterm: first occurrence of a variable — capture (read) or
    /// allocate a fresh heap variable (write) into `slot`.
    UnifyVar { slot: u16 },
    /// Subterm: later occurrence — general-unify with `slot` (read) or
    /// push the slot's term (write).
    UnifyVal { slot: u16 },
    /// Subterm: the constant `what`.
    UnifyConst { what: Cell },
    /// Subterm: a variable that occurs nowhere else in the clause.
    UnifyVoid,
}

/// One conjunct's pre-relocated cell arena: slot references are encoded as
/// `Ref(SLOT_BASE + slot)`, internal addresses are template-relative.
#[derive(Debug, Clone)]
pub struct StepTemplate {
    pub cells: Vec<Cell>,
    pub root: Cell,
}

impl StepTemplate {
    /// Copy the template onto `heap`, resolving slot references. Returns
    /// the instantiated term and the number of cells written.
    #[inline]
    pub fn instantiate(&self, heap: &mut Heap, slots: &[Cell]) -> (Cell, usize) {
        let base = heap.len() as u32;
        for &c in &self.cells {
            heap.push(resolve(c, base, slots));
        }
        (resolve(self.root, base, slots), self.cells.len())
    }
}

/// How the executor may run one body conjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Materialize the template and dispatch through the continuation.
    Goal,
    /// `A op B` arithmetic test — evaluable straight off the template and
    /// the slot registers, materializing nothing. Bails to
    /// [`StepKind::Goal`] treatment on anything non-arithmetic.
    Compare(Sym),
    /// `V is Expr` — template-evaluated; the result lands in `V`'s slot
    /// (or binds its heap variable) without building the goal term.
    Is,
    /// `A = B` — materialize the operands, then unify in place (skips the
    /// dispatch round-trip and the builtin lookup).
    Unify,
}

/// One conjunct of a compiled clause body.
#[derive(Debug, Clone)]
pub struct BodyStep {
    pub tpl: StepTemplate,
    pub kind: StepKind,
}

/// Compiled body shape.
#[derive(Debug, Clone)]
pub enum CompiledBody {
    /// `true` — nothing to run ("proceed").
    Fact,
    /// Top-level conjunction, flattened into steps executed left to right.
    Steps(Vec<BodyStep>),
    /// `( Cond -> Then ; Else )` whose condition is an arithmetic test:
    /// decided at clause entry with **no choice point** (the test is
    /// deterministic, binds nothing, and the generic machinery would cut
    /// the else-alternative immediately anyway). Branches are step lists
    /// (branch 1 = then, branch 2 = else). If the test bails — an operand
    /// turns out unbound or non-numeric — the whole if-then-else is
    /// rebuilt and handed to the generic control machinery so errors
    /// surface identically to the interpreter.
    IfThenElse {
        cond_op: Sym,
        cond: StepTemplate,
        then_steps: Vec<BodyStep>,
        else_steps: Vec<BodyStep>,
    },
}

/// Compiled form of one clause, cached on the clause DB at load time.
#[derive(Debug, Clone)]
pub struct CompiledCode {
    nslots: u16,
    head: Vec<Instr>,
    body: CompiledBody,
    /// Slots first bound by the body (not touched by head code): any of
    /// these still [`UNSET_SLOT`] when a template is about to be copied
    /// get fresh heap variables (see [`CompiledCode::init_fresh_slots`]).
    body_fresh_slots: Vec<u16>,
}

/// Work metered by [`run_head`] / [`CompiledCode::instantiate_body`] so the
/// machine can charge its refined cost model (per instruction executed,
/// per heap cell written, per general-unification step).
#[derive(Clone, Copy, Default, Debug)]
pub struct ExecCost {
    pub instrs: u64,
    pub cells: u64,
    pub unify_steps: u64,
}

impl CompiledCode {
    /// Compile `head :- body` from its clause arena. `head` must be an
    /// atom or structure (validated by `Clause::from_read`).
    pub fn compile(arena: &Heap, head: Cell, body: Cell) -> CompiledCode {
        let mut counts = HashMap::new();
        count_vars(arena, head, &mut counts);
        count_vars(arena, body, &mut counts);
        let mut c = Compiler {
            arena,
            counts,
            slots: HashMap::new(),
            nslots: 0,
            code: Vec::new(),
            work: VecDeque::new(),
        };
        if let TermView::Struct(_, n, hdr) = view(arena, head) {
            for i in 0..n {
                c.emit_arg(arena.str_arg(hdr, i), i as u16);
            }
            while let Some((slot, t)) = c.work.pop_front() {
                c.emit_deferred(slot, t);
            }
        }
        let mut fresh = Vec::new();
        let body = c.compile_body(body, &mut fresh);
        CompiledCode {
            nslots: c.nslots,
            head: c.code,
            body,
            body_fresh_slots: fresh,
        }
    }

    /// Number of variable/temporary slots the executor needs.
    pub fn nslots(&self) -> usize {
        self.nslots as usize
    }

    /// The head instruction sequence.
    pub fn head_code(&self) -> &[Instr] {
        &self.head
    }

    /// The compiled body shape.
    pub fn body(&self) -> &CompiledBody {
        &self.body
    }

    /// Total template cells across the body (instantiation cost metric).
    pub fn body_len(&self) -> usize {
        match &self.body {
            CompiledBody::Fact => 0,
            CompiledBody::Steps(steps) => steps.iter().map(|s| s.tpl.cells.len()).sum(),
            CompiledBody::IfThenElse {
                cond,
                then_steps,
                else_steps,
                ..
            } => {
                cond.cells.len()
                    + then_steps.iter().map(|s| s.tpl.cells.len()).sum::<usize>()
                    + else_steps.iter().map(|s| s.tpl.cells.len()).sum::<usize>()
            }
        }
    }

    /// Is the body the atom `true`? Facts skip body instantiation and
    /// body dispatch entirely.
    pub fn is_fact(&self) -> bool {
        matches!(self.body, CompiledBody::Fact)
    }

    /// The step list of `branch` (0 = plain conjunction, 1 = then,
    /// 2 = else).
    pub fn steps(&self, branch: u8) -> &[BodyStep] {
        match (&self.body, branch) {
            (CompiledBody::Steps(s), 0) => s,
            (CompiledBody::IfThenElse { then_steps, .. }, 1) => then_steps,
            (CompiledBody::IfThenElse { else_steps, .. }, 2) => else_steps,
            (b, n) => unreachable!("no branch {n} in {b:?}"),
        }
    }

    /// Fill every still-[`UNSET_SLOT`] body-first slot with a fresh heap
    /// variable (slots an inline `is` already scratch-set keep their
    /// integer — no heap cell is ever allocated for them). Must run
    /// before any body template is copied. Returns cells written.
    pub fn init_fresh_slots(&self, heap: &mut Heap, slots: &mut [Cell]) -> usize {
        let mut cells = 0;
        for &s in &self.body_fresh_slots {
            if slots[s as usize] == UNSET_SLOT {
                slots[s as usize] = heap.new_var();
                cells += 1;
            }
        }
        cells
    }

    /// Materialize steps `from..` of `branch` as one (right-nested)
    /// conjunction term. Returns the term and the cells written.
    pub fn materialize_steps(
        &self,
        heap: &mut Heap,
        slots: &[Cell],
        branch: u8,
        from: usize,
    ) -> (Cell, usize) {
        let steps = self.steps(branch);
        let mut cells = 0;
        let mut goals = Vec::with_capacity(steps.len() - from);
        for st in &steps[from..] {
            let (g, n) = st.tpl.instantiate(heap, slots);
            goals.push(g);
            cells += n;
        }
        let comma = wk().comma;
        let mut t = goals.pop().expect("empty step list");
        for g in goals.into_iter().rev() {
            t = heap.new_struct(comma, &[g, t]);
            cells += 3;
        }
        (t, cells)
    }

    /// Instantiate the whole body on `heap` as a single term — the
    /// interpreter-equivalent form, used when inline execution bails and
    /// by tooling. Initializes fresh slots first. Returns the body term
    /// and the heap cells written.
    pub fn instantiate_body(&self, heap: &mut Heap, slots: &mut [Cell]) -> (Cell, usize) {
        let mut cells = self.init_fresh_slots(heap, slots);
        let w = wk();
        match &self.body {
            CompiledBody::Fact => (Cell::Atom(w.true_), cells),
            CompiledBody::Steps(_) => {
                let (t, n) = self.materialize_steps(heap, slots, 0, 0);
                (t, cells + n)
            }
            CompiledBody::IfThenElse { cond, .. } => {
                let (c, n1) = cond.instantiate(heap, slots);
                let (t, n2) = self.materialize_steps(heap, slots, 1, 0);
                let (e, n3) = self.materialize_steps(heap, slots, 2, 0);
                let ite = heap.new_struct(w.arrow, &[c, t]);
                let whole = heap.new_struct(w.semicolon, &[ite, e]);
                cells += n1 + n2 + n3 + 6;
                (whole, cells)
            }
        }
    }

    /// Human-readable disassembly (repl `:listing`, examples, tests).
    pub fn disassemble(&self) -> Vec<String> {
        let cst = |c: &Cell| match *c {
            Cell::Atom(s) => sym_name(s),
            Cell::Int(i) => i.to_string(),
            Cell::Nil => "[]".into(),
            other => format!("{other:?}"),
        };
        let mut out = Vec::with_capacity(self.head.len() + 1);
        for ins in &self.head {
            out.push(match *ins {
                Instr::GetVar { slot, arg } => format!("get_var       X{slot}, A{arg}"),
                Instr::GetVal { slot, arg } => format!("get_val       X{slot}, A{arg}"),
                Instr::GetConst { ref what, arg } => {
                    format!("get_const     {}, A{arg}", cst(what))
                }
                Instr::GetStruct { f, n, arg } => {
                    format!("get_struct    {}/{n}, A{arg}", sym_name(f))
                }
                Instr::GetList { arg } => format!("get_list      A{arg}"),
                Instr::SlotStruct { f, n, slot } => {
                    format!("slot_struct   {}/{n}, X{slot}", sym_name(f))
                }
                Instr::SlotList { slot } => format!("slot_list     X{slot}"),
                Instr::UnifyVar { slot } => format!("unify_var     X{slot}"),
                Instr::UnifyVal { slot } => format!("unify_val     X{slot}"),
                Instr::UnifyConst { ref what } => format!("unify_const   {}", cst(what)),
                Instr::UnifyVoid => "unify_void".into(),
            });
        }
        let step_line = |st: &BodyStep, indent: &str| match st.kind {
            StepKind::Goal => format!(
                "{indent}body_goal     % {} template cells",
                st.tpl.cells.len()
            ),
            StepKind::Compare(op) => format!("{indent}test          {}/2 % inline", sym_name(op)),
            StepKind::Is => format!("{indent}eval_is       % inline, slot result"),
            StepKind::Unify => format!("{indent}get_value     % inline =/2"),
        };
        match &self.body {
            CompiledBody::Fact => out.push("proceed       % fact".into()),
            CompiledBody::Steps(steps) => {
                for st in steps {
                    out.push(step_line(st, ""));
                }
            }
            CompiledBody::IfThenElse {
                cond_op,
                then_steps,
                else_steps,
                ..
            } => {
                out.push(format!(
                    "switch_test   {}/2 % if-then-else, no choice point",
                    sym_name(*cond_op)
                ));
                for st in then_steps {
                    out.push(step_line(st, "  then: "));
                }
                for st in else_steps {
                    out.push(step_line(st, "  else: "));
                }
            }
        }
        if !self.is_fact() {
            out.push(format!(
                "% {} body template cells, {} fresh vars",
                self.body_len(),
                self.body_fresh_slots.len()
            ));
        }
        out
    }
}

#[inline]
fn resolve(c: Cell, base: u32, slots: &[Cell]) -> Cell {
    match c {
        Cell::Ref(a) if a.0 >= SLOT_BASE => slots[(a.0 - SLOT_BASE) as usize],
        other => other.relocated(base),
    }
}

fn count_vars(arena: &Heap, t: Cell, counts: &mut HashMap<u32, u32>) {
    let mut stack = vec![t];
    while let Some(c) = stack.pop() {
        match view(arena, c) {
            TermView::Var(a) => *counts.entry(a.0).or_insert(0) += 1,
            TermView::Struct(_, n, hdr) => {
                for i in 0..n {
                    stack.push(arena.str_arg(hdr, i));
                }
            }
            TermView::List(p) => {
                stack.push(arena.lst_head(p));
                stack.push(arena.lst_tail(p));
            }
            _ => {}
        }
    }
}

struct Compiler<'a> {
    arena: &'a Heap,
    counts: HashMap<u32, u32>,
    slots: HashMap<u32, u16>,
    nslots: u16,
    code: Vec<Instr>,
    /// Nested compounds deferred to keep each compound's `Unify*` group
    /// contiguous: `(slot holding the subterm, arena term)`, FIFO.
    work: VecDeque<(u16, Cell)>,
}

impl<'a> Compiler<'a> {
    /// Slot for variable `a`; the bool is `true` on first allocation.
    fn slot_of(&mut self, a: Addr) -> (u16, bool) {
        if let Some(&s) = self.slots.get(&a.0) {
            return (s, false);
        }
        let s = self.fresh_slot();
        self.slots.insert(a.0, s);
        (s, true)
    }

    fn fresh_slot(&mut self) -> u16 {
        let s = self.nslots;
        self.nslots = self.nslots.checked_add(1).expect("clause slot overflow");
        s
    }

    fn emit_arg(&mut self, t: Cell, arg: u16) {
        match view(self.arena, t) {
            TermView::Var(a) => {
                if self.counts[&a.0] == 1 {
                    return; // single-occurrence argument: matches anything
                }
                let (slot, new) = self.slot_of(a);
                self.code.push(if new {
                    Instr::GetVar { slot, arg }
                } else {
                    Instr::GetVal { slot, arg }
                });
            }
            TermView::Atom(s) => self.code.push(Instr::GetConst {
                what: Cell::Atom(s),
                arg,
            }),
            TermView::Int(i) => self.code.push(Instr::GetConst {
                what: Cell::Int(i),
                arg,
            }),
            TermView::Nil => self.code.push(Instr::GetConst {
                what: Cell::Nil,
                arg,
            }),
            TermView::Struct(f, n, hdr) => {
                self.code.push(Instr::GetStruct { f, n, arg });
                for i in 0..n {
                    self.emit_child(self.arena.str_arg(hdr, i));
                }
            }
            TermView::List(p) => {
                self.code.push(Instr::GetList { arg });
                self.emit_child(self.arena.lst_head(p));
                self.emit_child(self.arena.lst_tail(p));
            }
        }
    }

    fn emit_child(&mut self, t: Cell) {
        match view(self.arena, t) {
            TermView::Var(a) => {
                if self.counts[&a.0] == 1 {
                    self.code.push(Instr::UnifyVoid);
                    return;
                }
                let (slot, new) = self.slot_of(a);
                self.code.push(if new {
                    Instr::UnifyVar { slot }
                } else {
                    Instr::UnifyVal { slot }
                });
            }
            TermView::Atom(s) => self.code.push(Instr::UnifyConst {
                what: Cell::Atom(s),
            }),
            TermView::Int(i) => self.code.push(Instr::UnifyConst { what: Cell::Int(i) }),
            TermView::Nil => self.code.push(Instr::UnifyConst { what: Cell::Nil }),
            TermView::Struct(..) | TermView::List(_) => {
                let tmp = self.fresh_slot();
                self.code.push(Instr::UnifyVar { slot: tmp });
                self.work.push_back((tmp, t));
            }
        }
    }

    fn emit_deferred(&mut self, slot: u16, t: Cell) {
        match view(self.arena, t) {
            TermView::Struct(f, n, hdr) => {
                self.code.push(Instr::SlotStruct { f, n, slot });
                for i in 0..n {
                    self.emit_child(self.arena.str_arg(hdr, i));
                }
            }
            TermView::List(p) => {
                self.code.push(Instr::SlotList { slot });
                self.emit_child(self.arena.lst_head(p));
                self.emit_child(self.arena.lst_tail(p));
            }
            _ => unreachable!("only compounds are deferred"),
        }
    }

    /// Compile the clause body. A top-level `,`-chain flattens into
    /// steps; `( ArithTest -> Then ; Else )` compiles to the inline
    /// if-then-else form; anything else is a single generic step.
    fn compile_body(&mut self, body: Cell, fresh: &mut Vec<u16>) -> CompiledBody {
        let w = wk();
        if let TermView::Atom(s) = view(self.arena, body) {
            if s == w.true_ {
                return CompiledBody::Fact;
            }
        }
        if let TermView::Struct(f, 2, hdr) = view(self.arena, body) {
            if f == w.semicolon {
                let lhs = self.arena.str_arg(hdr, 0);
                let els = self.arena.str_arg(hdr, 1);
                if let TermView::Struct(g, 2, ihdr) = view(self.arena, lhs) {
                    if g == w.arrow {
                        let cnd = self.arena.str_arg(ihdr, 0);
                        let thn = self.arena.str_arg(ihdr, 1);
                        if let Some(op) = self.arith_test_op(cnd) {
                            // Compile order fixes slot numbering; at run
                            // time only one branch executes, and
                            // `init_fresh_slots` covers whichever body
                            // variables that branch actually needs.
                            let cond = self.step_template(cnd, fresh);
                            let then_steps = self.compile_steps(thn, fresh);
                            let else_steps = self.compile_steps(els, fresh);
                            return CompiledBody::IfThenElse {
                                cond_op: op,
                                cond,
                                then_steps,
                                else_steps,
                            };
                        }
                    }
                }
            }
        }
        CompiledBody::Steps(self.compile_steps(body, fresh))
    }

    /// Is `t` an arithmetic comparison `A op B`?
    fn arith_test_op(&self, t: Cell) -> Option<Sym> {
        let w = wk();
        if let TermView::Struct(f, 2, _) = view(self.arena, t) {
            if f == w.lt
                || f == w.gt
                || f == w.le
                || f == w.ge
                || f == w.arith_eq
                || f == w.arith_ne
            {
                return Some(f);
            }
        }
        None
    }

    /// Flatten a top-level `,`-chain into one step per conjunct.
    fn compile_steps(&mut self, t: Cell, fresh: &mut Vec<u16>) -> Vec<BodyStep> {
        let w = wk();
        let mut conjuncts = Vec::new();
        let mut cur = t;
        loop {
            match view(self.arena, cur) {
                TermView::Struct(f, 2, hdr) if f == w.comma => {
                    conjuncts.push(self.arena.str_arg(hdr, 0));
                    cur = self.arena.str_arg(hdr, 1);
                }
                _ => {
                    conjuncts.push(cur);
                    break;
                }
            }
        }
        conjuncts
            .into_iter()
            .map(|g| self.compile_step(g, fresh))
            .collect()
    }

    fn compile_step(&mut self, g: Cell, fresh: &mut Vec<u16>) -> BodyStep {
        let w = wk();
        let kind = if let Some(op) = self.arith_test_op(g) {
            StepKind::Compare(op)
        } else {
            match view(self.arena, g) {
                TermView::Struct(f, 2, _) if f == w.is => StepKind::Is,
                TermView::Struct(f, 2, _) if f == w.unify => StepKind::Unify,
                _ => StepKind::Goal,
            }
        };
        BodyStep {
            tpl: self.step_template(g, fresh),
            kind,
        }
    }

    fn step_template(&mut self, t: Cell, fresh: &mut Vec<u16>) -> StepTemplate {
        let mut cells = Vec::new();
        let root = self.build_template(t, &mut cells, fresh);
        StepTemplate { cells, root }
    }

    fn build_template(&mut self, t: Cell, out: &mut Vec<Cell>, fresh: &mut Vec<u16>) -> Cell {
        match view(self.arena, t) {
            TermView::Var(a) => {
                if self.counts[&a.0] == 1 {
                    // Single occurrence: a template-relative self-reference
                    // becomes a fresh unbound variable on copy.
                    let p = Addr(out.len() as u32);
                    out.push(Cell::Ref(p));
                    Cell::Ref(p)
                } else {
                    let (slot, new) = self.slot_of(a);
                    if new {
                        fresh.push(slot);
                    }
                    Cell::Ref(Addr(SLOT_BASE + slot as u32))
                }
            }
            TermView::Atom(s) => Cell::Atom(s),
            TermView::Int(i) => Cell::Int(i),
            TermView::Nil => Cell::Nil,
            TermView::Struct(f, n, hdr) => {
                let mut args = Vec::with_capacity(n as usize);
                for i in 0..n {
                    let sub = self.build_template(self.arena.str_arg(hdr, i), out, fresh);
                    args.push(sub);
                }
                let h = Addr(out.len() as u32);
                out.push(Cell::Functor(f, n));
                for a in args {
                    out.push(a);
                }
                Cell::Str(h)
            }
            TermView::List(p) => {
                let hd = self.build_template(self.arena.lst_head(p), out, fresh);
                let tl = self.build_template(self.arena.lst_tail(p), out, fresh);
                let a = Addr(out.len() as u32);
                out.push(hd);
                out.push(tl);
                Cell::Lst(a)
            }
        }
    }
}

// ----------------------------------------------------------------------
// Executor
// ----------------------------------------------------------------------

enum GroupMode {
    /// Walking an existing compound: next subterm cell address.
    Read(Addr),
    /// Building the compound on the heap: each subterm pushes one cell.
    Write,
}

/// Execute compiled head code against the call whose structure header is
/// `goal_hdr` (`None` for arity 0). `slots` is caller-owned scratch,
/// resized internally. On failure the caller must undo the trail to its
/// pre-call mark; cost is reported either way.
pub fn run_head(
    heap: &mut Heap,
    code: &CompiledCode,
    goal_hdr: Option<Addr>,
    slots: &mut Vec<Cell>,
) -> (bool, ExecCost) {
    let mut cost = ExecCost::default();
    slots.clear();
    slots.resize(code.nslots as usize, UNSET_SLOT);
    let instrs = &code.head;
    let mut i = 0;
    while i < instrs.len() {
        cost.instrs += 1;
        let arg_cell = |heap: &Heap, arg: u16| {
            let hdr = goal_hdr.expect("head code on arity-0 call");
            heap.str_arg(hdr, arg as u32)
        };
        match instrs[i] {
            Instr::GetVar { slot, arg } => {
                slots[slot as usize] = arg_cell(heap, arg);
            }
            Instr::GetVal { slot, arg } => {
                let a = arg_cell(heap, arg);
                let s = slots[slot as usize];
                match unify(heap, s, a) {
                    Some(steps) => cost.unify_steps += steps as u64,
                    None => return (false, cost),
                }
            }
            Instr::GetConst { what, arg } => {
                let a = arg_cell(heap, arg);
                if !match_const(heap, a, what) {
                    return (false, cost);
                }
            }
            Instr::GetStruct { f, n, arg } => {
                let a = arg_cell(heap, arg);
                let Some(mode) = enter_struct(heap, a, f, n, &mut cost) else {
                    return (false, cost);
                };
                if !run_group(heap, instrs, &mut i, n as usize, mode, slots, &mut cost) {
                    return (false, cost);
                }
            }
            Instr::GetList { arg } => {
                let a = arg_cell(heap, arg);
                let Some(mode) = enter_list(heap, a, &mut cost) else {
                    return (false, cost);
                };
                if !run_group(heap, instrs, &mut i, 2, mode, slots, &mut cost) {
                    return (false, cost);
                }
            }
            Instr::SlotStruct { f, n, slot } => {
                let s = slots[slot as usize];
                let Some(mode) = enter_struct(heap, s, f, n, &mut cost) else {
                    return (false, cost);
                };
                if !run_group(heap, instrs, &mut i, n as usize, mode, slots, &mut cost) {
                    return (false, cost);
                }
            }
            Instr::SlotList { slot } => {
                let s = slots[slot as usize];
                let Some(mode) = enter_list(heap, s, &mut cost) else {
                    return (false, cost);
                };
                if !run_group(heap, instrs, &mut i, 2, mode, slots, &mut cost) {
                    return (false, cost);
                }
            }
            Instr::UnifyVar { .. }
            | Instr::UnifyVal { .. }
            | Instr::UnifyConst { .. }
            | Instr::UnifyVoid => {
                unreachable!("Unify* outside a compound group")
            }
        }
        i += 1;
    }
    (true, cost)
}

/// Match a (possibly unbound) term against the constant `what`.
#[inline]
fn match_const(heap: &mut Heap, t: Cell, what: Cell) -> bool {
    match heap.deref(t) {
        Cell::Ref(a) => {
            heap.bind(a, what);
            true
        }
        v => v == what,
    }
}

/// Match `t` against a structure `f/n`: read mode over an existing match,
/// write mode (build + bind) against an unbound variable.
#[inline]
fn enter_struct(
    heap: &mut Heap,
    t: Cell,
    f: Sym,
    n: u32,
    cost: &mut ExecCost,
) -> Option<GroupMode> {
    match heap.deref(t) {
        Cell::Str(h) if heap.functor_at(h) == (f, n) => Some(GroupMode::Read(h.offset(1))),
        Cell::Ref(a) => {
            let hdr = heap.push(Cell::Functor(f, n));
            cost.cells += 1;
            heap.bind(a, Cell::Str(hdr));
            Some(GroupMode::Write)
        }
        _ => None,
    }
}

#[inline]
fn enter_list(heap: &mut Heap, t: Cell, _cost: &mut ExecCost) -> Option<GroupMode> {
    match heap.deref(t) {
        Cell::Lst(p) => Some(GroupMode::Read(p)),
        Cell::Ref(a) => {
            let pair = Addr(heap.len() as u32);
            heap.bind(a, Cell::Lst(pair));
            Some(GroupMode::Write)
        }
        _ => None,
    }
}

/// Run the `n` `Unify*` instructions following `*i` in `mode`. Advances
/// `*i` past the group. In write mode each subterm instruction pushes
/// exactly one cell, so the compound's argument cells end up contiguous.
fn run_group(
    heap: &mut Heap,
    instrs: &[Instr],
    i: &mut usize,
    n: usize,
    mode: GroupMode,
    slots: &mut [Cell],
    cost: &mut ExecCost,
) -> bool {
    let mut s = match mode {
        GroupMode::Read(a) => Some(a),
        GroupMode::Write => None,
    };
    for _ in 0..n {
        *i += 1;
        cost.instrs += 1;
        let sub = s.map(|a| heap.cell(a));
        match (instrs[*i], sub) {
            // Read mode: `sub` is the existing cell at the cursor.
            (Instr::UnifyVar { slot }, Some(c)) => slots[slot as usize] = c,
            (Instr::UnifyVal { slot }, Some(c)) => match unify(heap, slots[slot as usize], c) {
                Some(steps) => cost.unify_steps += steps as u64,
                None => return false,
            },
            (Instr::UnifyConst { what }, Some(c)) => {
                if !match_const(heap, c, what) {
                    return false;
                }
            }
            (Instr::UnifyVoid, Some(_)) => {}
            // Write mode: push one cell per subterm.
            (Instr::UnifyVar { slot }, None) => {
                slots[slot as usize] = heap.new_var();
                cost.cells += 1;
            }
            (Instr::UnifyVal { slot }, None) => {
                heap.push(slots[slot as usize]);
                cost.cells += 1;
            }
            (Instr::UnifyConst { what }, None) => {
                heap.push(what);
                cost.cells += 1;
            }
            (Instr::UnifyVoid, None) => {
                heap.new_var();
                cost.cells += 1;
            }
            (other, _) => unreachable!("non-Unify instruction {other:?} inside a group"),
        }
        s = s.map(|a| a.offset(1));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::sym::sym;
    use crate::term::proper_list;
    use crate::write::term_to_string;

    fn clause_code(
        src: &str,
        name: &str,
        arity: u32,
        idx: usize,
    ) -> std::sync::Arc<crate::db::Clause> {
        let db = Database::load(src).unwrap();
        db.predicate(sym(name), arity).unwrap().clauses[idx].clone()
    }

    fn exec(clause: &crate::db::Clause, heap: &mut Heap, goal: Cell) -> (bool, Vec<Cell>) {
        let mut slots = Vec::new();
        let hdr = match heap.deref(goal) {
            Cell::Str(h) => Some(h),
            _ => None,
        };
        let (ok, _) = run_head(heap, clause.code(), hdr, &mut slots);
        (ok, slots)
    }

    #[test]
    fn fact_head_matches_and_binds() {
        let c = clause_code("p(a, f(1, X), X).", "p", 3, 0);
        let mut h = Heap::new();
        let v1 = h.new_var();
        let goal = h.new_struct(sym("p"), &[Cell::Atom(sym("a")), v1, Cell::Int(9)]);
        let (ok, _) = exec(&c, &mut h, goal);
        assert!(ok);
        // v1 was built in write mode as f(1, X) with X shared with arg 2
        assert_eq!(term_to_string(&h, v1), "f(1,9)");
    }

    #[test]
    fn head_mismatch_fails() {
        let c = clause_code("p(a).", "p", 1, 0);
        let mut h = Heap::new();
        let goal = h.new_struct(sym("p"), &[Cell::Atom(sym("b"))]);
        let (ok, _) = exec(&c, &mut h, goal);
        assert!(!ok);
    }

    #[test]
    fn compiled_equals_interpreted_on_member_head() {
        let src = "member(X, [X|_]). member(X, [_|T]) :- member(X, T).";
        let c0 = clause_code(src, "member", 2, 0);
        let c1 = clause_code(src, "member", 2, 1);

        // member(E, [1,2]) against clause 0: binds E = 1.
        let mut h = Heap::new();
        let e = h.new_var();
        let l = h.list(&[Cell::Int(1), Cell::Int(2)]);
        let goal = h.new_struct(sym("member"), &[e, l]);
        let (ok, _) = exec(&c0, &mut h, goal);
        assert!(ok);
        assert_eq!(h.deref(e), Cell::Int(1));

        // clause 1: head matches, body is member(E, [2]).
        let mut h = Heap::new();
        let e = h.new_var();
        let l = h.list(&[Cell::Int(1), Cell::Int(2)]);
        let goal = h.new_struct(sym("member"), &[e, l]);
        let mut slots = Vec::new();
        let Cell::Str(hdr) = h.deref(goal) else {
            unreachable!()
        };
        let (ok, _) = run_head(&mut h, c1.code(), Some(hdr), &mut slots);
        assert!(ok);
        assert!(h.is_unbound(h.deref(e)));
        let (body, _) = c1.code().instantiate_body(&mut h, &mut slots);
        let s = term_to_string(&h, body);
        assert!(s.starts_with("member(") && s.ends_with(",[2])"), "{s}");
    }

    #[test]
    fn facts_skip_body_template() {
        let c = clause_code("p(a).", "p", 1, 0);
        assert!(c.code().is_fact());
        assert_eq!(c.code().body_len(), 0);
    }

    #[test]
    fn nested_structs_flatten_without_recursion() {
        let c = clause_code("p(f(g(h(1)), X), X).", "p", 2, 0);
        let code = c.code();
        // flattened: get_struct f, unify_var tmp(g), unify_var X,
        // get_val X(A1 handled as get_var/get_val), slot_struct g, ...
        assert!(code
            .head_code()
            .iter()
            .any(|i| matches!(i, Instr::SlotStruct { .. })));

        // read-mode match against a fully bound call
        let mut h = Heap::new();
        let one = h.new_struct(sym("h"), &[Cell::Int(1)]);
        let g = h.new_struct(sym("g"), &[one]);
        let f = h.new_struct(sym("f"), &[g, Cell::Int(7)]);
        let goal = h.new_struct(sym("p"), &[f, Cell::Int(7)]);
        let (ok, _) = exec(&c, &mut h, goal);
        assert!(ok);

        // and failure when the shared variable disagrees
        let mut h = Heap::new();
        let one = h.new_struct(sym("h"), &[Cell::Int(1)]);
        let g = h.new_struct(sym("g"), &[one]);
        let f = h.new_struct(sym("f"), &[g, Cell::Int(7)]);
        let goal = h.new_struct(sym("p"), &[f, Cell::Int(8)]);
        let (ok, _) = exec(&c, &mut h, goal);
        assert!(!ok);
    }

    #[test]
    fn write_mode_builds_ground_pattern() {
        let c = clause_code("p([a, f(B), B]).", "p", 1, 0);
        let mut h = Heap::new();
        let v = h.new_var();
        let goal = h.new_struct(sym("p"), &[v]);
        let (ok, _) = exec(&c, &mut h, goal);
        assert!(ok);
        let items = proper_list(&h, h.deref(v)).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(h.deref(items[0]), Cell::Atom(sym("a")));
    }

    #[test]
    fn trail_undo_restores_failed_match() {
        // p(a, b): first arg binds, second fails — undo must release both.
        let c = clause_code("p(a, b).", "p", 2, 0);
        let mut h = Heap::new();
        let v = h.new_var();
        let goal = h.new_struct(sym("p"), &[v, Cell::Atom(sym("c"))]);
        let mark = h.trail_mark();
        let (ok, _) = exec(&c, &mut h, goal);
        assert!(!ok);
        h.undo_to(mark);
        assert!(h.is_unbound(h.deref(v)));
    }

    #[test]
    fn body_template_shares_head_variables() {
        let c = clause_code("q(X, Y) :- r(Y, X, Z), s(Z).", "q", 2, 0);
        let mut h = Heap::new();
        let goal = h.new_struct(sym("q"), &[Cell::Int(1), Cell::Int(2)]);
        let mut slots = Vec::new();
        let Cell::Str(hdr) = h.deref(goal) else {
            unreachable!()
        };
        let (ok, _) = run_head(&mut h, c.code(), Some(hdr), &mut slots);
        assert!(ok);
        let (body, _) = c.code().instantiate_body(&mut h, &mut slots);
        let s = term_to_string(&h, body);
        assert!(s.starts_with("r(2,1,"), "{s}");
    }

    #[test]
    fn zero_arity_heads_have_no_code() {
        let c = clause_code("go :- step. step.", "go", 0, 0);
        assert!(c.code().head_code().is_empty());
        assert!(!c.code().is_fact());
    }

    #[test]
    fn disassembly_mentions_instructions() {
        let c = clause_code("member(X, [X|_]).", "member", 2, 0);
        let lines = c.code().disassemble().join("\n");
        assert!(lines.contains("get_list"), "{lines}");
        assert!(lines.contains("proceed"), "{lines}");
    }

    #[test]
    fn exec_cost_reports_work() {
        let c = clause_code("p(f(1, 2, 3)).", "p", 1, 0);
        let mut h = Heap::new();
        let v = h.new_var();
        let goal = h.new_struct(sym("p"), &[v]);
        let mut slots = Vec::new();
        let Cell::Str(hdr) = h.deref(goal) else {
            unreachable!()
        };
        let (ok, cost) = run_head(&mut h, c.code(), Some(hdr), &mut slots);
        assert!(ok);
        assert!(cost.instrs >= 4, "{cost:?}");
        assert!(cost.cells >= 4, "{cost:?}"); // functor + 3 args
    }
}
