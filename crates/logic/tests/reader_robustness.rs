//! Reader robustness: arbitrary input must never panic the parser — it
//! either produces a term or a positioned syntax error.

use proptest::prelude::*;

use ace_logic::{parse_program, parse_term, Heap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (valid UTF-8 strings) never panic the term parser.
    #[test]
    fn parse_term_never_panics(input in ".*") {
        let mut heap = Heap::new();
        let _ = parse_term(&mut heap, &input);
    }

    /// Arbitrary program text never panics the program parser.
    #[test]
    fn parse_program_never_panics(input in ".*") {
        let _ = parse_program(&input);
    }

    /// Prolog-ish token soup exercises deeper parser paths.
    #[test]
    fn token_soup_never_panics(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("foo".to_owned()),
                Just("X".to_owned()),
                Just("42".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("[".to_owned()),
                Just("]".to_owned()),
                Just(",".to_owned()),
                Just("|".to_owned()),
                Just(".".to_owned()),
                Just(":-".to_owned()),
                Just("&".to_owned()),
                Just(";".to_owned()),
                Just("->".to_owned()),
                Just("=".to_owned()),
                Just("is".to_owned()),
                Just("+".to_owned()),
                Just("-".to_owned()),
                Just("'q w'".to_owned()),
                Just("\\+".to_owned()),
                Just("!".to_owned()),
            ],
            0..24
        )
    ) {
        let input = tokens.join(" ");
        let _ = parse_program(&input);
        let mut heap = Heap::new();
        let _ = parse_term(&mut heap, &input);
    }

    /// Whatever parses also prints, and the printed form re-parses to the
    /// same text (writer/reader fixpoint on arbitrary accepted inputs).
    #[test]
    fn accepted_inputs_roundtrip(input in ".*") {
        let mut heap = Heap::new();
        if let Ok((term, _)) = parse_term(&mut heap, &input) {
            let s1 = ace_logic::write::term_to_string(&heap, term);
            let mut h2 = Heap::new();
            let (t2, _) = parse_term(&mut h2, &s1).map_err(|e| {
                TestCaseError::fail(format!("printed form unparsable: {s1:?}: {e}"))
            })?;
            let s2 = ace_logic::write::term_to_string(&h2, t2);
            prop_assert_eq!(s1, s2);
        }
    }
}
