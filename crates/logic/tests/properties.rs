//! Property-based tests for the logic substrate: unification laws, trail
//! discipline, copying, and reader/writer round-trips over randomly
//! generated terms.

use proptest::prelude::*;

use ace_logic::copy::copy_term;
use ace_logic::heap::{Cell, Heap};
use ace_logic::sym::sym;
use ace_logic::term::{term_size, variables};
use ace_logic::unify::{struct_eq, unify, unify_oc};
use ace_logic::write::term_to_string;

/// AST for generated terms (built into heaps by `build`).
#[derive(Debug, Clone)]
enum T {
    Var(u8),
    Atom(u8),
    Int(i16),
    Struct(u8, Vec<T>),
    List(Vec<T>),
}

fn term_strategy() -> impl Strategy<Value = T> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(T::Var),
        (0u8..6).prop_map(T::Atom),
        any::<i16>().prop_map(T::Int),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            ((0u8..4), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(f, args)| T::Struct(f, args)),
            prop::collection::vec(inner, 0..4).prop_map(T::List),
        ]
    })
}

/// Build `t` into `heap`, sharing variables via `vars`.
fn build(heap: &mut Heap, t: &T, vars: &mut Vec<Option<Cell>>) -> Cell {
    match t {
        T::Var(i) => {
            let i = *i as usize;
            if vars.len() <= i {
                vars.resize(i + 1, None);
            }
            match vars[i] {
                Some(c) => c,
                None => {
                    let c = heap.new_var();
                    vars[i] = Some(c);
                    c
                }
            }
        }
        T::Atom(i) => Cell::Atom(sym(&format!("a{i}"))),
        T::Int(v) => Cell::Int(*v as i64),
        T::Struct(f, args) => {
            let cells: Vec<Cell> = args.iter().map(|a| build(heap, a, vars)).collect();
            heap.new_struct(sym(&format!("f{f}")), &cells)
        }
        T::List(items) => {
            let cells: Vec<Cell> = items.iter().map(|a| build(heap, a, vars)).collect();
            heap.list(&cells)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Unifying a term with itself always succeeds and binds nothing new.
    #[test]
    fn unify_reflexive(t in term_strategy()) {
        let mut heap = Heap::new();
        let mut vars = Vec::new();
        let c = build(&mut heap, &t, &mut vars);
        let mark = heap.trail_mark();
        prop_assert!(unify(&mut heap, c, c).is_some());
        prop_assert_eq!(heap.trail_section(mark).len(), 0);
    }

    /// Unification success is symmetric, and both orders leave the pair
    /// structurally equal.
    #[test]
    fn unify_symmetric(a in term_strategy(), b in term_strategy()) {
        let mut h1 = Heap::new();
        let mut v1 = Vec::new();
        let a1 = build(&mut h1, &a, &mut v1);
        let mut v1b = Vec::new(); // b gets its own variables
        let b1 = build(&mut h1, &b, &mut v1b);
        let r1 = unify(&mut h1, a1, b1).is_some();

        let mut h2 = Heap::new();
        let mut v2 = Vec::new();
        let a2 = build(&mut h2, &a, &mut v2);
        let mut v2b = Vec::new();
        let b2 = build(&mut h2, &b, &mut v2b);
        let r2 = unify(&mut h2, b2, a2).is_some();

        prop_assert_eq!(r1, r2);
        if r1 {
            prop_assert!(struct_eq(&h1, a1, b1));
            prop_assert!(struct_eq(&h2, a2, b2));
        }
    }

    /// Undoing the trail restores every cell touched by a unification.
    #[test]
    fn trail_undo_restores_heap(a in term_strategy(), b in term_strategy()) {
        let mut heap = Heap::new();
        let mut va = Vec::new();
        let ca = build(&mut heap, &a, &mut va);
        let mut vb = Vec::new();
        let cb = build(&mut heap, &b, &mut vb);
        let snapshot: Vec<Cell> = heap.cells().to_vec();
        let mark = heap.trail_mark();
        let hmark = heap.heap_mark();
        let _ = unify(&mut heap, ca, cb);
        heap.undo_to(mark);
        heap.truncate_to(hmark);
        prop_assert_eq!(heap.cells(), &snapshot[..]);
    }

    /// copy_term preserves size, text (module variable names), and the
    /// variable count; the copy shares no variables with the original.
    #[test]
    fn copy_preserves_structure(t in term_strategy()) {
        let mut src = Heap::new();
        let mut vars = Vec::new();
        let c = build(&mut src, &t, &mut vars);
        let mut dst = Heap::new();
        let out = copy_term(&src, c, &mut dst);
        prop_assert_eq!(term_size(&dst, out.root), term_size(&src, c));
        prop_assert_eq!(
            variables(&dst, out.root).len(),
            variables(&src, c).len()
        );
        // normalize variable names before comparing text
        let norm = |s: String| {
            let mut names: Vec<String> = Vec::new();
            let mut out = String::new();
            let mut rest = s.as_str();
            while let Some(i) = rest.find("_G") {
                out.push_str(&rest[..i]);
                let tail = &rest[i + 2..];
                let end = tail
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(tail.len());
                let name = &rest[i..i + 2 + end];
                let id = match names.iter().position(|n| n == name) {
                    Some(p) => p,
                    None => {
                        names.push(name.to_owned());
                        names.len() - 1
                    }
                };
                out.push_str(&format!("V{id}"));
                rest = &rest[i + 2 + end..];
            }
            out.push_str(rest);
            out
        };
        prop_assert_eq!(
            norm(term_to_string(&src, c)),
            norm(term_to_string(&dst, out.root))
        );
    }

    /// write ∘ parse is the identity on rendered text (stable round-trip).
    #[test]
    fn write_parse_roundtrip(t in term_strategy()) {
        let mut heap = Heap::new();
        let mut vars = Vec::new();
        let c = build(&mut heap, &t, &mut vars);
        let s1 = term_to_string(&heap, c);
        let mut h2 = Heap::new();
        let (c2, _) = ace_logic::parse_term(&mut h2, &s1)
            .map_err(|e| TestCaseError::fail(format!("reparse {s1:?}: {e}")))?;
        let s2 = term_to_string(&h2, c2);
        prop_assert_eq!(s1, s2);
    }

    /// Occurs-check unification only differs from plain unification by
    /// rejecting cyclic bindings: whenever unify_oc succeeds, unify does
    /// too and produces equal terms.
    #[test]
    fn occurs_check_is_restriction(a in term_strategy(), b in term_strategy()) {
        let mut h1 = Heap::new();
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        let a1 = build(&mut h1, &a, &mut va);
        let b1 = build(&mut h1, &b, &mut vb);
        let mark = h1.trail_mark();
        let oc = unify_oc(&mut h1, a1, b1).is_some();
        h1.undo_to(mark);
        let plain = unify(&mut h1, a1, b1).is_some();
        if oc {
            prop_assert!(plain);
        }
    }

    /// Memo keys are variant-invariant: copying a call term (which renames
    /// every variable to a fresh one) yields a byte-identical CanonKey,
    /// within one heap and across heaps.
    #[test]
    fn canon_keys_are_variant_invariant(t in term_strategy()) {
        use ace_logic::CanonKey;
        let mut src = Heap::new();
        let mut vars = Vec::new();
        let c = build(&mut src, &t, &mut vars);
        let k = CanonKey::of(&src, c);
        // cross-heap rename
        let mut dst = Heap::new();
        let out = copy_term(&src, c, &mut dst);
        prop_assert_eq!(&CanonKey::of(&dst, out.root), &k);
        // within-heap rename
        let within = ace_logic::copy::copy_term_within(&mut src, c);
        prop_assert_eq!(&CanonKey::of(&src, within.root), &k);
    }

    /// A stored answer arena round-trips through freeze/thaw: the thawed
    /// term is a variant of the original (same canonical key, same size
    /// and variable count), at any relocation base.
    #[test]
    fn term_arena_round_trips(t in term_strategy(), base in 0usize..32) {
        use ace_logic::{CanonKey, TermArena};
        let mut src = Heap::new();
        let mut vars = Vec::new();
        let c = build(&mut src, &t, &mut vars);
        let arena = TermArena::freeze(&src, c);
        let mut dst = Heap::new();
        for _ in 0..base {
            dst.new_var(); // force a nonzero relocation base
        }
        let (thawed, appended) = arena.thaw(&mut dst);
        prop_assert_eq!(appended, arena.len());
        prop_assert_eq!(&CanonKey::of(&dst, thawed), &CanonKey::of(&src, c));
        prop_assert_eq!(term_size(&dst, thawed), term_size(&src, c));
        prop_assert_eq!(
            variables(&dst, thawed).len(),
            variables(&src, c).len()
        );
    }

    /// The or-engine's procrastinated state capture freezes a
    /// `$closure(Goal, Cont...)` tuple and thaws it per claim: variables
    /// shared between the goal and the continuation goals must stay
    /// shared (and un-shared ones distinct) through freeze→thaw, and the
    /// tuple must round-trip structurally at any relocation base.
    #[test]
    fn closure_freeze_thaw_preserves_goal_cont_sharing(
        goal in term_strategy(),
        cont in prop::collection::vec(term_strategy(), 0..4),
        base in 0usize..16,
    ) {
        use ace_logic::{CanonKey, TermArena};
        let mut src = Heap::new();
        // One shared variable namespace: `T::Var(i)` denotes the same
        // variable wherever it occurs, across goal and continuation.
        let mut vars = Vec::new();
        let g = build(&mut src, &goal, &mut vars);
        let mut args = vec![g];
        for c in &cont {
            args.push(build(&mut src, c, &mut vars));
        }
        let tuple = src.new_struct(sym("$closure"), &args);

        let arena = TermArena::freeze(&src, tuple);
        let mut dst = Heap::new();
        for _ in 0..base {
            dst.new_var(); // force a nonzero relocation base
        }
        let (thawed, appended) = arena.thaw(&mut dst);
        prop_assert_eq!(appended, arena.len());
        // Structural round trip, sharing included: CanonKey numbers
        // variables by first occurrence, so f(X,X) ≠ f(X,Y).
        prop_assert_eq!(&CanonKey::of(&dst, thawed), &CanonKey::of(&src, tuple));

        // Exact per-position sharing matrix: canonicalize every tuple
        // argument's variable occurrences by first appearance across the
        // whole tuple; the numbering must survive freeze→thaw verbatim.
        let shares = |heap: &Heap, root: Cell| -> Vec<Vec<usize>> {
            let Cell::Str(hdr) = heap.deref(root) else {
                panic!("closure tuple root must stay a struct");
            };
            let mut order = Vec::new();
            (0..args.len() as u32)
                .map(|i| {
                    variables(heap, heap.str_arg(hdr, i))
                        .into_iter()
                        .map(|v| match order.iter().position(|&o| o == v) {
                            Some(p) => p,
                            None => {
                                order.push(v);
                                order.len() - 1
                            }
                        })
                        .collect()
                })
                .collect()
        };
        prop_assert_eq!(shares(&dst, thawed), shares(&src, tuple));
    }

    /// Switch-on-term index soundness and exactness. For a random
    /// predicate and a random call argument:
    /// * the bucket-chain walk (`next_matching`) enumerates exactly the
    ///   same clause ordinals as the literal linear scan the interpreter
    ///   oracle charges for (`next_matching_scan`);
    /// * `match_count` agrees with that enumeration;
    /// * every clause whose head actually unifies with the call is in the
    ///   enumeration (the index may over-approximate, never drop).
    #[test]
    fn index_chain_is_sound_and_equals_scan(
        heads in prop::collection::vec(term_strategy(), 1..8),
        goal in term_strategy(),
    ) {
        use ace_logic::db::{Database, IndexKey};

        let mut src_txt = String::new();
        for (i, h) in heads.iter().enumerate() {
            let mut sh = Heap::new();
            let mut vars = Vec::new();
            let c = build(&mut sh, h, &mut vars);
            src_txt.push_str(&format!("p({}, {i}).\n", term_to_string(&sh, c)));
        }
        let db = Database::load(&src_txt)
            .map_err(|e| TestCaseError::fail(format!("load failed: {e}\n{src_txt}")))?;
        let pred = db.predicate(sym("p"), 2).unwrap();

        let mut gh = Heap::new();
        let mut gvars = Vec::new();
        let g = build(&mut gh, &goal, &mut gvars);
        let key = IndexKey::of(&gh, g);

        let enumerate = |next: &dyn Fn(IndexKey, usize) -> Option<usize>| {
            let mut v = Vec::new();
            let mut from = 0;
            while let Some(i) = next(key, from) {
                v.push(i);
                from = i + 1;
            }
            v
        };
        let chain = enumerate(&|k, f| pred.next_matching(k, f));
        let scan = enumerate(&|k, f| pred.next_matching_scan(k, f));
        prop_assert_eq!(&chain, &scan);
        prop_assert_eq!(chain.len(), pred.match_count(key));

        for (ord, clause) in pred.clauses.iter().enumerate() {
            let mut h = Heap::new();
            let mut gv = Vec::new();
            let garg = build(&mut h, &goal, &mut gv);
            let out = h.new_var();
            let call = h.new_struct(sym("p"), &[garg, out]);
            let (head, _body) = clause.instantiate(&mut h);
            if unify(&mut h, call, head).is_some() {
                prop_assert!(
                    chain.contains(&ord),
                    "clause {ord} unifies but is not in chain {chain:?} for key {key:?}\n{src_txt}"
                );
            }
        }
    }

    /// Compiled head code is an exact drop-in for the interpreter's
    /// instantiate-then-unify: same success/failure on every clause, and
    /// on success the call term is bound to a variant-identical instance.
    #[test]
    fn compiled_head_matches_like_interpreter(
        heads in prop::collection::vec(term_strategy(), 1..6),
        goal in term_strategy(),
    ) {
        use ace_logic::db::Database;
        use ace_logic::{run_head, CanonKey};

        let mut src_txt = String::new();
        for (i, h) in heads.iter().enumerate() {
            let mut sh = Heap::new();
            let mut vars = Vec::new();
            let c = build(&mut sh, h, &mut vars);
            src_txt.push_str(&format!("p({}, {i}).\n", term_to_string(&sh, c)));
        }
        let db = Database::load(&src_txt)
            .map_err(|e| TestCaseError::fail(format!("load failed: {e}\n{src_txt}")))?;
        let pred = db.predicate(sym("p"), 2).unwrap();

        for clause in pred.clauses.iter() {
            // Interpreter oracle: copy the whole head out of the clause
            // arena, then general unification against the call.
            let mut h1 = Heap::new();
            let mut gv1 = Vec::new();
            let g1 = build(&mut h1, &goal, &mut gv1);
            let out1 = h1.new_var();
            let call1 = h1.new_struct(sym("p"), &[g1, out1]);
            let (head, _body) = clause.instantiate(&mut h1);
            let ok1 = unify(&mut h1, call1, head).is_some();

            // Compiled: run the register code against the call in place.
            let mut h2 = Heap::new();
            let mut gv2 = Vec::new();
            let g2 = build(&mut h2, &goal, &mut gv2);
            let out2 = h2.new_var();
            let call2 = h2.new_struct(sym("p"), &[g2, out2]);
            let Cell::Str(hdr) = h2.deref(call2) else {
                return Err(TestCaseError::fail("call must be a struct"));
            };
            let mut slots = Vec::new();
            let (ok2, _cost) = run_head(&mut h2, clause.code(), Some(hdr), &mut slots);

            prop_assert!(
                ok1 == ok2,
                "match disagreement on\n{}\ncall {}",
                src_txt,
                term_to_string(&h1, call1)
            );
            if ok1 {
                prop_assert!(
                    CanonKey::of(&h2, call2) == CanonKey::of(&h1, call1),
                    "bindings diverge on\n{}\ninterp {} vs compiled {}",
                    src_txt,
                    term_to_string(&h1, call1),
                    term_to_string(&h2, call2)
                );
            }
        }
    }

    /// Unwind/rewind is an exact inverse pair even interleaved with reads.
    #[test]
    fn unwind_rewind_identity(a in term_strategy(), b in term_strategy()) {
        let mut heap = Heap::new();
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        let ca = build(&mut heap, &a, &mut va);
        let cb = build(&mut heap, &b, &mut vb);
        let mark = heap.trail_mark();
        if unify(&mut heap, ca, cb).is_none() {
            heap.undo_to(mark);
            return Ok(());
        }
        let after: Vec<Cell> = heap.cells().to_vec();
        let section = heap.unwind_section(mark);
        let _ = term_to_string(&heap, ca); // arbitrary read while unwound
        heap.rewind_section(section);
        prop_assert_eq!(heap.cells(), &after[..]);
    }
}
