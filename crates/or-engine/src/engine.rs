//! Or-parallel engine entry point and worker agents.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use ace_logic::sym::{sym, sym_name, wk};
use ace_logic::{Cell, Database};
use ace_machine::frames::{Alts, SharedChoice};
use ace_machine::{Machine, Status};
use ace_runtime::{
    fault::FAULT_ERROR_PREFIX, Agent, CancelToken, CostModel, Counter, DriverKind, EngineConfig,
    EventKind, FaultAction, FaultInjector, Gauge, LockClock, MemoTable, MetricsRegistry,
    OrScheduler, Phase, RunOutcome, SimDriver, Stats, TableSpace, ThreadsDriver, Trace, TraceBuf,
    TraceSink, Tracer,
};
use parking_lot::Mutex;

use crate::pool::{AltPool, StealScope};
use crate::tree::{DeferPoll, NodeClaim, OrNode, RemoteClaim};

/// How many reset machines a worker keeps for reuse. Claims are bursty but
/// each worker drives at most one machine at a time, so a shallow cache
/// captures nearly all reuse without hoarding heap capacity.
const MACHINE_POOL_CAP: usize = 4;

/// Result of an or-parallel query run. Solutions are rendered binding
/// lines (`"X=1, Y=2"`); their order across workers is nondeterministic
/// under the threads driver, deterministic (but schedule-dependent) under
/// the sim driver — compare as multisets.
#[derive(Debug)]
pub struct OrReport {
    pub solutions: Vec<String>,
    pub outcome: RunOutcome,
    pub stats: Stats,
    pub per_worker: Vec<Stats>,
    /// Maximum public-tree depth observed (Figure 6/7 shape metric).
    pub max_tree_depth: u32,
    /// Merged event trace (`Some` iff `cfg.trace.enabled`).
    pub trace: Option<Trace>,
}

struct OrShared {
    db: Arc<Database>,
    cfg: EngineConfig,
    root: Arc<OrNode>,
    /// O(1) work-finding: published nodes with unclaimed alternatives.
    pool: AltPool,
    total_alts: Arc<AtomicUsize>,
    busy: AtomicUsize,
    idle: AtomicUsize,
    done: AtomicBool,
    /// Solution accumulation, one buffer per topology domain (a single
    /// buffer when `topology.domain_answer_buffers` is off — the
    /// pre-topology engine-wide lock, kept as the ablation baseline).
    /// Workers append to their own domain's buffer; the buffers are
    /// concatenated in domain order once, at report time.
    answers: Vec<Mutex<Vec<String>>>,
    /// Virtual-time contention observation for each answer buffer.
    answer_clocks: Vec<LockClock>,
    nsolutions: AtomicUsize,
    error: Mutex<Option<String>>,
    cancel: CancelToken,
    worker_stats: Mutex<Vec<Stats>>,
    max_depth: AtomicUsize,
    /// Fault injection (tests/robustness validation); `None` = no faults.
    injector: Option<FaultInjector>,
    /// Completed workers deposit their trace ring buffers here.
    trace_bufs: Mutex<Vec<TraceBuf>>,
    /// Answer-memoization table shared by every machine of the run (and,
    /// when the caller passed one in, across runs); `None` = memo off.
    memo: Option<Arc<MemoTable>>,
    /// Shared tabling space for non-determinate tabled predicates;
    /// `None` = tabling off.
    table: Option<Arc<TableSpace>>,
}

impl OrShared {
    fn finish(&self) {
        self.done.store(true, Ordering::Release);
        self.cancel.cancel();
    }

    fn fail_with(&self, msg: String) {
        let mut e = self.error.lock();
        if e.is_none() {
            *e = Some(msg);
        }
        self.finish();
    }

    fn note_depth(&self, d: u32) {
        self.max_depth.fetch_max(d as usize, Ordering::AcqRel);
    }
}

/// Live metric handles for the or-engine's hot events, pre-resolved from
/// the run's [`MetricsRegistry`] so the hot paths touch only atomics.
/// Built once per worker iff `cfg.metrics` is set; the disabled path is a
/// single `Option` branch per site and charges zero virtual time.
#[derive(Clone)]
struct OrLive {
    publish_fresh: Counter,
    publish_lao: Counter,
    claims_own: Counter,
    claims_domain: Counter,
    claims_cross: Counter,
    materializations: Counter,
    pool_occupancy: Gauge,
}

impl OrLive {
    fn new(m: &MetricsRegistry) -> Self {
        m.describe(
            "ace_or_publishes_total",
            "or-tree node publications by kind (fresh publish vs LAO refill)",
        );
        m.describe(
            "ace_or_claims_total",
            "alternatives claimed from the public tree, by steal scope",
        );
        m.describe(
            "ace_or_closure_materializations_total",
            "deferred state closures frozen on remote demand",
        );
        m.describe(
            "ace_or_pool_occupancy",
            "live node entries advertised in the alternative pool",
        );
        OrLive {
            publish_fresh: m.counter("ace_or_publishes_total", &[("kind", "fresh")]),
            publish_lao: m.counter("ace_or_publishes_total", &[("kind", "lao")]),
            claims_own: m.counter("ace_or_claims_total", &[("scope", "own")]),
            claims_domain: m.counter("ace_or_claims_total", &[("scope", "domain")]),
            claims_cross: m.counter("ace_or_claims_total", &[("scope", "cross")]),
            materializations: m.counter("ace_or_closure_materializations_total", &[]),
            pool_occupancy: m.gauge("ace_or_pool_occupancy", &[]),
        }
    }
}

struct Running {
    machine: Box<Machine>,
    /// Node whose claimed alternative spawned this computation (publish
    /// parent when nothing has been published yet).
    origin: Arc<OrNode>,
    /// Youngest node this machine published (publish parent / LAO target).
    last_published: Option<Arc<OrNode>>,
    /// Nodes this machine published with a *deferred* (procrastinated)
    /// closure, with the epoch each was published at. Polled at every
    /// quantum checkpoint: a remote demand triggers the one-time freeze
    /// ([`OrWorker::service_deferred`]); a deferral that dies un-frozen
    /// (owner drained it, LAO superseded it) is an elided capture.
    deferred: Vec<(Arc<OrNode>, u64)>,
}

struct OrWorker {
    /// Worker index (pool shard selection, diagnostics).
    id: usize,
    sh: Arc<OrShared>,
    /// The run's immutable cost model, hoisted out of the per-steal /
    /// per-publish hot paths (one refcount bump instead of a struct clone).
    costs: Arc<CostModel>,
    current: Option<Running>,
    /// Reset machines kept for reuse so a claim does not pay a fresh
    /// heap/trail allocation (capped at [`MACHINE_POOL_CAP`]).
    #[allow(clippy::vec_box)] // machines move in/out of claims as Box
    free_machines: Vec<Box<Machine>>,
    /// Rendered solutions awaiting one batched append to the shared list.
    pending_answers: Vec<String>,
    stats: Stats,
    phase_cost: u64,
    reported: bool,
    /// This worker is counted in `OrShared::idle` (demand-driven
    /// publication looks at that count).
    marked_idle: bool,
    /// Consecutive no-work phases (exponential idle backoff).
    idle_streak: u32,
    /// Last `find_work` met a deferred node (claim pending on the owner's
    /// materialization): suppress the idle backoff — work is imminent.
    saw_pending: bool,
    /// Event tracing (no-op unless `cfg.trace.enabled`).
    tracer: Tracer,
    /// Virtual time of all phases already returned to the driver; event
    /// timestamps are `vclock + phase_cost` so they are monotone per
    /// worker and track the driver's clock.
    vclock: u64,
    /// Index into `OrShared::answers` (0 when domain buffers are off).
    answer_slot: usize,
    /// Topology steal premiums and contention price, copied out of the
    /// config so the hot paths don't re-borrow `sh`.
    intra_steal: u64,
    cross_steal: u64,
    contended_lock: u64,
    /// Emit `DomainSteal` events (hierarchical scan only — the flat-scan
    /// ablation legitimately crosses domains with local work visible).
    trace_domain_steals: bool,
    /// Live metric handles (`None` unless `cfg.metrics` is attached).
    live: Option<OrLive>,
}

impl OrWorker {
    fn new(id: usize, sh: Arc<OrShared>, costs: Arc<CostModel>) -> Self {
        let tracer = Tracer::new(&sh.cfg.trace, id);
        let topo = &sh.cfg.topology;
        let domain = topo.domain_of(id, sh.cfg.workers.max(1));
        let answer_slot = if topo.domain_answer_buffers {
            domain
        } else {
            0
        };
        let (intra_steal, cross_steal, contended_lock) =
            (topo.intra_steal, topo.cross_steal, topo.contended_lock);
        let trace_domain_steals = topo.hierarchical;
        let live = sh.cfg.metrics.as_deref().map(OrLive::new);
        OrWorker {
            id,
            sh,
            costs,
            current: None,
            free_machines: Vec::new(),
            pending_answers: Vec::new(),
            stats: Stats::new(),
            phase_cost: 0,
            reported: false,
            marked_idle: false,
            idle_streak: 0,
            saw_pending: false,
            tracer,
            vclock: 0,
            answer_slot,
            intra_steal,
            cross_steal,
            contended_lock,
            trace_domain_steals,
            live,
        }
    }

    /// Current worker-local virtual time, for event timestamps.
    #[inline]
    fn now(&self) -> u64 {
        self.vclock + self.phase_cost
    }

    fn mark_idle(&mut self, idle: bool) {
        if idle && !self.marked_idle {
            self.marked_idle = true;
            self.sh.idle.fetch_add(1, Ordering::AcqRel);
        } else if !idle && self.marked_idle {
            self.marked_idle = false;
            self.sh.idle.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[inline]
    fn charge(&mut self, units: u64) {
        self.stats.charge(units);
        self.phase_cost += units;
    }

    /// Absorb observed lock contention into this worker's clock: the
    /// residual wait behind the previous holder plus the topology's
    /// per-event contention price, per contended acquisition. A topology
    /// with `contended_lock == 0` (the flat default) only counts the
    /// events — charging nothing keeps the default machine's virtual
    /// times bit-identical to the pre-topology engine.
    /// `what` names the contended structure ("pool", "answer") for the
    /// `LockWait` trace event — emitted only when the topology actually
    /// prices the contention, so flat runs stay event-identical too.
    fn note_contention(&mut self, what: &'static str, events: u64, wait: u64) {
        if events == 0 {
            return;
        }
        self.stats.lock_contended += events;
        if self.contended_lock == 0 {
            return;
        }
        let units = wait + events * self.contended_lock;
        self.stats.lock_wait_cost += units;
        self.charge(units);
        let t = self.now();
        self.tracer
            .emit(t, || EventKind::LockWait { what, cost: units });
    }

    /// Pool push at the current virtual time, charging any contention
    /// the pool observed. Returns whether an entry was actually added.
    fn pool_push(&mut self, node: &Arc<OrNode>) -> bool {
        let out = self.sh.pool.push(self.id, node, self.now());
        self.note_contention("pool", out.contended, out.lock_wait);
        if out.added {
            if let Some(live) = &self.live {
                live.pool_occupancy.inc();
            }
        }
        out.added
    }

    /// Steal-scope accounting for a successful pool claim: count it,
    /// charge the topology's distance premium, and emit the
    /// `DomainSteal` trace event for non-own scopes (hierarchical scan
    /// only — see `trace_domain_steals`).
    fn note_steal_scope(&mut self, node_id: u64, scope: StealScope, local_work: usize) {
        let (premium, scope_name) = match scope {
            StealScope::Own => {
                self.stats.steals_local_domain += 1;
                if let Some(live) = &self.live {
                    live.claims_own.inc(self.id);
                }
                return;
            }
            StealScope::Domain => {
                self.stats.steals_local_domain += 1;
                if let Some(live) = &self.live {
                    live.claims_domain.inc(self.id);
                }
                (self.intra_steal, "domain")
            }
            StealScope::Cross => {
                self.stats.steals_cross_domain += 1;
                if local_work > 0 {
                    self.stats.steals_cross_eager += 1;
                }
                if let Some(live) = &self.live {
                    live.claims_cross.inc(self.id);
                }
                (self.cross_steal, "cross")
            }
        };
        self.charge(premium);
        if self.trace_domain_steals {
            let t = self.now();
            let local_work = local_work as u64;
            self.tracer.emit(t, || EventKind::DomainSteal {
                node: node_id,
                scope: scope_name,
                local_work,
            });
        }
    }

    /// Install the root query machine (worker 0).
    fn install_root(&mut self, machine: Box<Machine>) {
        self.current = Some(Running {
            machine,
            origin: self.sh.root.clone(),
            last_published: None,
            deferred: Vec::new(),
        });
        // `busy` was pre-set to 1 by the engine.
    }

    // ------------------------------------------------------------------
    // Publication (and LAO)
    // ------------------------------------------------------------------

    /// If idle workers exist, publish this machine's oldest private choice
    /// point into the or-tree (demand-driven, MUSE-style).
    fn maybe_publish(&mut self) {
        if self.sh.idle.load(Ordering::Acquire) == 0 {
            return;
        }
        // Injected transient publication failure: skip this window; the
        // next `run_current` calls here again, so publication is only
        // deferred, never lost (each fault event fires at most once).
        let publish_faulted = self
            .sh
            .injector
            .as_ref()
            .is_some_and(|inj| inj.publish_fails(self.id));
        if publish_faulted {
            self.stats.faults_injected += 1;
            self.stats.publish_retries += 1;
            self.charge(self.costs.queue_op);
            let t = self.now();
            self.tracer.emit(t, || EventKind::FaultInjected {
                kind: "publish-fail",
            });
            self.tracer
                .emit(t, || EventKind::FaultRetry { what: "publish" });
            return;
        }
        let costs = self.costs.clone();
        let lao = self.sh.cfg.opts.lao;
        let Some(run) = self.current.as_mut() else {
            return;
        };
        let Some(&idx) = run.machine.private_choice_indices().first() else {
            return;
        };
        // Frames at or above an active tabled generator are machine-local
        // SLG state (consumer cursors, `$table_answer` markers in their
        // continuations): never published. The subgoal's completed answer
        // set reaches other workers through the shared table space instead.
        if idx >= run.machine.table_publish_floor() {
            return;
        }
        // Only clause-selection choice points are publishable.
        let Some(cp) = run.machine.choice_at(idx) else {
            return;
        };
        let Alts::Clauses {
            name,
            arity,
            key,
            next,
        } = cp.alts
        else {
            // Memo-replay (and other non-clause) alternatives never enter
            // the or-tree: a tabled answer set is already complete, so
            // there is nothing for a remote worker to claim.
            return;
        };
        // Short-circuit claims on calls whose answer set is known complete:
        // keep the choice point private — remote workers could only
        // re-derive answers a memo hit replays for free, and the owner
        // still enumerates the alternatives locally (no solution is lost).
        if let Some(table) = &self.sh.memo {
            let goal = cp.goal;
            let key = run.machine.memo_key(goal);
            self.stats.charge(costs.memo_lookup);
            self.phase_cost += costs.memo_lookup;
            if table.is_complete(&key) {
                return;
            }
        }
        let Some(pred) = self.sh.db.predicate(name, arity) else {
            return;
        };
        let mut alts = VecDeque::new();
        let mut i = next;
        while let Some(j) = pred.next_matching(key, i) {
            alts.push_back(j);
            i = j + 1;
        }
        if alts.is_empty() {
            return;
        }
        let nalts = alts.len();
        // Procrastinated capture (paper schema 2): the expensive state
        // closure is NOT built here. Publication stores metadata only;
        // the freeze happens at most once, at this worker's next
        // checkpoint after a remote claim raises the demand flag
        // (`service_deferred`). All-owner-claimed nodes never pay it.

        // LAO (paper §3.2, Figures 6/7): this computation descends from the
        // node holding its youngest public choice point — `last_published`,
        // or, for a machine spawned from a claimed alternative, its origin
        // node. If that node has been drained (the alternative we continue
        // was its last), install the new choice point into it in place
        // instead of growing the tree. The root sentinel (id 0) is never a
        // reuse target.
        let mut reused = false;
        if lao {
            self.stats.charge(costs.lao_check);
            self.phase_cost += costs.lao_check;
        }
        let candidate = run
            .last_published
            .clone()
            .or_else(|| (run.origin.id != 0).then(|| run.origin.clone()));
        let mut reuse_hit = None;
        if lao {
            if let Some(n) = &candidate {
                if let Some(e) = n.try_reuse((name, arity), alts.clone()) {
                    reuse_hit = Some((n.clone(), e));
                }
            }
        }
        let (node, epoch) = match reuse_hit {
            Some((n, e)) => {
                reused = true;
                (n, e)
            }
            None => {
                let parent = run
                    .last_published
                    .clone()
                    .unwrap_or_else(|| run.origin.clone());
                let n = OrNode::publish(&parent, (name, arity), alts, self.sh.total_alts.clone());
                self.sh.note_depth(n.depth);
                (n, 0)
            }
        };
        run.machine.share_choice(
            idx,
            Arc::new(NodeClaim {
                node: node.clone(),
                epoch,
            }),
        );
        run.last_published = Some(node.clone());
        run.deferred.push((node.clone(), epoch));
        if reused {
            self.stats.cp_reused_lao += 1;
            self.charge(costs.lao_reuse);
            if let Some(live) = &self.live {
                live.publish_lao.inc(self.id);
            }
        } else {
            self.stats.nodes_published += 1;
            self.charge(costs.publish_node + costs.queue_op * nalts as u64);
            if let Some(live) = &self.live {
                live.publish_fresh.inc(self.id);
            }
        }
        let t = self.now();
        let node_id = node.id;
        self.tracer.emit(t, || {
            // Predicate label built inside the closure: disabled tracing
            // must not pay the symbol-table lookup or the allocation.
            let pred = format!("{}/{arity}", sym_name(name));
            if reused {
                EventKind::LaoReuse {
                    node: node_id,
                    epoch,
                    alts: nalts,
                    pred,
                }
            } else {
                EventKind::Publish {
                    node: node_id,
                    epoch,
                    alts: nalts,
                    pred,
                }
            }
        });
        self.tracer.emit(t, || EventKind::ClosureDefer {
            node: node_id,
            epoch,
        });
        // Make the fresh alternatives findable in O(1). An LAO-refilled
        // node may still have a stale pool entry, in which case the push
        // no-ops and the existing entry serves the new alternatives.
        if self.sh.cfg.or_scheduler == OrScheduler::Pool && self.pool_push(&node) {
            self.stats.pool_pushes += 1;
            self.charge(costs.queue_op);
            let t = self.now();
            self.tracer
                .emit(t, || EventKind::PoolPush { node: node_id });
        }
    }

    // ------------------------------------------------------------------
    // Work finding
    // ------------------------------------------------------------------

    /// Find an unclaimed alternative and install it on a machine.
    ///
    /// Under [`OrScheduler::Pool`] this is amortized O(1): pop a node
    /// handle from the shared pool, claim from it, re-enqueue it if it
    /// still has work. Under [`OrScheduler::Traversal`] (the oracle) the
    /// whole public tree is walked from the root. Either way one
    /// `tree_visit` is charged per node actually inspected.
    fn find_work(&mut self) -> bool {
        // Injected transient steal failure: claim nothing this phase; the
        // alternatives stay in the tree/pool (checked before any pop, so
        // every item remains claimable) and this worker retries after its
        // idle backoff.
        self.saw_pending = false;
        let steal_faulted = self.sh.injector.as_ref().is_some_and(|inj| {
            self.sh.total_alts.load(Ordering::Acquire) > 0 && inj.steal_fails(self.id)
        });
        if steal_faulted {
            self.stats.faults_injected += 1;
            self.stats.steal_retries += 1;
            let t = self.now();
            self.tracer
                .emit(t, || EventKind::FaultInjected { kind: "steal-fail" });
            self.tracer
                .emit(t, || EventKind::FaultRetry { what: "steal" });
            return false;
        }
        let costs = self.costs.clone();
        self.sh.busy.fetch_add(1, Ordering::AcqRel);
        let t = self.now();
        self.tracer.emit(t, || EventKind::StealAttempt);

        // Pop/traversal order is the Aurora dispatch policy: deepest-first
        // (bottommost, stack order) or root-first (topmost, queue order).
        let topmost = self.sh.cfg.or_dispatch == ace_runtime::OrDispatch::Topmost;
        let claimed = match self.sh.cfg.or_scheduler {
            OrScheduler::Pool => loop {
                let Some(pop) = self.sh.pool.pop(self.id, topmost, self.now()) else {
                    break None;
                };
                self.note_contention("pool", pop.contended, pop.lock_wait);
                let node = pop.node;
                self.stats.pool_pops += 1;
                if let Some(live) = &self.live {
                    live.pool_occupancy.dec();
                }
                self.stats.tree_visits += 1;
                self.charge(costs.queue_op + costs.tree_visit);
                let t = self.now();
                let node_id = node.id;
                self.tracer.emit(t, || EventKind::PoolPop { node: node_id });
                match node.claim_remote() {
                    RemoteClaim::Ready((idx, epoch, pred, closure)) => {
                        // Keep the node visible to other idle workers while
                        // it still has unclaimed alternatives.
                        if node.has_work() && self.pool_push(&node) {
                            self.stats.pool_pushes += 1;
                            self.charge(costs.queue_op);
                            let t = self.now();
                            self.tracer
                                .emit(t, || EventKind::PoolPush { node: node_id });
                        }
                        // The claim succeeded: price the steal by how far
                        // the entry travelled across the topology.
                        self.note_steal_scope(node_id, pop.scope, pop.local_work);
                        break Some((node, idx, epoch, pred, closure));
                    }
                    // Deferred closure: the demand flag is up now, and the
                    // owner re-advertises the node once it materializes —
                    // no re-push here (a pooled deferred hint would just
                    // spin other idle workers on the same pending node).
                    RemoteClaim::Pending => self.saw_pending = true,
                    // Drained behind the pool's back (owner claims, a cut,
                    // an LAO reuse that was itself re-enqueued): stale
                    // hint, drop.
                    RemoteClaim::Empty => {}
                }
            },
            OrScheduler::Traversal => {
                let mut work: std::collections::VecDeque<_> =
                    std::collections::VecDeque::from([self.sh.root.clone()]);
                loop {
                    let node = if topmost {
                        work.pop_front()
                    } else {
                        work.pop_back()
                    };
                    let Some(node) = node else { break None };
                    self.stats.tree_visits += 1;
                    self.charge(costs.tree_visit);
                    match node.claim_remote() {
                        RemoteClaim::Ready((idx, epoch, pred, closure)) => {
                            break Some((node, idx, epoch, pred, closure));
                        }
                        // Pending: demand recorded; descend — the owner
                        // materializes at its next checkpoint and this
                        // worker's next sweep will find the node ready.
                        RemoteClaim::Pending => {
                            self.saw_pending = true;
                            work.extend(node.children.lock().iter().cloned());
                        }
                        RemoteClaim::Empty => {
                            work.extend(node.children.lock().iter().cloned());
                        }
                    }
                }
            }
        };

        let Some((node, idx, epoch, (name, arity), closure)) = claimed else {
            self.sh.busy.fetch_sub(1, Ordering::AcqRel);
            let t = self.now();
            self.tracer.emit(t, || EventKind::StealFail);
            return false;
        };
        self.stats.alternatives_claimed += 1;
        // Claim bookkeeping only: installing the state is one flat-priced
        // arena thaw, charged by `install_closure` itself (the per-cell
        // copy price died with the eager closure clone).
        self.charge(costs.claim_alternative);
        let t = self.now();
        let node_id = node.id;
        let cells = closure.cells as u64;
        self.tracer.emit(t, || EventKind::ClosureThaw {
            node: node_id,
            epoch,
            cells,
        });
        self.tracer.emit(t, || EventKind::Claim {
            node: node_id,
            epoch,
            alt: idx,
        });
        self.tracer.emit(t, || EventKind::StealSuccess);
        let mut machine = self.acquire_machine();
        let ok = machine.install_closure(&closure, name, arity, idx);
        self.phase_cost += machine.take_unsurfaced_cost();
        if !ok {
            // Head unification failed: the branch dies before any state is
            // set up, so charge the (cheap) abort price, not a full
            // `install_state` — dead branches must not inflate the
            // overhead tables.
            self.charge(costs.install_abort);
            let t = self.now();
            self.tracer
                .emit(t, || EventKind::InstallAbort { node: node_id });
            self.retire_machine(machine);
            self.sh.busy.fetch_sub(1, Ordering::AcqRel);
            return true; // did work (explored and killed a branch)
        }
        self.charge(costs.install_state);
        self.current = Some(Running {
            machine,
            origin: node,
            last_published: None,
            deferred: Vec::new(),
        });
        true
    }

    /// Owner checkpoint for procrastinated captures: poll every node this
    /// machine published with a deferred closure. A raised demand flag
    /// triggers the one-time freeze (`choice_closure` on the live stack)
    /// and re-advertises the node; a deferral that died un-frozen — the
    /// owner's own backtracking drained it, a cut discarded it, or an LAO
    /// reuse superseded its epoch — is an elided capture: the `copy_cost`
    /// the eager scheme would have paid at publish time never happens.
    fn service_deferred(&mut self) {
        let Some(run) = self.current.as_mut() else {
            return;
        };
        if run.deferred.is_empty() {
            return;
        }
        let costs = self.costs.clone();
        let mut i = 0;
        while i < run.deferred.len() {
            let (node, epoch) = run.deferred[i].clone();
            match node.defer_poll(epoch) {
                DeferPoll::Keep => i += 1,
                DeferPoll::Dead => {
                    self.stats.closures_elided += 1;
                    run.deferred.swap_remove(i);
                }
                DeferPoll::Materialize => {
                    let Some(idx) = run.machine.shared_choice_index(node.id, epoch) else {
                        // The choice point left the stack without its
                        // detach hook firing (should not happen); drain
                        // the node so waiting remotes terminate.
                        NodeClaim {
                            node: node.clone(),
                            epoch,
                        }
                        .owner_detached();
                        self.stats.closures_elided += 1;
                        run.deferred.swap_remove(i);
                        continue;
                    };
                    let closure = Arc::new(run.machine.choice_closure(idx));
                    let cells = closure.cells as u64;
                    let freeze_cost = costs.closure_freeze + cells * costs.heap_cell;
                    if node.fulfill_closure(epoch, closure) {
                        self.stats.closures_materialized += 1;
                        if let Some(live) = &self.live {
                            live.materializations.inc(self.id);
                        }
                        // `self.charge` would re-borrow self while `run`
                        // is live; charge the fields directly.
                        self.stats.charge(freeze_cost);
                        self.phase_cost += freeze_cost;
                        let t = self.vclock + self.phase_cost;
                        let node_id = node.id;
                        self.tracer.emit(t, || EventKind::ClosureMaterialize {
                            node: node_id,
                            epoch,
                            cells,
                        });
                        // Re-advertise: the node is now installable, and
                        // the pending claimant holds no pool entry for it
                        // (Pending pops are not re-pushed). Contention is
                        // charged inline for the same reason as above:
                        // `note_contention` takes `&mut self` and `run`
                        // is still live.
                        if self.sh.cfg.or_scheduler == OrScheduler::Pool {
                            let out =
                                self.sh
                                    .pool
                                    .push(self.id, &node, self.vclock + self.phase_cost);
                            if out.contended > 0 {
                                self.stats.lock_contended += out.contended;
                                if self.contended_lock > 0 {
                                    let units = out.lock_wait + out.contended * self.contended_lock;
                                    self.stats.lock_wait_cost += units;
                                    self.stats.charge(units);
                                    self.phase_cost += units;
                                    let t = self.vclock + self.phase_cost;
                                    self.tracer.emit(t, || EventKind::LockWait {
                                        what: "pool",
                                        cost: units,
                                    });
                                }
                            }
                            if out.added {
                                if let Some(live) = &self.live {
                                    live.pool_occupancy.inc();
                                }
                                self.stats.pool_pushes += 1;
                                self.stats.charge(costs.queue_op);
                                self.phase_cost += costs.queue_op;
                                let t = self.vclock + self.phase_cost;
                                self.tracer
                                    .emit(t, || EventKind::PoolPush { node: node_id });
                            }
                        }
                    }
                    run.deferred.swap_remove(i);
                }
            }
        }
    }

    /// A machine ready for `install_closure`: reuse a reset one from the
    /// recycling pool when available (no heap/trail reallocation, interned
    /// handles kept warm), else allocate fresh.
    fn acquire_machine(&mut self) -> Box<Machine> {
        let mut m = match self.free_machines.pop() {
            Some(m) => {
                self.stats.machines_recycled += 1;
                let t = self.now();
                self.tracer.emit(t, || EventKind::MachineRecycle);
                m
            }
            None => Box::new(Machine::new(self.sh.db.clone(), self.costs.clone())),
        };
        if self.sh.memo.is_some() {
            m.set_memo(self.sh.memo.clone(), self.sh.cfg.trace.enabled);
            m.set_memo_tenant(self.sh.cfg.memo_tenant);
        }
        if self.sh.table.is_some() {
            m.set_table(self.sh.table.clone(), self.sh.cfg.trace.enabled);
            m.set_memo_tenant(self.sh.cfg.memo_tenant);
        }
        m.set_clause_exec(self.sh.cfg.clause_exec);
        m.set_dispatch_trace(self.sh.cfg.trace.enabled && self.sh.cfg.trace.dispatch);
        m
    }

    /// Forward memo events buffered by a machine to this worker's tracer
    /// (no-op vector unless memo tracing is on).
    fn emit_memo_events(&mut self, events: Vec<EventKind>) {
        let t = self.vclock + self.phase_cost;
        for ev in events {
            self.tracer.emit(t, || ev);
        }
    }

    /// Harvest a finished machine's counters, reset it, and cache it for
    /// the next claim.
    fn retire_machine(&mut self, mut m: Box<Machine>) {
        let memo_events = m.take_memo_events();
        self.emit_memo_events(memo_events);
        self.harvest(&m);
        m.reset();
        if self.free_machines.len() < MACHINE_POOL_CAP {
            self.free_machines.push(m);
        }
    }

    fn harvest(&mut self, machine: &Machine) {
        let mut ms = machine.stats;
        let c = ms.cost;
        ms.cost = 0;
        self.stats += ms;
        self.stats.cost += c;
    }

    fn drop_current(&mut self) {
        if let Some(run) = self.current.take() {
            // Every deferral still on the watch list is un-materialized by
            // construction (materialization removes its entry): a Failed
            // machine backtracked through all of them, so their captures
            // were elided outright.
            self.stats.closures_elided += run.deferred.len() as u64;
            self.retire_machine(run.machine);
            self.sh.busy.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Move the current machine's rendered solutions into this worker's
    /// batch buffer (no locking; [`OrWorker::flush_answers`] publishes the
    /// whole batch under one `solutions` lock acquisition per phase).
    fn drain_answers(&mut self) {
        let Some(run) = self.current.as_mut() else {
            return;
        };
        if run.machine.answers.is_empty() {
            return;
        }
        let n = run.machine.answers.len();
        self.pending_answers.append(&mut run.machine.answers);
        let t = self.now();
        for _ in 0..n {
            self.tracer.emit(t, || EventKind::Solution);
        }
    }

    /// Publish every batched solution with a single lock acquisition.
    fn flush_answers(&mut self) {
        if self.pending_answers.is_empty() {
            return;
        }
        // Streamed delivery: each answer of the batch is handed to the
        // consumer's sink before publication; a Stop verdict terminates
        // the run early through the same cooperative path as
        // `max_solutions` (the `take(n)` hook).
        if let Some(sink) = self.sh.cfg.sink.clone() {
            for answer in &self.pending_answers {
                self.stats.answers_streamed += 1;
                if sink.deliver(answer).is_stop() {
                    self.stats.sink_stops += 1;
                    self.sh.finish();
                    break;
                }
            }
        }
        let n = self.pending_answers.len();
        // Domain-local accumulation: each domain appends into its own
        // buffer behind its own clock, so 512 workers serialize on at
        // most `domains` locks instead of one engine-wide bottleneck.
        // The virtual-time clock observes any residual contention that
        // does remain within the domain.
        let hold = self.sh.cfg.costs.queue_op + n as u64;
        let wait = self.sh.answer_clocks[self.answer_slot].acquire(self.id, self.now(), hold);
        self.note_contention("answer", u64::from(wait > 0), wait);
        self.sh.answers[self.answer_slot]
            .lock()
            .append(&mut self.pending_answers);
        let total = self.sh.nsolutions.fetch_add(n, Ordering::AcqRel) + n;
        if self.sh.cfg.max_solutions.is_some_and(|max| total >= max) {
            self.sh.finish();
        }
    }

    fn run_current(&mut self) -> Phase {
        // Fine-grained quantum: publication windows in chain-like searches
        // (the Figure-6 `member/2` pattern) are one resolution step wide,
        // so or-parallel distribution needs sub-quantum interleaving.
        let quantum = self.sh.cfg.quantum.min(32);
        let cancel = self.sh.cancel.clone();
        if self.tracer.lifecycle() {
            let t = self.now();
            self.tracer.emit(t, || EventKind::QuantumStart);
        }
        let before = self.phase_cost;
        let run = self.current.as_mut().expect("run_current without machine");
        let status = run.machine.run(quantum, Some(&cancel));
        self.phase_cost += run.machine.take_unsurfaced_cost();
        let memo_events = run.machine.take_memo_events();
        self.emit_memo_events(memo_events);
        if self.tracer.lifecycle() {
            let t = self.now();
            let cost = self.phase_cost - before;
            self.tracer.emit(t, || EventKind::QuantumEnd { cost });
        }
        // Publish *after* running: choice points created inside the
        // quantum (still alive at a Solution boundary) become public
        // before the owner backtracks into them. Only a machine that
        // survives the quantum publishes — a Failed/Cancelled machine is
        // dropped below, and publishing its choice points would enqueue
        // work that is immediately garbage. Service deferred captures
        // first: demand raised during the quantum is answered before new
        // (also deferred) publications join the watch list.
        if matches!(status, Status::Running | Status::Solution) {
            self.service_deferred();
            self.maybe_publish();
        }

        match status {
            Status::Running => {}
            Status::Solution => {
                self.drain_answers();
                self.flush_answers();
                if !self.sh.done.load(Ordering::Acquire) {
                    let run = self.current.as_mut().unwrap();
                    run.machine.backtrack();
                    self.phase_cost += run.machine.take_unsurfaced_cost();
                }
            }
            Status::Failed => {
                self.drain_answers();
                self.drop_current();
            }
            Status::Cancelled => {
                self.drop_current();
            }
            Status::Halted => {
                self.sh.finish();
            }
            Status::Error(e) => {
                self.sh.fail_with(e);
            }
            Status::Parcall
            | Status::ParcallRedo
            | Status::InlineBarrier(_)
            | Status::FenceHit(..) => {
                self.sh.fail_with(
                    "the or-parallel engine does not execute `&` parallel \
                     conjunctions; use the and-parallel engine"
                        .into(),
                );
            }
        }
        self.flush_answers();
        Phase::Busy(self.phase_cost.max(1))
    }
}

impl Agent for OrWorker {
    fn phase(&mut self) -> Phase {
        // Reset before any emission so event timestamps never reuse the
        // previous phase's partial cost.
        self.phase_cost = 0;
        let start = self.vclock;
        let p = self.phase_inner();
        if let Phase::Busy(c) | Phase::Idle(c) = p {
            self.vclock += c;
            if self.tracer.lifecycle() {
                let phase = if matches!(p, Phase::Busy(_)) {
                    "busy"
                } else {
                    "idle"
                };
                self.tracer.emit(start, || EventKind::PhaseStart { phase });
                let end = self.vclock;
                self.tracer.emit(end, || EventKind::PhaseEnd { phase });
            }
        }
        p
    }
}

impl OrWorker {
    fn phase_inner(&mut self) -> Phase {
        if self.sh.done.load(Ordering::Acquire) {
            if !self.reported {
                self.reported = true;
                if let Some(mut run) = self.current.take() {
                    self.stats.closures_elided += run.deferred.len() as u64;
                    let memo_events = run.machine.take_memo_events();
                    self.emit_memo_events(memo_events);
                    self.harvest(&run.machine);
                    self.sh.busy.fetch_sub(1, Ordering::AcqRel);
                }
                self.flush_answers();
                self.sh.worker_stats.lock().push(self.stats);
                if let Some(buf) = self.tracer.take() {
                    self.sh.trace_bufs.lock().push(buf);
                }
            }
            return Phase::Done;
        }
        // Cooperative shutdown: the driver cancels the token when it
        // contains a panic or hits a deadline. A normal `finish()` also
        // cancels, but stores `done` first — so re-checking `done` here
        // distinguishes the two and never fails a completed run.
        if self.sh.cancel.is_cancelled() {
            if !self.sh.done.load(Ordering::Acquire) {
                self.sh
                    .fail_with(format!("{FAULT_ERROR_PREFIX} run cancelled"));
            }
            return Phase::Busy(1);
        }
        // Fault-injection checkpoint (same cadence as the cancel check).
        if let Some(action) = self.sh.injector.as_ref().and_then(|inj| inj.poll(self.id)) {
            self.stats.faults_injected += 1;
            let t = self.now();
            match action {
                FaultAction::Stall(cost) => {
                    self.stats.fault_stalls += 1;
                    self.stats.charge(cost);
                    self.tracer
                        .emit(t, || EventKind::FaultInjected { kind: "stall" });
                    self.tracer.emit(t, || EventKind::FaultStall { cost });
                    return Phase::Busy(cost.max(1));
                }
                FaultAction::Cancel => {
                    self.tracer
                        .emit(t, || EventKind::FaultInjected { kind: "cancel" });
                    self.sh.fail_with(format!(
                        "{FAULT_ERROR_PREFIX} injected cancellation on worker {}",
                        self.id
                    ));
                    return Phase::Busy(1);
                }
                FaultAction::Die => {
                    panic!("{}", ace_runtime::fault::INJECTED_DEATH);
                }
            }
        }
        self.phase_cost = 0;
        if self.current.is_some() {
            self.mark_idle(false);
            self.idle_streak = 0;
            return self.run_current();
        }
        // Idle path: look for work in the public tree. The idle mark stays
        // up across phases so busy workers publish on demand.
        self.mark_idle(true);
        if self.find_work() {
            self.mark_idle(false);
            self.idle_streak = 0;
            return Phase::Busy(self.phase_cost.max(1));
        }
        // Nothing to claim: engine-wide termination check.
        if self.sh.busy.load(Ordering::Acquire) == 0
            && self.sh.total_alts.load(Ordering::Acquire) == 0
        {
            self.sh.finish();
            return Phase::Busy(1);
        }
        // A pending deferred node means its owner is about to materialize:
        // probe again at the base cadence instead of backing off.
        if self.saw_pending {
            self.idle_streak = 0;
        }
        let base = self.costs.idle_probe;
        let p = (base << self.idle_streak.min(6)).min(self.sh.cfg.quantum.max(base));
        self.idle_streak = self.idle_streak.saturating_add(1);
        self.stats.charge_idle(p);
        self.stats.idle_probes += 1;
        let t = self.now();
        self.tracer.emit(t, || EventKind::IdleProbe { cost: p });
        Phase::Idle(p)
    }
}

/// The or-parallel engine: configure once, run queries.
pub struct OrEngine {
    db: Arc<Database>,
}

impl OrEngine {
    pub fn new(db: Arc<Database>) -> Self {
        OrEngine { db }
    }

    /// Run `query` under `cfg`, exploring alternatives or-parallel.
    pub fn run(&self, query: &str, cfg: &EngineConfig) -> Result<OrReport, String> {
        let total_alts = Arc::new(AtomicUsize::new(0));
        // Answer buffers: one per topology domain (or a single shared one
        // when domain buffering is disabled for ablation runs).
        let answer_slots = if cfg.topology.domain_answer_buffers {
            cfg.topology.domains.max(1)
        } else {
            1
        };
        let shared = Arc::new(OrShared {
            db: self.db.clone(),
            cfg: cfg.clone(),
            root: OrNode::root(total_alts.clone()),
            pool: AltPool::new(cfg.workers.max(1), &cfg.topology, cfg.costs.queue_op),
            total_alts,
            busy: AtomicUsize::new(1), // the root machine
            idle: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            answers: (0..answer_slots).map(|_| Mutex::new(Vec::new())).collect(),
            answer_clocks: (0..answer_slots).map(|_| LockClock::new()).collect(),
            nsolutions: AtomicUsize::new(0),
            error: Mutex::new(None),
            cancel: cfg.root_cancel(),
            worker_stats: Mutex::new(Vec::new()),
            max_depth: AtomicUsize::new(0),
            injector: cfg
                .fault_plan
                .as_ref()
                .map(|p| FaultInjector::new(p, cfg.workers.max(1))),
            trace_bufs: Mutex::new(Vec::new()),
            memo: cfg.resolve_memo_table(),
            table: cfg.resolve_table_space(),
        });
        let sink = cfg.trace.enabled.then(|| TraceSink::new(&cfg.trace));

        // Build the root machine with the `$answer`-wrapped query. The one
        // `CostModel` clone of the run lives here; workers and recycled
        // machines share it by refcount.
        let costs = Arc::new(cfg.costs.clone());
        let mut root = Box::new(Machine::new(self.db.clone(), costs.clone()));
        root.set_memo(shared.memo.clone(), cfg.trace.enabled);
        root.set_table(shared.table.clone(), cfg.trace.enabled);
        root.set_memo_tenant(cfg.memo_tenant);
        root.set_clause_exec(cfg.clause_exec);
        root.set_dispatch_trace(cfg.trace.enabled && cfg.trace.dispatch);
        let (goal, mut vars) = ace_logic::parse_term(&mut root.heap, query)
            .map_err(|e| format!("query parse error: {e}"))?;
        vars.sort_by(|a, b| a.0.cmp(&b.0));
        let pairs: Vec<Cell> = vars
            .iter()
            .map(|(n, c)| root.heap.new_struct(wk().unify, &[Cell::Atom(sym(n)), *c]))
            .collect();
        let var_list = root.heap.list(&pairs);
        let answer = root.heap.new_struct(sym("$answer"), &[var_list]);
        let wrapped = root.heap.new_struct(wk().comma, &[goal, answer]);
        root.set_query(wrapped);

        let mut workers: Vec<OrWorker> = (0..cfg.workers.max(1))
            .map(|id| OrWorker::new(id, shared.clone(), costs.clone()))
            .collect();
        workers[0].install_root(root);

        let outcome = match cfg.driver {
            DriverKind::Sim => {
                let agents: Vec<Box<dyn Agent>> = workers
                    .into_iter()
                    .map(|w| Box::new(w) as Box<dyn Agent>)
                    .collect();
                let mut driver =
                    SimDriver::new(cfg.virtual_time_limit).with_cancel(shared.cancel.clone());
                if let Some(s) = &sink {
                    driver = driver.with_trace(s.clone());
                }
                driver.run(agents)
            }
            DriverKind::Threads => {
                let agents: Vec<Box<dyn Agent + Send>> = workers
                    .into_iter()
                    .map(|w| Box::new(w) as Box<dyn Agent + Send>)
                    .collect();
                let mut driver =
                    ThreadsDriver::new(cfg.threads_deadline, Some(shared.cancel.clone()));
                if let Some(s) = &sink {
                    driver = driver.with_trace(s.clone());
                }
                driver.run(agents)
            }
        };

        // Panics and driver aborts carry their own structured, prefixed
        // messages; report them ahead of any secondary error the drain
        // path may have recorded.
        if let Some(a) = &outcome.aborted {
            return Err(a.clone());
        }
        if let Some(e) = shared.error.lock().take() {
            return Err(e);
        }
        let per_worker = shared.worker_stats.lock().clone();
        let mut stats = Stats::new();
        for w in &per_worker {
            stats += *w;
        }
        // Fold the finished run into the live registry (engine totals +
        // per-tenant memo traffic); a scrape between runs sees it.
        if let Some(metrics) = &cfg.metrics {
            metrics.record_run("or", cfg.memo_tenant, &stats, outcome.virtual_time);
        }
        // Concatenate the per-domain answer buffers in domain order. The
        // engine's answer order was never deterministic across workers
        // (callers sort), so domain-major order is as good as arrival
        // order was.
        let mut solutions = Vec::new();
        for buf in &shared.answers {
            solutions.append(&mut buf.lock());
        }
        if let Some(max) = cfg.max_solutions {
            solutions.truncate(max);
        }
        let trace =
            sink.map(|s| Trace::merge(std::mem::take(&mut *shared.trace_bufs.lock()), s.drain()));
        Ok(OrReport {
            solutions,
            outcome,
            stats,
            per_worker,
            max_tree_depth: shared.max_depth.load(Ordering::Acquire) as u32,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_runtime::OptFlags;

    fn db(src: &str) -> Arc<Database> {
        Arc::new(Database::load(src).unwrap())
    }

    fn cfg(workers: usize, opts: OptFlags) -> EngineConfig {
        EngineConfig::default()
            .with_workers(workers)
            .with_opts(opts)
            .all_solutions()
    }

    fn sorted(mut v: Vec<String>) -> Vec<String> {
        v.sort();
        v
    }

    const MEMBER: &str = r#"
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        compute(V, R) :- R is V * V.
    "#;

    #[test]
    fn sequential_equivalence_one_worker() {
        let e = OrEngine::new(db(MEMBER));
        let r = e
            .run(
                "member(V, [1,2,3,4]), compute(V, R)",
                &cfg(1, OptFlags::none()),
            )
            .unwrap();
        assert_eq!(
            r.solutions,
            vec!["R=1, V=1", "R=4, V=2", "R=9, V=3", "R=16, V=4"]
        );
    }

    #[test]
    fn parallel_workers_find_all_solutions() {
        for workers in [2, 4, 8] {
            let e = OrEngine::new(db(MEMBER));
            let r = e
                .run(
                    "member(V, [1,2,3,4,5,6,7,8]), compute(V, R)",
                    &cfg(workers, OptFlags::none()),
                )
                .unwrap();
            assert_eq!(r.solutions.len(), 8, "workers={workers}");
            assert!(r.stats.nodes_published > 0);
            assert!(r.stats.alternatives_claimed > 0);
        }
    }

    #[test]
    fn lao_keeps_tree_shallow() {
        let list = (1..=30)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let q = format!("member(V, [{list}]), compute(V, R)");
        let e = OrEngine::new(db(MEMBER));

        let r0 = e.run(&q, &cfg(4, OptFlags::none())).unwrap();
        let r1 = e.run(&q, &cfg(4, OptFlags::lao_only())).unwrap();
        assert_eq!(sorted(r0.solutions.clone()), sorted(r1.solutions.clone()));
        assert_eq!(r0.solutions.len(), 30);
        assert!(r1.stats.cp_reused_lao > 0, "{:?}", r1.stats);
        // Figure 6 vs Figure 7: without LAO the public tree is a deep
        // member-chain; with LAO alternatives club into few shallow nodes.
        assert!(
            r1.max_tree_depth < r0.max_tree_depth,
            "lao depth {} !< unopt depth {}",
            r1.max_tree_depth,
            r0.max_tree_depth
        );
    }

    #[test]
    fn all_local_claims_never_pay_the_capture() {
        use ace_runtime::{FaultKind, FaultPlan};
        // Starve every worker's steal path: nodes get published (and
        // deferred), but no remote ever raises demand, so the owner must
        // drain everything by direct backtracking and every deferred
        // capture must be elided — zero publish-side cells copied.
        let mut plan = FaultPlan::new(0);
        for w in 0..4 {
            for _ in 0..512 {
                plan = plan.with(w, 0, FaultKind::StealFail);
            }
        }
        let e = OrEngine::new(db(MEMBER));
        let r = e
            .run(
                "member(V, [1,2,3,4,5,6,7,8]), compute(V, R)",
                &cfg(4, OptFlags::all()).with_fault_plan(plan),
            )
            .unwrap();
        assert_eq!(r.solutions.len(), 8);
        assert!(r.stats.nodes_published > 0, "{:?}", r.stats);
        assert_eq!(r.stats.closures_materialized, 0, "{:?}", r.stats);
        assert_eq!(r.stats.cells_copied_publish, 0, "{:?}", r.stats);
        assert_eq!(r.stats.cells_copied_claim, 0, "{:?}", r.stats);
        assert_eq!(
            r.stats.closures_elided,
            r.stats.nodes_published + r.stats.cp_reused_lao,
            "every deferral (publish or LAO re-arm) must be elided: {:?}",
            r.stats
        );
    }

    #[test]
    fn multiple_solutions_per_branch() {
        let e = OrEngine::new(db(
            "p(1). p(2). p(3). q(a). q(b). pair(X, Y) :- p(X), q(Y).",
        ));
        let r = e.run("pair(X, Y)", &cfg(3, OptFlags::lao_only())).unwrap();
        assert_eq!(r.solutions.len(), 6);
    }

    #[test]
    fn first_solution_mode_stops_early() {
        let e = OrEngine::new(db(MEMBER));
        let mut c = cfg(4, OptFlags::none());
        c.max_solutions = Some(1);
        let r = e.run("member(V, [1,2,3,4]), compute(V, R)", &c).unwrap();
        assert_eq!(r.solutions.len(), 1);
    }

    #[test]
    fn failing_query_terminates() {
        let e = OrEngine::new(db(MEMBER));
        let r = e
            .run("member(V, [1,2,3]), V > 100", &cfg(4, OptFlags::lao_only()))
            .unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn deterministic_query_no_publication() {
        let e = OrEngine::new(db("f(1). g(X, Y) :- Y is X + 1."));
        let r = e.run("f(X), g(X, Y)", &cfg(4, OptFlags::none())).unwrap();
        assert_eq!(r.solutions, vec!["X=1, Y=2"]);
        assert_eq!(r.stats.nodes_published, 0);
    }

    #[test]
    fn threads_driver_multiset_equivalence() {
        let e = OrEngine::new(db(MEMBER));
        let mut c = cfg(3, OptFlags::lao_only());
        c.driver = DriverKind::Threads;
        let r = e.run("member(V, [1,2,3,4,5]), compute(V, R)", &c).unwrap();
        assert_eq!(
            sorted(r.solutions),
            vec!["R=1, V=1", "R=16, V=4", "R=25, V=5", "R=4, V=2", "R=9, V=3"]
        );
    }

    #[test]
    fn sim_deterministic() {
        let e = OrEngine::new(db(MEMBER));
        let c = cfg(4, OptFlags::lao_only());
        let q = "member(V, [1,2,3,4,5,6]), compute(V, R)";
        let a = e.run(q, &c).unwrap();
        let b = e.run(q, &c).unwrap();
        assert_eq!(a.outcome.virtual_time, b.outcome.virtual_time);
        assert_eq!(a.solutions, b.solutions);
    }

    #[test]
    fn pool_and_traversal_schedulers_agree() {
        let list = (1..=20)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let q = format!("member(V, [{list}]), compute(V, R)");
        let e = OrEngine::new(db(MEMBER));
        for opts in [OptFlags::none(), OptFlags::lao_only()] {
            let pool = e
                .run(
                    &q,
                    &cfg(4, opts).with_or_scheduler(ace_runtime::OrScheduler::Pool),
                )
                .unwrap();
            let trav = e
                .run(
                    &q,
                    &cfg(4, opts).with_or_scheduler(ace_runtime::OrScheduler::Traversal),
                )
                .unwrap();
            assert_eq!(
                sorted(pool.solutions.clone()),
                sorted(trav.solutions.clone())
            );
            assert_eq!(pool.solutions.len(), 20);
            assert!(pool.stats.pool_pushes > 0, "{:?}", pool.stats);
            assert!(pool.stats.pool_pops > 0);
            assert_eq!(trav.stats.pool_pushes, 0, "oracle must not touch pool");
        }
    }

    #[test]
    fn pool_steal_cost_flat_as_chain_deepens() {
        // The regression the pool exists to prevent: with LAO off, the
        // public tree is a deep member-chain; under the traversal oracle
        // tree_visits per claim grows with depth, under the pool it stays
        // O(1).
        let e = OrEngine::new(db(MEMBER));
        let mut per_claim = Vec::new();
        for n in [10usize, 40] {
            let list = (1..=n).map(|i| i.to_string()).collect::<Vec<_>>().join(",");
            let q = format!("member(V, [{list}]), compute(V, R)");
            let r = e.run(&q, &cfg(4, OptFlags::none())).unwrap();
            assert_eq!(r.solutions.len(), n);
            assert!(r.stats.alternatives_claimed > 0);
            per_claim.push(r.stats.tree_visits as f64 / r.stats.alternatives_claimed as f64);
        }
        for &v in &per_claim {
            assert!(v <= 4.0, "steal cost not O(1): {per_claim:?}");
        }
    }

    #[test]
    fn machines_are_recycled_across_claims() {
        // Per-branch work must dwarf the owner's backtrack step, or the
        // owner drains every published alternative itself through local
        // shared claims and the idle workers (whose machines the pool
        // serves) never install anything.
        let prog = r#"
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
            work(0).
            work(N) :- N > 0, M is N - 1, work(M).
            burn(V, R) :- work(40), R is V * V.
        "#;
        let e = OrEngine::new(db(prog));
        let r = e
            .run(
                "member(V, [1,2,3,4,5,6,7,8,9,10]), burn(V, R)",
                &cfg(4, OptFlags::none()),
            )
            .unwrap();
        assert_eq!(r.solutions.len(), 10);
        assert!(
            r.stats.machines_recycled > 0,
            "expected recycled machines: {:?}",
            r.stats
        );
    }

    const MEMO_PROG: &str = r#"
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        len([], z).
        len([_|T], s(N)) :- len(T, N).
        heavy(R) :- len([a,b,c,d,e,f,g,h], R).
    "#;

    #[test]
    fn memoization_reuses_answers_across_branches_and_runs() {
        use ace_runtime::{MemoConfig, MemoTable};
        let e = OrEngine::new(db(MEMO_PROG));
        // Every or-branch repeats the same deterministic subcall.
        let q = "member(V, [1,2,3,4]), heavy(R)";
        let base = e.run(q, &cfg(4, OptFlags::none())).unwrap();
        assert_eq!(base.solutions.len(), 4);

        let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let c = cfg(4, OptFlags::none()).with_memo_table(table.clone());
        let cold = e.run(q, &c).unwrap();
        assert_eq!(
            sorted(cold.solutions.clone()),
            sorted(base.solutions.clone())
        );
        assert!(cold.stats.memo_stores > 0, "{}", cold.stats.summary());
        // First branch stores; later branches (and their claims on other
        // workers) replay instead of re-deriving.
        assert!(cold.stats.memo_hits > 0, "{}", cold.stats.summary());

        let warm = e.run(q, &c).unwrap();
        assert_eq!(
            sorted(warm.solutions.clone()),
            sorted(base.solutions.clone())
        );
        assert_eq!(warm.stats.memo_stores, 0, "{}", warm.stats.summary());
        assert!(warm.stats.memo_hits > 0);
        assert!(warm.stats.calls < cold.stats.calls);
    }

    #[test]
    fn memo_off_is_bit_identical() {
        let e = OrEngine::new(db(MEMBER));
        let q = "member(V, [1,2,3,4]), compute(V, R)";
        let plain = e.run(q, &cfg(4, OptFlags::lao_only())).unwrap();
        let c = cfg(4, OptFlags::lao_only()).with_memo(ace_runtime::MemoConfig::default());
        let off = e.run(q, &c).unwrap();
        assert_eq!(off.outcome.virtual_time, plain.outcome.virtual_time);
        assert_eq!(off.stats, plain.stats);
        assert_eq!(off.stats.memo_hits + off.stats.memo_misses, 0);
    }

    const TABLED_PATH: &str = r#"
        :- table(path/2).
        path(X, Y) :- path(X, Z), edge(Z, Y).
        path(X, Y) :- edge(X, Y).
        edge(a, b).
        edge(b, c).
        edge(b, d).
        edge(c, a).
        start(a). start(b).
    "#;

    #[test]
    fn tabling_terminates_left_recursion_across_worker_counts() {
        use ace_runtime::{TableConfig, TableSpace};
        let e = OrEngine::new(db(TABLED_PATH));
        // Two or-parallel start nodes, each driving a tabled closure over
        // the cyclic graph (untabled this loops forever).
        let q = "start(S), path(S, X)";
        let expect: Vec<String> = ["a", "b"]
            .iter()
            .flat_map(|s| {
                ["a", "b", "c", "d"]
                    .iter()
                    .map(move |x| format!("S={s}, X={x}"))
            })
            .collect();
        for workers in [1, 2, 4] {
            let space = Arc::new(TableSpace::new(&TableConfig::enabled()));
            let c = cfg(workers, OptFlags::none()).with_table_space(space.clone());
            let r = e.run(q, &c).unwrap();
            assert_eq!(sorted(r.solutions.clone()), expect, "workers={workers}");
            assert!(r.stats.table_subgoals >= 2, "{}", r.stats.summary());
            assert!(r.stats.table_completes >= 2, "{}", r.stats.summary());
            assert_eq!(space.complete_len(), 2, "workers={workers}");

            // Warm second run against the same space: pure lookups.
            let w = e.run(q, &c).unwrap();
            assert_eq!(sorted(w.solutions.clone()), expect);
            assert!(w.stats.table_hits >= 2, "{}", w.stats.summary());
            assert_eq!(w.stats.table_subgoals, 0, "{}", w.stats.summary());
        }
    }

    #[test]
    fn tabling_off_is_bit_identical() {
        let e = OrEngine::new(db(MEMBER));
        let q = "member(V, [1,2,3,4]), compute(V, R)";
        let plain = e.run(q, &cfg(4, OptFlags::lao_only())).unwrap();
        let c = cfg(4, OptFlags::lao_only()).with_table(ace_runtime::TableConfig::default());
        let off = e.run(q, &c).unwrap();
        assert_eq!(off.outcome.virtual_time, plain.outcome.virtual_time);
        assert_eq!(off.stats, plain.stats);
        assert_eq!(off.stats.table_hits + off.stats.table_subgoals, 0);
    }

    #[test]
    fn cut_confined_to_private_region() {
        let e = OrEngine::new(db(r#"
            d(X) :- X > 1, !.
            d(0).
            t(X, Y) :- member(X, [0, 2, 5]), d(X), Y is X * 10.
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
            "#));
        let r = e.run("t(X, Y)", &cfg(1, OptFlags::none())).unwrap();
        assert_eq!(r.solutions, vec!["X=0, Y=0", "X=2, Y=20", "X=5, Y=50"]);
    }

    /// The metrics contract: attaching a registry changes no virtual time
    /// and no stats — live counters observe the run without perturbing it.
    #[test]
    fn metrics_attach_is_bit_identical_and_counts_events() {
        let e = OrEngine::new(db(MEMBER));
        let q = "member(V, [1,2,3,4,5,6,7,8]), compute(V, R)";
        let plain = e.run(q, &cfg(4, OptFlags::all())).unwrap();
        let registry = MetricsRegistry::shared();
        let c = cfg(4, OptFlags::all()).with_metrics(registry.clone());
        let live = e.run(q, &c).unwrap();
        assert_eq!(live.outcome.virtual_time, plain.outcome.virtual_time);
        assert_eq!(live.stats, plain.stats);

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("ace_engine_runs_total", &[("engine", "or")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("ace_engine_virtual_time_total", &[("engine", "or")]),
            Some(live.outcome.virtual_time)
        );
        let published = snap.counter_total("ace_or_publishes_total");
        assert_eq!(
            published,
            live.stats.nodes_published + live.stats.cp_reused_lao
        );
        assert_eq!(
            snap.counter_total("ace_or_claims_total"),
            live.stats.steals_local_domain + live.stats.steals_cross_domain
        );
        // The pool gauge nets out when the run drains all advertised work.
        assert_eq!(snap.gauge_value("ace_or_pool_occupancy", &[]), Some(0));
    }
}
