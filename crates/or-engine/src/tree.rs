//! The shared or-tree: published choice points and their alternative pools.
//!
//! Closure capture is **procrastinated** (the paper's schema 2): a
//! publication stores only choice-point metadata — the expensive state
//! snapshot stays un-captured ([`ClosureState::Deferred`]) until the
//! first *remote* claim attempt raises the demand flag, after which the
//! owner freezes the closure once at its next checkpoint
//! ([`OrNode::fulfill_closure`]). A node whose alternatives are all
//! consumed by the owner's own backtracking never pays the copy.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ace_logic::Sym;
use ace_machine::frames::SharedChoice;
use ace_machine::machine::StateClosure;
use parking_lot::Mutex;

static NODE_IDS: AtomicU64 = AtomicU64::new(1);

/// What a remote claim hands back: the claimed clause index, the payload
/// epoch it was claimed at, the predicate, and the closure to run against.
pub type ClaimedAlt = (usize, u64, (Sym, u32), Arc<StateClosure>);

/// The materialization state of a published node's closure.
pub enum ClosureState {
    /// Capture procrastinated: only the owner can produce the closure,
    /// and only a remote demand makes it do so.
    Deferred,
    /// Frozen and installable by any claimant.
    Ready(Arc<StateClosure>),
}

/// Outcome of a remote claim attempt ([`OrNode::claim_remote`]).
pub enum RemoteClaim {
    /// An alternative was taken; install and run it.
    Ready(ClaimedAlt),
    /// Alternatives exist but the closure is still deferred: the demand
    /// flag is now raised and the owner will materialize at its next
    /// checkpoint. No alternative was consumed — come back later.
    Pending,
    /// Nothing to claim (drained or never published at this epoch).
    Empty,
}

/// What the owner should do with a deferred node it is polling
/// ([`OrNode::defer_poll`]).
#[derive(Debug, PartialEq, Eq)]
pub enum DeferPoll {
    /// A remote wants the closure: freeze it now and
    /// [`OrNode::fulfill_closure`].
    Materialize,
    /// No demand yet; keep polling.
    Keep,
    /// The deferral is moot — drained, reused at a younger epoch, or
    /// already materialized. Stop tracking (counts as an elision when the
    /// closure was never frozen).
    Dead,
}

/// The claimable content of a node. Replaced wholesale by an LAO reuse,
/// with `epoch` incremented so stale owner choice points claim nothing.
pub struct Payload {
    pub epoch: u64,
    /// Predicate whose clauses the alternatives index.
    pub pred: (Sym, u32),
    /// Untried clause indices.
    pub alts: VecDeque<usize>,
    /// Machine state at the choice point (installed by remote claimants);
    /// deferred until first remote demand.
    pub closure: ClosureState,
    /// A remote tried to claim while the closure was deferred (owner
    /// checks this at its checkpoints). Guarded by the payload mutex.
    remote_wanted: bool,
}

/// One public choice point of the or-tree.
pub struct OrNode {
    pub id: u64,
    /// Distance from the root sentinel (the work-finding traversal cost
    /// LAO keeps low; asserted on by the Figure-6/7 shape tests).
    pub depth: u32,
    pub payload: Mutex<Option<Payload>>,
    pub children: Mutex<Vec<Arc<OrNode>>>,
    /// Global count of unclaimed alternatives (termination detection).
    total_alts: Arc<AtomicUsize>,
    /// Whether a handle to this node currently sits in the alternative
    /// pool (at most one live entry per node; see [`crate::pool::AltPool`]).
    in_pool: AtomicBool,
    /// Lock-free mirror of the payload's bookkeeping —
    /// `epoch << 3 | empty << 2 | ready << 1 | wanted` — kept in sync
    /// under the payload mutex by every mutating method. The owner's
    /// per-quantum deferral sweep ([`OrNode::defer_poll`]) and the steal
    /// path's liveness check ([`OrNode::has_work`]) read this word
    /// instead of taking the mutex, so epoch bookkeeping costs one load
    /// per node instead of a lock acquisition — the difference between
    /// O(deferred) atomic reads and O(deferred) mutex round-trips every
    /// quantum at 512 workers. Direct payload surgery (tests) must be
    /// followed by a mutating method before these fast paths are trusted.
    meta: AtomicU64,
}

/// Bit layout of [`OrNode::meta`].
const META_WANTED: u64 = 1;
const META_READY: u64 = 2;
const META_EMPTY: u64 = 4;
const META_EPOCH_SHIFT: u32 = 3;

fn meta_word(p: &Option<Payload>) -> u64 {
    match p {
        None => META_EMPTY,
        Some(p) => {
            (p.epoch << META_EPOCH_SHIFT)
                | if p.alts.is_empty() { META_EMPTY } else { 0 }
                | if matches!(p.closure, ClosureState::Ready(_)) {
                    META_READY
                } else {
                    0
                }
                | if p.remote_wanted { META_WANTED } else { 0 }
        }
    }
}

impl OrNode {
    /// The root sentinel: no alternatives, depth 0.
    pub fn root(total_alts: Arc<AtomicUsize>) -> Arc<OrNode> {
        Arc::new(OrNode {
            id: 0,
            depth: 0,
            payload: Mutex::new(None),
            children: Mutex::new(Vec::new()),
            total_alts,
            in_pool: AtomicBool::new(false),
            meta: AtomicU64::new(META_EMPTY),
        })
    }

    /// Re-mirror the payload's bookkeeping into [`OrNode::meta`]. Must be
    /// called (and only makes sense) while holding the payload mutex.
    fn sync_meta(&self, p: &Option<Payload>) {
        self.meta.store(meta_word(p), Ordering::Release);
    }

    /// Publish a fresh node under `parent`. The closure is *not* captured:
    /// publication stores metadata only (procrastinated capture).
    pub fn publish(
        parent: &Arc<OrNode>,
        pred: (Sym, u32),
        alts: VecDeque<usize>,
        total_alts: Arc<AtomicUsize>,
    ) -> Arc<OrNode> {
        total_alts.fetch_add(alts.len(), Ordering::AcqRel);
        let payload = Some(Payload {
            epoch: 0,
            pred,
            alts,
            closure: ClosureState::Deferred,
            remote_wanted: false,
        });
        let meta = AtomicU64::new(meta_word(&payload));
        let node = Arc::new(OrNode {
            id: NODE_IDS.fetch_add(1, Ordering::Relaxed),
            depth: parent.depth + 1,
            payload: Mutex::new(payload),
            children: Mutex::new(Vec::new()),
            total_alts,
            in_pool: AtomicBool::new(false),
            meta,
        });
        parent.children.lock().push(node.clone());
        node
    }

    /// Flip the pool-membership flag on; `false` means the node already has
    /// a live pool entry and must not be enqueued again.
    pub fn try_enter_pool(&self) -> bool {
        self.in_pool
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Flip the pool-membership flag off (the entry was dequeued).
    pub fn leave_pool(&self) {
        self.in_pool.store(false, Ordering::Release);
    }

    /// LAO: install a *new* choice point's alternatives into this node in
    /// place, bumping the epoch (Figure 7 — "B1 can be updated with the
    /// information that would be stored in B2"). Atomic: fails (returns
    /// `None`) if the node still holds unclaimed alternatives — the caller
    /// then publishes a fresh node instead. The new epoch starts deferred
    /// again: the reused slot's demand history does not carry over.
    pub fn try_reuse(&self, pred: (Sym, u32), alts: VecDeque<usize>) -> Option<u64> {
        let mut p = self.payload.lock();
        if p.as_ref().is_some_and(|p| !p.alts.is_empty()) {
            return None;
        }
        let epoch = p.as_ref().map_or(0, |p| p.epoch) + 1;
        self.total_alts.fetch_add(alts.len(), Ordering::AcqRel);
        *p = Some(Payload {
            epoch,
            pred,
            alts,
            closure: ClosureState::Deferred,
            remote_wanted: false,
        });
        self.sync_meta(&p);
        Some(epoch)
    }

    /// Remote claim attempt. Only a materialized node yields an
    /// alternative; a deferred node records the demand and returns
    /// [`RemoteClaim::Pending`] without consuming anything — the owner
    /// freezes the closure at its next checkpoint and re-advertises the
    /// node.
    pub fn claim_remote(&self) -> RemoteClaim {
        let mut p = self.payload.lock();
        let Some(payload) = p.as_mut() else {
            return RemoteClaim::Empty;
        };
        if payload.alts.is_empty() {
            return RemoteClaim::Empty;
        }
        let claim = match &payload.closure {
            ClosureState::Deferred => {
                payload.remote_wanted = true;
                RemoteClaim::Pending
            }
            ClosureState::Ready(closure) => {
                let closure = closure.clone();
                let idx = payload.alts.pop_front().expect("checked non-empty");
                self.total_alts.fetch_sub(1, Ordering::AcqRel);
                RemoteClaim::Ready((idx, payload.epoch, payload.pred, closure))
            }
        };
        self.sync_meta(&p);
        claim
    }

    /// Owner side of materialization: install the frozen closure for
    /// `epoch`. Returns `false` (and drops the closure) when the deferral
    /// is moot — epoch superseded by LAO reuse, payload gone, or already
    /// fulfilled.
    pub fn fulfill_closure(&self, epoch: u64, closure: Arc<StateClosure>) -> bool {
        let mut p = self.payload.lock();
        let fulfilled = match p.as_mut() {
            Some(payload)
                if payload.epoch == epoch && matches!(payload.closure, ClosureState::Deferred) =>
            {
                payload.closure = ClosureState::Ready(closure);
                true
            }
            _ => false,
        };
        if fulfilled {
            self.sync_meta(&p);
        }
        fulfilled
    }

    /// Owner checkpoint poll of a node it published with a deferred
    /// closure at `epoch`. Lock-free: reads the `OrNode::meta` mirror,
    /// so the owner's per-quantum sweep over its deferral list costs one
    /// atomic load per node — the payload mutex is only taken when this
    /// answers [`DeferPoll::Materialize`] and the owner goes on to
    /// freeze and [`OrNode::fulfill_closure`].
    pub fn defer_poll(&self, epoch: u64) -> DeferPoll {
        let m = self.meta.load(Ordering::Acquire);
        if (m >> META_EPOCH_SHIFT) != epoch || m & (META_EMPTY | META_READY) != 0 {
            return DeferPoll::Dead;
        }
        if m & META_WANTED != 0 {
            DeferPoll::Materialize
        } else {
            DeferPoll::Keep
        }
    }

    /// Any unclaimed alternatives right now? Lock-free (`OrNode::meta`):
    /// the steal path consults this after every claim to decide on
    /// re-advertisement without re-entering the payload mutex.
    pub fn has_work(&self) -> bool {
        self.meta.load(Ordering::Acquire) & META_EMPTY == 0
    }

    /// Any unclaimed alternatives *installable by a remote* right now
    /// (materialized and non-empty)?
    pub fn has_ready_work(&self) -> bool {
        self.payload
            .lock()
            .as_ref()
            .is_some_and(|p| !p.alts.is_empty() && matches!(p.closure, ClosureState::Ready(_)))
    }

    /// Is the alternative pool empty (reusable under LAO)?
    pub fn is_drained(&self) -> bool {
        self.payload
            .lock()
            .as_ref()
            .is_none_or(|p| p.alts.is_empty())
    }

    pub fn current_epoch(&self) -> u64 {
        self.payload.lock().as_ref().map_or(0, |p| p.epoch)
    }
}

impl std::fmt::Debug for OrNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrNode")
            .field("id", &self.id)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

/// The owner-side view of a published choice point, installed into the
/// machine's [`ace_machine::ChoicePoint`]. Epoch-guarded so that after an
/// LAO reuse the owner's *older* choice point referencing the same node
/// stops claiming (the node now belongs to a younger choice point).
pub struct NodeClaim {
    pub node: Arc<OrNode>,
    pub epoch: u64,
}

impl SharedChoice for NodeClaim {
    fn claim_next(&self) -> Option<usize> {
        let mut p = self.node.payload.lock();
        let payload = p.as_mut()?;
        if payload.epoch != self.epoch {
            return None; // node was reused by a younger choice point
        }
        let idx = payload.alts.pop_front()?;
        self.node.total_alts.fetch_sub(1, Ordering::AcqRel);
        self.node.sync_meta(&p);
        Some(idx)
    }

    fn owner_detached(&self) {
        // Cut or exhaustion on the owner side: discard untried alternatives
        // of *this epoch* (cut semantics; see crate-level restrictions).
        let mut p = self.node.payload.lock();
        if let Some(payload) = p.as_mut() {
            if payload.epoch == self.epoch {
                let n = payload.alts.len();
                payload.alts.clear();
                self.node.total_alts.fetch_sub(n, Ordering::AcqRel);
                self.node.sync_meta(&p);
            }
        }
    }

    fn node_id(&self) -> u64 {
        self.node.id
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_logic::{sym, Heap};

    fn closure() -> Arc<StateClosure> {
        let mut h = Heap::new();
        let tuple = h.new_struct(sym("$closure"), &[ace_logic::Cell::Nil]);
        Arc::new(StateClosure::freeze(&h, tuple, 0))
    }

    fn counter() -> Arc<AtomicUsize> {
        Arc::new(AtomicUsize::new(0))
    }

    #[test]
    fn publish_links_and_counts() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(
            &root,
            (sym("p"), 1),
            VecDeque::from([1, 2, 3]),
            total.clone(),
        );
        assert_eq!(total.load(Ordering::Acquire), 3);
        assert_eq!(node.depth, 1);
        assert_eq!(root.children.lock().len(), 1);
        assert!(node.has_work());
        // capture was procrastinated: nothing is remotely installable yet
        assert!(!node.has_ready_work());
    }

    #[test]
    fn deferred_claim_raises_demand_then_fulfill_serves_remotes() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(&root, (sym("p"), 1), VecDeque::from([5, 7]), total.clone());

        // no demand yet: the owner keeps the deferral parked
        assert_eq!(node.defer_poll(0), DeferPoll::Keep);

        // a remote attempt consumes nothing and raises the flag
        assert!(matches!(node.claim_remote(), RemoteClaim::Pending));
        assert_eq!(total.load(Ordering::Acquire), 2);
        assert_eq!(node.defer_poll(0), DeferPoll::Materialize);

        // owner materializes once; the node becomes claimable
        assert!(node.fulfill_closure(0, closure()));
        assert_eq!(node.defer_poll(0), DeferPoll::Dead); // already ready
        let RemoteClaim::Ready((i1, epoch, pred, _)) = node.claim_remote() else {
            panic!("expected a ready claim");
        };
        assert_eq!(i1, 5);
        assert_eq!(epoch, 0);
        assert_eq!(pred, (sym("p"), 1));
        let RemoteClaim::Ready((i2, ..)) = node.claim_remote() else {
            panic!("expected a ready claim");
        };
        assert_eq!(i2, 7);
        assert!(matches!(node.claim_remote(), RemoteClaim::Empty));
        assert!(node.is_drained());
        assert_eq!(total.load(Ordering::Acquire), 0);

        // double-fulfill is refused (closure already installed)
        assert!(!node.fulfill_closure(0, closure()));
    }

    #[test]
    fn owner_drain_elides_the_deferred_capture() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(&root, (sym("p"), 1), VecDeque::from([1, 2]), total.clone());
        let owner = NodeClaim {
            node: node.clone(),
            epoch: 0,
        };
        // the owner's own backtracking drains the node without any freeze
        assert_eq!(owner.claim_next(), Some(1));
        assert_eq!(owner.claim_next(), Some(2));
        assert_eq!(owner.claim_next(), None);
        assert_eq!(node.defer_poll(0), DeferPoll::Dead);
        assert!(matches!(node.claim_remote(), RemoteClaim::Empty));
    }

    #[test]
    fn lao_reuse_bumps_epoch_and_blocks_stale_claims() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(&root, (sym("p"), 1), VecDeque::from([1]), total.clone());
        let stale = NodeClaim {
            node: node.clone(),
            epoch: 0,
        };
        assert_eq!(stale.epoch(), 0);
        assert_eq!(stale.claim_next(), Some(1));
        assert!(node.is_drained());

        let epoch = node
            .try_reuse((sym("q"), 2), VecDeque::from([0, 1]))
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(total.load(Ordering::Acquire), 2);
        // the stale owner claim sees nothing
        assert_eq!(stale.claim_next(), None);
        // a stale fulfill (for the superseded epoch) is refused
        assert!(!node.fulfill_closure(0, closure()));
        assert_eq!(node.defer_poll(0), DeferPoll::Dead);
        // a fresh claim at the right epoch works
        let fresh = NodeClaim {
            node: node.clone(),
            epoch,
        };
        assert_eq!(fresh.claim_next(), Some(0));
        // depth is unchanged — that is the whole point of LAO
        assert_eq!(node.depth, 1);
    }

    #[test]
    fn meta_mirror_tracks_payload_through_every_mutation() {
        let total = counter();
        let root = OrNode::root(total.clone());
        // Root: no payload, mirrored as empty.
        assert!(!root.has_work());

        let node = OrNode::publish(&root, (sym("p"), 1), VecDeque::from([1, 2]), total.clone());
        let locked_has_work = |n: &OrNode| {
            n.payload
                .lock()
                .as_ref()
                .is_some_and(|p| !p.alts.is_empty())
        };
        assert_eq!(node.has_work(), locked_has_work(&node));

        // Demand flag, materialization, and claims all re-mirror.
        assert!(matches!(node.claim_remote(), RemoteClaim::Pending));
        assert_eq!(node.defer_poll(0), DeferPoll::Materialize);
        assert!(node.fulfill_closure(0, closure()));
        assert!(matches!(node.claim_remote(), RemoteClaim::Ready(_)));
        assert_eq!(node.has_work(), locked_has_work(&node));
        assert!(matches!(node.claim_remote(), RemoteClaim::Ready(_)));
        assert!(!node.has_work());
        assert_eq!(node.has_work(), locked_has_work(&node));

        // LAO reuse re-arms the mirror at the bumped epoch.
        let epoch = node.try_reuse((sym("q"), 1), VecDeque::from([7])).unwrap();
        assert!(node.has_work());
        assert_eq!(node.defer_poll(epoch), DeferPoll::Keep);

        // Owner-side drain through the claim handle re-mirrors too.
        let owner = NodeClaim {
            node: node.clone(),
            epoch,
        };
        assert_eq!(owner.claim_next(), Some(7));
        assert!(!node.has_work());
        owner.owner_detached();
        assert_eq!(node.defer_poll(epoch), DeferPoll::Dead);
    }

    #[test]
    fn owner_detached_discards_only_its_epoch() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(&root, (sym("p"), 1), VecDeque::from([1, 2]), total.clone());
        let old = NodeClaim {
            node: node.clone(),
            epoch: 0,
        };
        // reuse first (epoch 1), then detach the old claim
        node.payload.lock().as_mut().unwrap().alts.clear();
        total.store(0, Ordering::Release);
        let epoch = node.try_reuse((sym("q"), 1), VecDeque::from([0])).unwrap();
        old.owner_detached();
        assert_eq!(total.load(Ordering::Acquire), 1, "new epoch untouched");
        let new = NodeClaim { node, epoch };
        new.owner_detached();
        assert_eq!(total.load(Ordering::Acquire), 0);
    }
}
