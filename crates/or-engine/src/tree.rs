//! The shared or-tree: published choice points and their alternative pools.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ace_logic::Sym;
use ace_machine::frames::SharedChoice;
use ace_machine::machine::StateClosure;
use parking_lot::Mutex;

static NODE_IDS: AtomicU64 = AtomicU64::new(1);

/// What a remote claim hands back: the claimed clause index, the payload
/// epoch it was claimed at, the predicate, and the closure to run against.
pub type ClaimedAlt = (usize, u64, (Sym, u32), Arc<StateClosure>);

/// The claimable content of a node. Replaced wholesale by an LAO reuse,
/// with `epoch` incremented so stale owner choice points claim nothing.
pub struct Payload {
    pub epoch: u64,
    /// Predicate whose clauses the alternatives index.
    pub pred: (Sym, u32),
    /// Untried clause indices.
    pub alts: VecDeque<usize>,
    /// Machine state at the choice point (installed by remote claimants).
    pub closure: Arc<StateClosure>,
}

/// One public choice point of the or-tree.
pub struct OrNode {
    pub id: u64,
    /// Distance from the root sentinel (the work-finding traversal cost
    /// LAO keeps low; asserted on by the Figure-6/7 shape tests).
    pub depth: u32,
    pub payload: Mutex<Option<Payload>>,
    pub children: Mutex<Vec<Arc<OrNode>>>,
    /// Global count of unclaimed alternatives (termination detection).
    total_alts: Arc<AtomicUsize>,
    /// Whether a handle to this node currently sits in the alternative
    /// pool (at most one live entry per node; see [`crate::pool::AltPool`]).
    in_pool: AtomicBool,
}

impl OrNode {
    /// The root sentinel: no alternatives, depth 0.
    pub fn root(total_alts: Arc<AtomicUsize>) -> Arc<OrNode> {
        Arc::new(OrNode {
            id: 0,
            depth: 0,
            payload: Mutex::new(None),
            children: Mutex::new(Vec::new()),
            total_alts,
            in_pool: AtomicBool::new(false),
        })
    }

    /// Publish a fresh node under `parent`.
    pub fn publish(
        parent: &Arc<OrNode>,
        pred: (Sym, u32),
        alts: VecDeque<usize>,
        closure: Arc<StateClosure>,
        total_alts: Arc<AtomicUsize>,
    ) -> Arc<OrNode> {
        total_alts.fetch_add(alts.len(), Ordering::AcqRel);
        let node = Arc::new(OrNode {
            id: NODE_IDS.fetch_add(1, Ordering::Relaxed),
            depth: parent.depth + 1,
            payload: Mutex::new(Some(Payload {
                epoch: 0,
                pred,
                alts,
                closure,
            })),
            children: Mutex::new(Vec::new()),
            total_alts,
            in_pool: AtomicBool::new(false),
        });
        parent.children.lock().push(node.clone());
        node
    }

    /// Flip the pool-membership flag on; `false` means the node already has
    /// a live pool entry and must not be enqueued again.
    pub fn try_enter_pool(&self) -> bool {
        self.in_pool
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Flip the pool-membership flag off (the entry was dequeued).
    pub fn leave_pool(&self) {
        self.in_pool.store(false, Ordering::Release);
    }

    /// LAO: install a *new* choice point's alternatives into this node in
    /// place, bumping the epoch (Figure 7 — "B1 can be updated with the
    /// information that would be stored in B2"). Atomic: fails (returns
    /// `None`) if the node still holds unclaimed alternatives — the caller
    /// then publishes a fresh node instead.
    pub fn try_reuse(
        &self,
        pred: (Sym, u32),
        alts: VecDeque<usize>,
        closure: Arc<StateClosure>,
    ) -> Option<u64> {
        let mut p = self.payload.lock();
        if p.as_ref().is_some_and(|p| !p.alts.is_empty()) {
            return None;
        }
        let epoch = p.as_ref().map_or(0, |p| p.epoch) + 1;
        self.total_alts.fetch_add(alts.len(), Ordering::AcqRel);
        *p = Some(Payload {
            epoch,
            pred,
            alts,
            closure,
        });
        Some(epoch)
    }

    /// Remote claim: atomically take one alternative together with the
    /// epoch it was claimed at and the closure it must run against.
    pub fn claim_remote(&self) -> Option<ClaimedAlt> {
        let mut p = self.payload.lock();
        let payload = p.as_mut()?;
        let idx = payload.alts.pop_front()?;
        self.total_alts.fetch_sub(1, Ordering::AcqRel);
        Some((idx, payload.epoch, payload.pred, payload.closure.clone()))
    }

    /// Any unclaimed alternatives right now?
    pub fn has_work(&self) -> bool {
        self.payload
            .lock()
            .as_ref()
            .is_some_and(|p| !p.alts.is_empty())
    }

    /// Is the alternative pool empty (reusable under LAO)?
    pub fn is_drained(&self) -> bool {
        self.payload
            .lock()
            .as_ref()
            .is_none_or(|p| p.alts.is_empty())
    }

    pub fn current_epoch(&self) -> u64 {
        self.payload.lock().as_ref().map_or(0, |p| p.epoch)
    }
}

impl std::fmt::Debug for OrNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrNode")
            .field("id", &self.id)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

/// The owner-side view of a published choice point, installed into the
/// machine's [`ace_machine::ChoicePoint`]. Epoch-guarded so that after an
/// LAO reuse the owner's *older* choice point referencing the same node
/// stops claiming (the node now belongs to a younger choice point).
pub struct NodeClaim {
    pub node: Arc<OrNode>,
    pub epoch: u64,
}

impl SharedChoice for NodeClaim {
    fn claim_next(&self) -> Option<usize> {
        let mut p = self.node.payload.lock();
        let payload = p.as_mut()?;
        if payload.epoch != self.epoch {
            return None; // node was reused by a younger choice point
        }
        let idx = payload.alts.pop_front()?;
        self.node.total_alts.fetch_sub(1, Ordering::AcqRel);
        Some(idx)
    }

    fn owner_detached(&self) {
        // Cut or exhaustion on the owner side: discard untried alternatives
        // of *this epoch* (cut semantics; see crate-level restrictions).
        let mut p = self.node.payload.lock();
        if let Some(payload) = p.as_mut() {
            if payload.epoch == self.epoch {
                let n = payload.alts.len();
                payload.alts.clear();
                self.node.total_alts.fetch_sub(n, Ordering::AcqRel);
            }
        }
    }

    fn node_id(&self) -> u64 {
        self.node.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_logic::{sym, Heap};

    fn closure() -> Arc<StateClosure> {
        Arc::new(StateClosure {
            heap: Heap::new(),
            goal: ace_logic::Cell::Nil,
            cont: Vec::new(),
            cells: 0,
        })
    }

    fn counter() -> Arc<AtomicUsize> {
        Arc::new(AtomicUsize::new(0))
    }

    #[test]
    fn publish_links_and_counts() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(
            &root,
            (sym("p"), 1),
            VecDeque::from([1, 2, 3]),
            closure(),
            total.clone(),
        );
        assert_eq!(total.load(Ordering::Acquire), 3);
        assert_eq!(node.depth, 1);
        assert_eq!(root.children.lock().len(), 1);
        assert!(node.has_work());
    }

    #[test]
    fn remote_claims_drain_the_pool() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(
            &root,
            (sym("p"), 1),
            VecDeque::from([5, 7]),
            closure(),
            total.clone(),
        );
        let (i1, epoch, pred, _) = node.claim_remote().unwrap();
        assert_eq!(i1, 5);
        assert_eq!(epoch, 0);
        assert_eq!(pred, (sym("p"), 1));
        let (i2, ..) = node.claim_remote().unwrap();
        assert_eq!(i2, 7);
        assert!(node.claim_remote().is_none());
        assert!(node.is_drained());
        assert_eq!(total.load(Ordering::Acquire), 0);
    }

    #[test]
    fn lao_reuse_bumps_epoch_and_blocks_stale_claims() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(
            &root,
            (sym("p"), 1),
            VecDeque::from([1]),
            closure(),
            total.clone(),
        );
        let stale = NodeClaim {
            node: node.clone(),
            epoch: 0,
        };
        assert_eq!(stale.claim_next(), Some(1));
        assert!(node.is_drained());

        let epoch = node
            .try_reuse((sym("q"), 2), VecDeque::from([0, 1]), closure())
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(total.load(Ordering::Acquire), 2);
        // the stale owner claim sees nothing
        assert_eq!(stale.claim_next(), None);
        // a fresh claim at the right epoch works
        let fresh = NodeClaim {
            node: node.clone(),
            epoch,
        };
        assert_eq!(fresh.claim_next(), Some(0));
        // depth is unchanged — that is the whole point of LAO
        assert_eq!(node.depth, 1);
    }

    #[test]
    fn owner_detached_discards_only_its_epoch() {
        let total = counter();
        let root = OrNode::root(total.clone());
        let node = OrNode::publish(
            &root,
            (sym("p"), 1),
            VecDeque::from([1, 2]),
            closure(),
            total.clone(),
        );
        let old = NodeClaim {
            node: node.clone(),
            epoch: 0,
        };
        // reuse first (epoch 1), then detach the old claim
        node.payload.lock().as_mut().unwrap().alts.clear();
        total.store(0, Ordering::Release);
        let epoch = node
            .try_reuse((sym("q"), 1), VecDeque::from([0]), closure())
            .unwrap();
        old.owner_detached();
        assert_eq!(total.load(Ordering::Acquire), 1, "new epoch untouched");
        let new = NodeClaim { node, epoch };
        new.owner_detached();
        assert_eq!(total.load(Ordering::Acquire), 0);
    }
}
