//! The shared alternative pool: O(1) work-finding for idle workers.
//!
//! The original scheduler walked the whole public tree from the root on
//! every steal attempt, so idle-worker cost grew with tree size — exactly
//! the traversal overhead the paper's flattening schema exists to shrink.
//! The pool inverts the data flow: *publication* enqueues a handle to the
//! node carrying fresh alternatives, and an idle worker dequeues one handle
//! and claims from it directly. Steal cost is then amortized O(1) in the
//! size of the public tree.
//!
//! Design points:
//!
//! * **Sharded.** One deque per worker; a worker pushes to its own shard
//!   and pops from its own shard first, then scans victims round-robin.
//!   Contention is a per-shard mutex, not a global one, and the scan order
//!   is deterministic so the sim driver stays replayable.
//! * **Membership flag, not ownership.** The pool holds `Arc<OrNode>`
//!   *hints*, never alternatives themselves: all claims still go through
//!   the node payload's mutex ([`OrNode::claim_remote`]), so the pool can
//!   never double-issue an alternative and an injected steal failure (which
//!   returns before any pop) leaves every item claimable. Each node tracks
//!   whether it is currently pooled ([`OrNode::try_enter_pool`]) so it has
//!   at most one live pool entry: a popped node that still has work after a
//!   claim is re-enqueued, one that was drained behind the pool's back
//!   (owner claims, cut, LAO reuse) is simply discarded on pop.
//! * **Dispatch policy = pop order.** Nodes enter in publication order,
//!   which is also roughly depth order (a machine publishes its oldest
//!   private choice point first). `OrDispatch::Topmost` pops FIFO (oldest,
//!   closest to the root — biggest subtrees first), `Deepest` pops LIFO
//!   (youngest, deepest — longest private runs), preserving the Aurora
//!   policy semantics of the traversal scheduler.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::tree::OrNode;

/// Sharded queue of nodes that (recently) held unclaimed alternatives.
pub struct AltPool {
    shards: Vec<Mutex<VecDeque<Arc<OrNode>>>>,
}

impl AltPool {
    /// One shard per worker (at least one).
    pub fn new(workers: usize) -> Self {
        AltPool {
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
        }
    }

    /// Enqueue `node` into `worker`'s shard unless it is already pooled.
    /// Returns whether an entry was actually added.
    pub fn push(&self, worker: usize, node: &Arc<OrNode>) -> bool {
        if !node.try_enter_pool() {
            return false;
        }
        self.shards[worker % self.shards.len()]
            .lock()
            .push_back(node.clone());
        true
    }

    /// Dequeue one node hint for `worker`: own shard first, then victims in
    /// deterministic round-robin order. `topmost` selects FIFO (root-first)
    /// vs LIFO (deepest-first) order within each shard.
    pub fn pop(&self, worker: usize, topmost: bool) -> Option<Arc<OrNode>> {
        let n = self.shards.len();
        for i in 0..n {
            let shard = &self.shards[(worker + i) % n];
            let mut q = shard.lock();
            let node = if topmost { q.pop_front() } else { q.pop_back() };
            if let Some(node) = node {
                node.leave_pool();
                return Some(node);
            }
        }
        None
    }

    /// Total queued entries (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::atomic::AtomicUsize;

    use ace_logic::sym;

    fn node(total: &Arc<AtomicUsize>, root: &Arc<OrNode>, alts: &[usize]) -> Arc<OrNode> {
        OrNode::publish(
            root,
            (sym("p"), 1),
            VecDeque::from(alts.to_vec()),
            total.clone(),
        )
    }

    #[test]
    fn push_pop_roundtrip() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = AltPool::new(2);
        let a = node(&total, &root, &[1]);
        let b = node(&total, &root, &[2]);
        assert!(pool.push(0, &a));
        assert!(pool.push(0, &b));
        assert_eq!(pool.len(), 2);
        // topmost = FIFO
        assert_eq!(pool.pop(0, true).unwrap().id, a.id);
        // deepest = LIFO among the remainder
        assert_eq!(pool.pop(0, false).unwrap().id, b.id);
        assert!(pool.pop(0, true).is_none());
    }

    #[test]
    fn duplicate_push_is_rejected_until_popped() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = AltPool::new(1);
        let a = node(&total, &root, &[1, 2]);
        assert!(pool.push(0, &a));
        assert!(!pool.push(0, &a), "second push while pooled must no-op");
        assert_eq!(pool.len(), 1);
        let popped = pool.pop(0, true).unwrap();
        assert!(pool.push(0, &popped), "re-push after pop allowed");
    }

    #[test]
    fn victim_stealing_crosses_shards() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = AltPool::new(4);
        let a = node(&total, &root, &[1]);
        pool.push(2, &a);
        // worker 0 finds work parked on worker 2's shard
        assert_eq!(pool.pop(0, true).unwrap().id, a.id);
    }
}
