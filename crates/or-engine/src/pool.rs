//! The shared alternative pool: O(1), topology-aware work-finding.
//!
//! The original scheduler walked the whole public tree from the root on
//! every steal attempt, so idle-worker cost grew with tree size — exactly
//! the traversal overhead the paper's flattening schema exists to shrink.
//! The pool inverts the data flow: *publication* enqueues a handle to the
//! node carrying fresh alternatives, and an idle worker dequeues one handle
//! and claims from it directly. Steal cost is then amortized O(1) in the
//! size of the public tree.
//!
//! At 64–512 workers the flat one-shard-per-worker layout develops its own
//! cliffs: every idle probe lock-swept all shards, and every steal was
//! equally likely to land on the far side of the machine. The pool is
//! therefore a **hierarchy** shaped by the run's [`Topology`]:
//!
//! ```text
//!   tier 1: own shard            (free — the owner's backtracking order)
//!   tier 2: same-domain victims  (intra_steal premium)
//!   tier 3: global overflow      (priced by each entry's origin domain)
//!   tier 4: cross-domain victims (cross_steal premium)
//! ```
//!
//! Design points:
//!
//! * **Sharded, domain-grouped.** One deque per worker, grouped into the
//!   topology's domains. A thief exhausts its own domain (tiers 1–2)
//!   before it ever looks outside, so cross-domain traffic only happens
//!   when a whole domain is dry — the invariant the `TraceChecker`'s
//!   domain-steal rule asserts. Scan order is deterministic so the sim
//!   driver stays replayable.
//! * **Overflow tier.** In a multi-domain pool a shard keeps at most
//!   `SPILL_DEPTH` entries; a push beyond that spills the shard's
//!   *oldest* entry (closest to the root) to a global deque any domain
//!   may drain, so a producer burst in one domain becomes visible
//!   machine-wide without every thief sweeping foreign shards. A
//!   single-domain pool never spills: its domain scan already covers
//!   every shard, and the unperturbed shard order keeps the default
//!   topology's schedule identical to the pre-topology pool's.
//!   Newest-deepest entries stay on the owner's shard — its LIFO
//!   dispatch order is undisturbed — while the spilled topmost entries
//!   carry the widest subtrees, exactly what a starved foreign domain
//!   wants. Each overflow entry remembers its origin domain for steal
//!   pricing.
//! * **Lock-free occupancy counters.** Approximate per-shard, per-domain
//!   and pool-wide entry counts let the "pool empty?" probe and the tier
//!   scans skip empty structures without touching a single mutex — the
//!   old [`AltPool::len`] locked every shard on every idle probe, an
//!   O(workers) sweep per probe that dominated big idle fleets. The
//!   counters are hints: exact under the serialized sim driver, and
//!   self-correcting transients under real threads (a missed entry is
//!   found by the next probe).
//! * **Observed contention, not flat charges.** Every mutex the pool does
//!   take is paired with a [`LockClock`] that detects overlap with the
//!   previous holder's virtual critical section; [`PopOutcome`]/
//!   [`PushOutcome`] report the contended-acquisition count and residual
//!   wait so the engine can charge what the serialization actually cost.
//! * **Membership flag, not ownership.** The pool holds `Arc<OrNode>`
//!   *hints*, never alternatives themselves: all claims still go through
//!   the node payload's mutex ([`OrNode::claim_remote`]), so the pool can
//!   never double-issue an alternative and an injected steal failure (which
//!   returns before any pop) leaves every item claimable. Each node tracks
//!   whether it is currently pooled ([`OrNode::try_enter_pool`]) so it has
//!   at most one live pool entry: a popped node that still has work after a
//!   claim is re-enqueued, one that was drained behind the pool's back
//!   (owner claims, cut, LAO reuse) is simply discarded on pop.
//! * **Dispatch policy = pop order.** Nodes enter in publication order,
//!   which is also roughly depth order (a machine publishes its oldest
//!   private choice point first). `OrDispatch::Topmost` pops FIFO (oldest,
//!   closest to the root — biggest subtrees first), `Deepest` pops LIFO
//!   (youngest, deepest — longest private runs), preserving the Aurora
//!   policy semantics of the traversal scheduler.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ace_runtime::{LockClock, Topology};
use parking_lot::Mutex;

use crate::tree::OrNode;

/// Maximum shard depth in a multi-domain pool: a push beyond this
/// spills the shard's oldest entry to the global overflow tier. A
/// single-domain pool never spills — the domain scan already covers
/// every shard, so the overflow tier would buy no visibility and only
/// reorder claims away from the flat baseline's schedule.
const SPILL_DEPTH: usize = 4;

/// Where a popped entry came from, relative to the thief.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealScope {
    /// The thief's own shard — not a steal at all.
    Own,
    /// Another shard (or an overflow entry) from the thief's own domain.
    Domain,
    /// A shard or overflow entry from another domain.
    Cross,
}

/// Result of a successful [`AltPool::pop`].
pub struct PopOutcome {
    pub node: Arc<OrNode>,
    pub scope: StealScope,
    /// The thief's own-domain occupancy observed when the entry was
    /// taken. Under the sim driver a hierarchical [`StealScope::Cross`]
    /// pop always observes `0` — the checker-enforced invariant.
    pub local_work: usize,
    /// Contended lock acquisitions observed during the scan.
    pub contended: u64,
    /// Residual virtual time spent queued behind prior lock holders.
    pub lock_wait: u64,
}

/// Result of an [`AltPool::push`].
pub struct PushOutcome {
    /// Whether an entry was actually added (false: already pooled).
    pub added: bool,
    pub contended: u64,
    pub lock_wait: u64,
}

/// Hierarchical sharded queue of nodes that (recently) held unclaimed
/// alternatives.
pub struct AltPool {
    shards: Vec<Mutex<VecDeque<Arc<OrNode>>>>,
    /// Overflow tier: entries carry the domain of the shard they spilled
    /// from, so a drain prices the steal by provenance.
    global: Mutex<VecDeque<(Arc<OrNode>, usize)>>,
    /// shard → domain (block mapping from the topology).
    domain: Vec<usize>,
    /// domain → its shard indices, in scan order.
    members: Vec<Vec<usize>>,
    /// shard → its position within `members[domain]` (scan rotation).
    member_index: Vec<usize>,
    shard_occupancy: Vec<AtomicUsize>,
    domain_occupancy: Vec<AtomicUsize>,
    global_occupancy: AtomicUsize,
    occupancy: AtomicUsize,
    /// Exhaust-local-domain-first scan (false = flat round-robin, the
    /// pre-topology baseline kept for ablation benchmarks).
    hierarchical: bool,
    shard_clocks: Vec<LockClock>,
    global_clock: LockClock,
    /// Modelled virtual critical-section length of one queue operation.
    lock_hold: u64,
    /// Shard depth beyond which pushes spill to the overflow tier:
    /// `SPILL_DEPTH` with multiple domains, unbounded (no spilling)
    /// with one — see the constant's doc.
    spill_depth: usize,
}

impl AltPool {
    /// One shard per worker (at least one), grouped into the topology's
    /// domains. `lock_hold` is the virtual length of one locked queue
    /// operation — the engine passes its `queue_op` cost.
    pub fn new(workers: usize, topology: &Topology, lock_hold: u64) -> Self {
        let n = workers.max(1);
        let domains = topology.domains.max(1);
        let domain: Vec<usize> = (0..n).map(|w| topology.domain_of(w, n)).collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); domains];
        let mut member_index = vec![0usize; n];
        for (shard, &d) in domain.iter().enumerate() {
            member_index[shard] = members[d].len();
            members[d].push(shard);
        }
        AltPool {
            shards: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            global: Mutex::new(VecDeque::new()),
            domain,
            members,
            member_index,
            shard_occupancy: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            domain_occupancy: (0..domains).map(|_| AtomicUsize::new(0)).collect(),
            global_occupancy: AtomicUsize::new(0),
            occupancy: AtomicUsize::new(0),
            hierarchical: topology.hierarchical,
            shard_clocks: (0..n).map(|_| LockClock::new()).collect(),
            global_clock: LockClock::new(),
            lock_hold,
            spill_depth: if domains > 1 { SPILL_DEPTH } else { usize::MAX },
        }
    }

    /// Enqueue `node` into `worker`'s shard unless it is already pooled,
    /// spilling the shard's oldest entry to the overflow tier when the
    /// shard exceeds `SPILL_DEPTH`. `now` is the worker's virtual
    /// clock (lock contention observation).
    pub fn push(&self, worker: usize, node: &Arc<OrNode>, now: u64) -> PushOutcome {
        if !node.try_enter_pool() {
            return PushOutcome {
                added: false,
                contended: 0,
                lock_wait: 0,
            };
        }
        let w = worker % self.shards.len();
        let (mut contended, mut wait) = (0u64, 0u64);
        Self::note(
            self.shard_clocks[w].acquire(worker, now, self.lock_hold),
            &mut contended,
            &mut wait,
        );
        // The new entry always lands on the owner's shard; when that
        // overfills, the *oldest* entry (closest to the root) spills to
        // the overflow tier. Newest-deepest work stays local for the
        // owner's LIFO dispatch, and topmost entries — the widest
        // subtrees — are exactly what a starved foreign domain wants.
        let spilled = {
            let mut q = self.shards[w].lock();
            q.push_back(node.clone());
            if q.len() > self.spill_depth {
                q.pop_front()
            } else {
                None
            }
        };
        if let Some(old) = spilled {
            Self::note(
                self.global_clock.acquire(worker, now, self.lock_hold),
                &mut contended,
                &mut wait,
            );
            self.global.lock().push_back((old, self.domain[w]));
            self.global_occupancy.fetch_add(1, Ordering::Release);
        } else {
            self.shard_occupancy[w].fetch_add(1, Ordering::Release);
            self.domain_occupancy[self.domain[w]].fetch_add(1, Ordering::Release);
        }
        self.occupancy.fetch_add(1, Ordering::Release);
        PushOutcome {
            added: true,
            contended,
            lock_wait: wait,
        }
    }

    /// Dequeue one node hint for `worker`, scanning the tiers in order
    /// (own shard → same-domain victims → overflow → cross-domain) when
    /// hierarchical, or all shards round-robin then overflow when flat.
    /// `topmost` selects FIFO (root-first) vs LIFO (deepest-first) order
    /// within each queue. An empty pool returns without touching any
    /// mutex — the occupancy counters answer the idle probe.
    pub fn pop(&self, worker: usize, topmost: bool, now: u64) -> Option<PopOutcome> {
        if self.occupancy.load(Ordering::Acquire) == 0 {
            return None;
        }
        let n = self.shards.len();
        let w = worker % n;
        let dom = self.domain[w];
        let (mut contended, mut wait) = (0u64, 0u64);

        if self.hierarchical {
            // Tiers 1–2: own shard, then same-domain victims, rotating
            // from the thief's own position so siblings spread out.
            if self.domain_occupancy[dom].load(Ordering::Acquire) > 0 {
                let members = &self.members[dom];
                let start = self.member_index[w];
                for i in 0..members.len() {
                    let s = members[(start + i) % members.len()];
                    if let Some(node) =
                        self.take_shard(s, worker, topmost, now, &mut contended, &mut wait)
                    {
                        let scope = if s == w {
                            StealScope::Own
                        } else {
                            StealScope::Domain
                        };
                        return Some(self.outcome(node, scope, dom, contended, wait));
                    }
                }
            }
            // Tier 3: the overflow tier, priced by entry provenance.
            if let Some((node, origin)) =
                self.take_global(worker, topmost, now, &mut contended, &mut wait)
            {
                let scope = if origin == dom {
                    StealScope::Domain
                } else {
                    StealScope::Cross
                };
                return Some(self.outcome(node, scope, dom, contended, wait));
            }
            // Tier 4: cross-domain victims, domains in deterministic
            // rotation, skipping dry domains via their counters.
            let domains = self.members.len();
            for d in 1..domains {
                let dd = (dom + d) % domains;
                if self.domain_occupancy[dd].load(Ordering::Acquire) == 0 {
                    continue;
                }
                let members = &self.members[dd];
                if members.is_empty() {
                    continue;
                }
                let start = worker % members.len();
                for i in 0..members.len() {
                    let s = members[(start + i) % members.len()];
                    if let Some(node) =
                        self.take_shard(s, worker, topmost, now, &mut contended, &mut wait)
                    {
                        return Some(self.outcome(node, StealScope::Cross, dom, contended, wait));
                    }
                }
            }
            None
        } else {
            // Flat round-robin over all shards (the pre-topology scan),
            // still classified by domain so the ablation benchmarks can
            // measure the cross-domain fraction of the blind policy.
            for i in 0..n {
                let s = (w + i) % n;
                if let Some(node) =
                    self.take_shard(s, worker, topmost, now, &mut contended, &mut wait)
                {
                    let scope = if s == w {
                        StealScope::Own
                    } else if self.domain[s] == dom {
                        StealScope::Domain
                    } else {
                        StealScope::Cross
                    };
                    return Some(self.outcome(node, scope, dom, contended, wait));
                }
            }
            let (node, origin) =
                self.take_global(worker, topmost, now, &mut contended, &mut wait)?;
            let scope = if origin == dom {
                StealScope::Domain
            } else {
                StealScope::Cross
            };
            Some(self.outcome(node, scope, dom, contended, wait))
        }
    }

    fn note(queued: u64, contended: &mut u64, wait: &mut u64) {
        if queued > 0 {
            *contended += 1;
            *wait += queued;
        }
    }

    fn outcome(
        &self,
        node: Arc<OrNode>,
        scope: StealScope,
        dom: usize,
        contended: u64,
        lock_wait: u64,
    ) -> PopOutcome {
        PopOutcome {
            node,
            scope,
            local_work: self.domain_occupancy[dom].load(Ordering::Relaxed),
            contended,
            lock_wait,
        }
    }

    fn take_shard(
        &self,
        shard: usize,
        worker: usize,
        topmost: bool,
        now: u64,
        contended: &mut u64,
        wait: &mut u64,
    ) -> Option<Arc<OrNode>> {
        if self.shard_occupancy[shard].load(Ordering::Acquire) == 0 {
            return None;
        }
        Self::note(
            self.shard_clocks[shard].acquire(worker, now, self.lock_hold),
            contended,
            wait,
        );
        let node = {
            let mut q = self.shards[shard].lock();
            if topmost {
                q.pop_front()
            } else {
                q.pop_back()
            }
        }?;
        node.leave_pool();
        self.shard_occupancy[shard].fetch_sub(1, Ordering::Release);
        self.domain_occupancy[self.domain[shard]].fetch_sub(1, Ordering::Release);
        self.occupancy.fetch_sub(1, Ordering::Release);
        Some(node)
    }

    fn take_global(
        &self,
        worker: usize,
        topmost: bool,
        now: u64,
        contended: &mut u64,
        wait: &mut u64,
    ) -> Option<(Arc<OrNode>, usize)> {
        if self.global_occupancy.load(Ordering::Acquire) == 0 {
            return None;
        }
        Self::note(
            self.global_clock.acquire(worker, now, self.lock_hold),
            contended,
            wait,
        );
        let (node, origin) = {
            let mut q = self.global.lock();
            if topmost {
                q.pop_front()
            } else {
                q.pop_back()
            }
        }?;
        node.leave_pool();
        self.global_occupancy.fetch_sub(1, Ordering::Release);
        self.occupancy.fetch_sub(1, Ordering::Release);
        Some((node, origin))
    }

    /// Approximate total queued entries — one atomic load, no locks.
    /// Exact under the sim driver; under threads a hint that the next
    /// probe corrects. This is what idle probes consult.
    pub fn len(&self) -> usize {
        self.occupancy.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact entry count via a full locked sweep — diagnostics only;
    /// never on the steal or idle-probe path.
    pub fn len_exact(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum::<usize>() + self.global.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::atomic::AtomicUsize;

    use ace_logic::sym;

    fn node(total: &Arc<AtomicUsize>, root: &Arc<OrNode>, alts: &[usize]) -> Arc<OrNode> {
        OrNode::publish(
            root,
            (sym("p"), 1),
            VecDeque::from(alts.to_vec()),
            total.clone(),
        )
    }

    fn flat(workers: usize) -> AltPool {
        AltPool::new(workers, &Topology::flat(), 6)
    }

    #[test]
    fn push_pop_roundtrip() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = flat(2);
        let a = node(&total, &root, &[1]);
        let b = node(&total, &root, &[2]);
        assert!(pool.push(0, &a, 0).added);
        assert!(pool.push(0, &b, 0).added);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.len_exact(), 2);
        // topmost = FIFO
        assert_eq!(pool.pop(0, true, 0).unwrap().node.id, a.id);
        // deepest = LIFO among the remainder
        assert_eq!(pool.pop(0, false, 0).unwrap().node.id, b.id);
        assert!(pool.pop(0, true, 0).is_none());
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn duplicate_push_is_rejected_until_popped() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = flat(1);
        let a = node(&total, &root, &[1, 2]);
        assert!(pool.push(0, &a, 0).added);
        assert!(
            !pool.push(0, &a, 0).added,
            "second push while pooled must no-op"
        );
        assert_eq!(pool.len(), 1);
        let popped = pool.pop(0, true, 0).unwrap().node;
        assert!(pool.push(0, &popped, 0).added, "re-push after pop allowed");
    }

    #[test]
    fn victim_stealing_crosses_shards() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = flat(4);
        let a = node(&total, &root, &[1]);
        pool.push(2, &a, 0);
        // worker 0 finds work parked on worker 2's shard
        let got = pool.pop(0, true, 0).unwrap();
        assert_eq!(got.node.id, a.id);
        assert_eq!(got.scope, StealScope::Domain);
    }

    #[test]
    fn hierarchical_scan_exhausts_local_domain_before_crossing() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        // 4 workers, 2 domains: shards {0,1} and {2,3}.
        let pool = AltPool::new(4, &Topology::numa(2), 6);
        let far = node(&total, &root, &[1]);
        let near = node(&total, &root, &[2]);
        pool.push(2, &far, 0); // other domain
        pool.push(1, &near, 0); // same domain as worker 0
                                // Worker 0 must drain its own domain first...
        let got = pool.pop(0, true, 0).unwrap();
        assert_eq!(got.node.id, near.id);
        assert_eq!(got.scope, StealScope::Domain);
        // ...and only then cross, observing an empty local domain.
        let got = pool.pop(0, true, 0).unwrap();
        assert_eq!(got.node.id, far.id);
        assert_eq!(got.scope, StealScope::Cross);
        assert_eq!(got.local_work, 0);
    }

    #[test]
    fn deep_shard_spills_to_overflow_tier() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        // 4 workers, 2 domains; worker 0 floods its shard.
        let pool = AltPool::new(4, &Topology::numa(2), 6);
        let nodes: Vec<_> = (0..SPILL_DEPTH + 1)
            .map(|i| node(&total, &root, &[i]))
            .collect();
        for n in &nodes {
            assert!(pool.push(0, n, 0).added);
        }
        assert_eq!(pool.len(), SPILL_DEPTH + 1);
        assert_eq!(pool.len_exact(), SPILL_DEPTH + 1);
        // The *oldest* entry spilled (newest work stays on the owner's
        // shard); it is visible to the other domain without a shard
        // sweep, and is priced by its origin (cross for worker 2).
        let got = pool.pop(2, true, 0).unwrap();
        assert_eq!(got.node.id, nodes[0].id);
        assert_eq!(got.scope, StealScope::Cross);
        // The same entry drained by its own domain is a domain steal.
        let own = pool.pop(0, true, 0).unwrap();
        assert_eq!(own.scope, StealScope::Own);
    }

    #[test]
    fn own_shard_pop_is_own_scope() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = flat(4);
        let a = node(&total, &root, &[1]);
        pool.push(0, &a, 0);
        assert_eq!(pool.pop(0, false, 0).unwrap().scope, StealScope::Own);
    }

    #[test]
    fn empty_probe_touches_no_locks_and_counters_stay_exact() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = AltPool::new(8, &Topology::numa(4), 6);
        assert!(pool.pop(5, true, 0).is_none());
        let a = node(&total, &root, &[1]);
        let b = node(&total, &root, &[2]);
        pool.push(3, &a, 0);
        pool.push(6, &b, 0);
        assert_eq!(pool.len(), pool.len_exact());
        pool.pop(0, true, 0).unwrap();
        pool.pop(0, true, 0).unwrap();
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.len_exact(), 0);
    }

    #[test]
    fn contended_shard_lock_is_observed_in_virtual_time() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = flat(2);
        let a = node(&total, &root, &[1]);
        // Worker 0 holds shard 0's lock in virtual time [10, 16).
        pool.push(0, &a, 10);
        // Worker 1 raiding shard 0 inside the window pays the wait.
        let got = pool.pop(1, true, 12).unwrap();
        assert_eq!(got.contended, 1);
        assert_eq!(got.lock_wait, 4); // 16 - 12
    }

    #[test]
    fn flat_scan_still_classifies_cross_domain_steals() {
        let total = Arc::new(AtomicUsize::new(0));
        let root = OrNode::root(total.clone());
        let pool = AltPool::new(4, &Topology::numa(2).flat_scan(), 6);
        let near = node(&total, &root, &[1]);
        let far = node(&total, &root, &[2]);
        pool.push(1, &near, 0);
        pool.push(2, &far, 0);
        // Worker 1 scans 1, 2, 3, 0 blindly: own entry first, then the
        // foreign shard — classified Cross even though the policy never
        // looked at domains.
        let got = pool.pop(1, true, 0).unwrap();
        assert_eq!(got.node.id, near.id);
        assert_eq!(got.scope, StealScope::Own);
        let got = pool.pop(1, true, 0).unwrap();
        assert_eq!(got.node.id, far.id);
        assert_eq!(got.scope, StealScope::Cross);
    }
}
