//! # ace-or — the or-parallel engine (MUSE/Aurora model) with LAO
//!
//! Explores the alternatives of nondeterministic calls in parallel. The
//! design follows the systems the paper cites as instances of its
//! *sequentialization* schema (§4 — Muse, Aurora):
//!
//! * the search tree is split into a **private** part (each worker executes
//!   plain sequential backtracking on its own machine — "when a processor
//!   is in the private part of the search tree, execution is exactly as in
//!   a sequential Prolog system") and a **public** part — an explicit
//!   shared **or-tree** of published choice points ([`tree::OrNode`]);
//! * a choice point is **published** on demand, when idle workers exist:
//!   its untried alternatives move into the node's shared pool and the
//!   machine state needed to run them is copied out (MUSE-style state
//!   copying, via [`ace_machine::Machine::choice_closure`]);
//! * an **idle worker finds work in O(1)** through the sharded
//!   [`pool::AltPool`]: publication enqueues a handle to the published
//!   node, an idle worker dequeues one and claims from it directly. The
//!   original full-tree traversal ([`ace_runtime::OrScheduler::Traversal`])
//!   is kept as the oracle the pool is validated against — under it every
//!   node visited is charged, so deep chains of single-alternative choice
//!   points (the `member/2` pattern of Figure 6) make work-finding
//!   expensive, which is the cost the paper's *flattening* schema attacks;
//! * **LAO** (Last Alternative Optimization, §3.2): when the last
//!   alternative of node `B1` is taken and the continuing computation
//!   immediately publishes its next choice point, the engine *reuses*
//!   `B1` in place — new alternatives and closure are installed into the
//!   same node (Figure 7), keeping the public tree shallow and work-finding
//!   cheap.
//!
//! Restrictions (documented, standard for or-parallel Prologs): programs
//! must not cut across a published choice point, and only clause-selection
//! choice points are published (`;`/`between` alternatives stay private).

pub mod engine;
pub mod pool;
pub mod tree;

pub use engine::{OrEngine, OrReport};
pub use pool::AltPool;
pub use tree::OrNode;
