//! Direct tests of the machine-level parallel protocol the and-engine
//! builds on: parcall frames, inline branches and barriers, fences,
//! rollback, and cost surfacing.

use std::sync::Arc;

use ace_logic::Database;
use ace_machine::{Machine, Status};
use ace_runtime::CostModel;

fn machine(src: &str) -> Machine {
    let db = Arc::new(Database::load(src).unwrap());
    let mut m = Machine::new(db, Arc::new(CostModel::default()));
    m.enable_parallel(true);
    m
}

const PROG: &str = r#"
    a(1).
    b(2).
    c(X) :- X > 0.
    nd(1). nd(2).
"#;

#[test]
fn parcall_status_raised_with_branches() {
    let mut m = machine(PROG);
    m.load_query_text("a(X) & b(Y) & c(3)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let pf = m.top_parcall().unwrap();
    assert_eq!(pf.branches.len(), 3);
    assert!(pf.cont.is_none());
}

#[test]
fn sequential_mode_treats_amp_as_comma() {
    let db = Arc::new(Database::load(PROG).unwrap());
    let mut m = Machine::new(db, Arc::new(CostModel::default()));
    // par NOT enabled
    m.load_query_text("a(X) & b(Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Solution);
}

#[test]
fn inline_branch_runs_to_barrier() {
    let mut m = machine(PROG);
    m.load_query_text("a(X) & b(Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let branches = m.top_parcall().unwrap().branches.clone();
    let fid = m.top_parcall().unwrap().id;
    m.run_inline_branch(branches[1], fid);
    assert_eq!(m.run_to_completion(), Status::InlineBarrier(fid));
}

#[test]
fn inline_barrier_rearrives_after_backtracking() {
    let mut m = machine(PROG);
    m.load_query_text("a(X) & nd(Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let branches = m.top_parcall().unwrap().branches.clone();
    let fid = m.top_parcall().unwrap().id;
    m.run_inline_branch(branches[1], fid); // nd(Y): two alternatives
    assert_eq!(m.run_to_completion(), Status::InlineBarrier(fid));
    // local backtracking finds the second inline solution and re-arrives
    m.backtrack();
    assert_eq!(m.run_to_completion(), Status::InlineBarrier(fid));
    // third attempt exhausts nd/1 and reaches the frame itself
    m.backtrack();
    assert_eq!(m.run_to_completion(), Status::ParcallRedo);
}

#[test]
fn fence_reports_failure_of_guarded_region() {
    let mut m = machine(PROG);
    m.load_query_text("a(X) & b(Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let fid = m.top_parcall().unwrap().id;
    let _fence = m.push_fence(fid, 0);
    // run a failing goal above the fence
    let goal = {
        let (g, _) = ace_logic::parse_term(&mut m.heap, "c(-1)").unwrap();
        g
    };
    m.run_inline_branch(goal, fid);
    assert_eq!(m.run_to_completion(), Status::FenceHit(fid, 0));
}

#[test]
fn disarmed_fence_is_transparent() {
    let mut m = machine(PROG);
    m.load_query_text("nd(Z) & b(Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let fid = m.top_parcall().unwrap().id;
    // inline-run the nondeterministic branch FIRST (its cp sits below the
    // fence), then a guarded deterministic region
    let branches = m.top_parcall().unwrap().branches.clone();
    m.run_inline_branch(branches[0], fid);
    assert_eq!(m.run_to_completion(), Status::InlineBarrier(fid));
    let fence = m.push_fence(fid, 1);
    let goal = {
        let (g, _) = ace_logic::parse_term(&mut m.heap, "c(5)").unwrap();
        g
    };
    m.run_inline_branch(goal, fid);
    assert_eq!(m.run_to_completion(), Status::InlineBarrier(fid));
    m.disarm_fence(fence);
    // backtracking now flows through the disarmed fence into nd's cp
    m.backtrack();
    assert_eq!(m.run_to_completion(), Status::InlineBarrier(fid));
}

#[test]
fn rollback_restores_heap_and_ctrl() {
    let mut m = machine(PROG);
    m.load_query_text("a(X) & b(Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let fid = m.top_parcall().unwrap().id;
    let ctrl0 = m.ctrl_len();
    let trail0 = m.heap.trail_mark();
    let heap0 = m.heap.heap_mark();
    let goal = {
        let (g, _) = ace_logic::parse_term(&mut m.heap, "nd(W)").unwrap();
        g
    };
    m.run_inline_branch(goal, fid);
    assert_eq!(m.run_to_completion(), Status::InlineBarrier(fid));
    assert!(m.ctrl_len() > ctrl0, "nd left a choice point");
    m.rollback_to(ctrl0, trail0, heap0);
    assert_eq!(m.ctrl_len(), ctrl0);
    assert!(m.is_deterministic_above(ctrl0));
}

#[test]
fn fail_parcall_until_discards_deeper_frames() {
    let mut m = machine(PROG);
    m.load_query_text("a(X) & b(Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let outer = m.top_parcall().unwrap().id;
    // raise a second, nested frame via the inline branch
    let goal = {
        let (g, _) = ace_logic::parse_term(&mut m.heap, "a(P) & b(Q)").unwrap();
        g
    };
    m.run_inline_branch(goal, outer);
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let inner = m.top_parcall().unwrap().id;
    assert_ne!(outer, inner);
    // failing the OUTER frame discards the inner one as well
    let st = m.fail_parcall_until(outer);
    assert_eq!(st, Status::Failed, "no choice points below: query fails");
    assert_eq!(m.ctrl_len(), 0);
}

#[test]
fn unsurfaced_cost_is_monotonic_and_exact() {
    let mut m = machine(PROG);
    m.load_query_text("a(X), b(Y)").unwrap();
    let mut total = 0;
    loop {
        let s = m.step();
        total += m.take_unsurfaced_cost();
        if s != Status::Running {
            break;
        }
    }
    assert_eq!(total, m.stats.cost, "every charged unit surfaced once");
    assert_eq!(m.take_unsurfaced_cost(), 0);
}

#[test]
fn deterministic_since_previous_parcall() {
    let mut m = machine(PROG);
    m.load_query_text("a(X) & b(Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    // deterministic inline step then a nested parcall: condition holds
    let goal = {
        let (g, _) = ace_logic::parse_term(&mut m.heap, "b(K), (a(P) & b(Q))").unwrap();
        g
    };
    let fid = m.top_parcall().unwrap().id;
    m.run_inline_branch(goal, fid);
    assert_eq!(m.run_to_completion(), Status::Parcall);
    assert!(m.deterministic_since_previous_parcall());

    // a nondeterministic step in between breaks it
    let mut m2 = machine(PROG);
    m2.load_query_text("a(X) & b(Y)").unwrap();
    assert_eq!(m2.run_to_completion(), Status::Parcall);
    let fid2 = m2.top_parcall().unwrap().id;
    let goal2 = {
        let (g, _) = ace_logic::parse_term(&mut m2.heap, "nd(K), (a(P) & b(Q))").unwrap();
        g
    };
    m2.run_inline_branch(goal2, fid2);
    assert_eq!(m2.run_to_completion(), Status::Parcall);
    assert!(!m2.deterministic_since_previous_parcall());
}

#[test]
fn merge_out_parcall_resumes_past_frame() {
    let mut m = machine(PROG);
    m.load_query_text("(a(X) & b(Y)), c(1)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Parcall);
    let pf = m.merge_out_parcall();
    assert_eq!(pf.branches.len(), 2);
    // machine continues with c(1) as if the parallel call never happened
    assert_eq!(m.run_to_completion(), Status::Solution);
}
