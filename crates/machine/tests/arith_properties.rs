//! Property tests: machine arithmetic against a Rust reference evaluator
//! on random expression trees (checked semantics: both sides agree on the
//! value or both report an error).

use proptest::prelude::*;
use std::sync::Arc;

use ace_logic::{sym, Cell, Heap};
use ace_machine::arith::{eval, ArithError};

#[derive(Debug, Clone)]
enum E {
    Lit(i16),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    Neg(Box<E>),
    Abs(Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = any::<i16>().prop_map(E::Lit);
    leaf.prop_recursive(5, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mod(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Abs(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Max(Box::new(a), Box::new(b))),
        ]
    })
}

/// Reference evaluation with the machine's semantics (checked ops,
/// euclidean mod).
fn reference(e: &E) -> Result<i64, ()> {
    Ok(match e {
        E::Lit(v) => *v as i64,
        E::Add(a, b) => reference(a)?.checked_add(reference(b)?).ok_or(())?,
        E::Sub(a, b) => reference(a)?.checked_sub(reference(b)?).ok_or(())?,
        E::Mul(a, b) => reference(a)?.checked_mul(reference(b)?).ok_or(())?,
        E::Div(a, b) => {
            let (x, y) = (reference(a)?, reference(b)?);
            if y == 0 {
                return Err(());
            }
            x.checked_div(y).ok_or(())?
        }
        E::Mod(a, b) => {
            let (x, y) = (reference(a)?, reference(b)?);
            if y == 0 {
                return Err(());
            }
            x.rem_euclid(y)
        }
        E::Neg(a) => reference(a)?.checked_neg().ok_or(())?,
        E::Abs(a) => reference(a)?.checked_abs().ok_or(())?,
        E::Min(a, b) => reference(a)?.min(reference(b)?),
        E::Max(a, b) => reference(a)?.max(reference(b)?),
    })
}

fn build(heap: &mut Heap, e: &E) -> Cell {
    let bin = |heap: &mut Heap, op: &str, a: &E, b: &E| {
        let ca = build(heap, a);
        let cb = build(heap, b);
        heap.new_struct(sym(op), &[ca, cb])
    };
    match e {
        E::Lit(v) => Cell::Int(*v as i64),
        E::Add(a, b) => bin(heap, "+", a, b),
        E::Sub(a, b) => bin(heap, "-", a, b),
        E::Mul(a, b) => bin(heap, "*", a, b),
        E::Div(a, b) => bin(heap, "//", a, b),
        E::Mod(a, b) => bin(heap, "mod", a, b),
        E::Neg(a) => {
            let c = build(heap, a);
            heap.new_struct(sym("-"), &[c])
        }
        E::Abs(a) => {
            let c = build(heap, a);
            heap.new_struct(sym("abs"), &[c])
        }
        E::Min(a, b) => bin(heap, "min", a, b),
        E::Max(a, b) => bin(heap, "max", a, b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn machine_arith_matches_reference(e in expr_strategy()) {
        let mut heap = Heap::new();
        let cell = build(&mut heap, &e);
        let machine_result = eval(&heap, cell).map(|(v, _)| v);
        match (reference(&e), machine_result) {
            (Ok(expect), Ok(got)) => prop_assert_eq!(expect, got),
            (Err(()), Err(ArithError::DivideByZero | ArithError::Overflow)) => {}
            (r, m) => {
                return Err(TestCaseError::fail(format!(
                    "mismatch: reference {r:?} vs machine {m:?} on {e:?}"
                )))
            }
        }
    }

    /// Solving `X is <expr>` through the whole machine agrees with `eval`.
    #[test]
    fn is_builtin_agrees_with_eval(e in expr_strategy()) {
        let mut heap = Heap::new();
        let cell = build(&mut heap, &e);
        let direct = eval(&heap, cell).map(|(v, _)| v);

        let rendered = ace_logic::write::term_to_string(&heap, cell);
        let db = Arc::new(ace_logic::Database::load("t.").unwrap());
        let result = ace_machine::solve::all_solutions(
            &db,
            &format!("X is {rendered}"),
        );
        match (direct, result) {
            (Ok(v), Ok(sols)) => {
                prop_assert_eq!(sols, vec![format!("X={v}")]);
            }
            (Err(_), Err(_)) => {}
            (d, r) => {
                return Err(TestCaseError::fail(format!(
                    "mismatch: direct {d:?} vs solved {r:?} for {rendered}"
                )))
            }
        }
    }
}
