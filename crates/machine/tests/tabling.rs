//! Machine-level SLG tabling tests: generator/consumer evaluation of
//! non-determinate tabled predicates, suspension + resumption, duplicate
//! elimination, leader-based SCC completion, and shared-space replay.

use std::sync::Arc;

use ace_logic::Database;
use ace_machine::Solver;
use ace_runtime::{CostModel, EventKind};
use ace_table::{TableConfig, TableSpace};

/// Left recursion over a cyclic graph: the canonical program ordinary
/// resolution cannot terminate on.
const CYCLIC_PATH: &str = r#"
    :- table(path/2).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    path(X, Y) :- edge(X, Y).
    edge(a, b).
    edge(b, c).
    edge(b, d).
    edge(c, a).
"#;

fn db(src: &str) -> Arc<Database> {
    Arc::new(Database::load(src).unwrap())
}

fn space() -> Arc<TableSpace> {
    Arc::new(TableSpace::new(&TableConfig::enabled()))
}

fn solver(d: &Arc<Database>, query: &str, table: Option<Arc<TableSpace>>) -> Solver {
    let mut s = Solver::new(d.clone(), Arc::new(CostModel::default()), query).unwrap();
    s.machine_mut().set_table(table, false);
    s
}

fn all(s: &mut Solver) -> Vec<String> {
    s.collect_solutions(None)
        .unwrap()
        .into_iter()
        .map(|sol| sol.render())
        .collect()
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

#[test]
fn left_recursive_path_terminates_with_the_full_closure() {
    let d = db(CYCLIC_PATH);
    let t = space();
    let mut s = solver(&d, "path(a, X)", Some(t.clone()));
    let sols = sorted(all(&mut s));
    // a -> b -> {c,d}, c -> a closes the cycle: everything is reachable.
    assert_eq!(sols, vec!["X=a", "X=b", "X=c", "X=d"]);

    let st = &s.machine().stats;
    assert_eq!(st.table_subgoals, 1, "{}", st.summary());
    assert_eq!(st.table_answers, 4, "{}", st.summary());
    assert!(st.table_dups >= 1, "the cycle re-derives answers");
    assert!(st.table_suspends >= 1, "{}", st.summary());
    assert!(st.table_resumes >= 1, "{}", st.summary());
    assert_eq!(st.table_completes, 1, "{}", st.summary());
    assert_eq!(t.complete_len(), 1);
}

#[test]
fn completed_tables_replay_as_pure_lookups() {
    let d = db(CYCLIC_PATH);
    let t = space();

    let mut cold = solver(&d, "path(a, X)", Some(t.clone()));
    let cold_sols = sorted(all(&mut cold));
    let cold_stats = cold.machine().stats;

    let mut warm = solver(&d, "path(a, X)", Some(t.clone()));
    let warm_sols = sorted(all(&mut warm));
    assert_eq!(warm_sols, cold_sols);
    let warm_stats = &warm.machine().stats;
    assert_eq!(warm_stats.table_hits, 1, "{}", warm_stats.summary());
    assert_eq!(warm_stats.table_subgoals, 0);
    assert_eq!(warm_stats.table_answers, 0);
    assert!(
        warm_stats.cost < cold_stats.cost,
        "warm {} vs cold {}",
        warm_stats.cost,
        cold_stats.cost
    );
    assert_eq!(t.counters().hits, 1);
}

#[test]
fn mutual_recursion_completes_as_one_scc() {
    // tc and uc feed each other: their generators form a single SCC whose
    // completion must be deferred to the outer (leader) generator.
    let d = db(r#"
        :- table(tc/2, uc/2).
        tc(X, Y) :- uc(X, Z), e1(Z, Y).
        tc(X, Y) :- e1(X, Y).
        uc(X, Y) :- tc(X, Z), e2(Z, Y).
        uc(X, Y) :- e2(X, Y).
        e1(a, b).
        e1(c, d).
        e2(b, c).
    "#);
    let t = space();
    let mut s = solver(&d, "tc(a, X)", Some(t.clone()));
    assert_eq!(sorted(all(&mut s)), vec!["X=b", "X=d"]);
    let st = &s.machine().stats;
    // Both subgoals framed, both completed by the shared leader.
    assert_eq!(st.table_subgoals, 2, "{}", st.summary());
    assert_eq!(st.table_completes, 2, "{}", st.summary());
    assert_eq!(t.complete_len(), 2);

    // The SCC partner uc(a,_) was published complete too: a later call is
    // a pure lookup.
    let mut u = solver(&d, "uc(a, X)", Some(t.clone()));
    assert_eq!(all(&mut u), vec!["X=c"]);
    assert_eq!(u.machine().stats.table_hits, 1);
}

#[test]
fn tabled_predicate_with_no_answers_completes_empty() {
    let d = db(r#"
        :- table(q/1).
        q(X) :- r(X).
        r(_) :- fail.
    "#);
    let t = space();
    let mut s = solver(&d, "q(X)", Some(t.clone()));
    assert!(all(&mut s).is_empty());
    assert_eq!(s.machine().stats.table_completes, 1);
    assert_eq!(t.complete_len(), 1);

    // The failure is now a tabled fact: the warm call fails via lookup.
    let mut w = solver(&d, "q(X)", Some(t.clone()));
    assert!(all(&mut w).is_empty());
    assert_eq!(w.machine().stats.table_hits, 1);
    assert_eq!(w.machine().stats.table_subgoals, 0);
}

#[test]
fn tabled_answers_match_the_untabled_oracle_on_a_dag() {
    // On an acyclic graph the right-recursive untabled formulation
    // terminates too; both must agree (tabling also dedups, so compare
    // sorted sets).
    let d = db(r#"
        :- table(path/2).
        path(X, Y) :- path(X, Z), edge(Z, Y).
        path(X, Y) :- edge(X, Y).
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- edge(X, Z), reach(Z, Y).
        edge(a, b).
        edge(b, c).
        edge(b, d).
        edge(c, e).
    "#);
    let mut oracle = solver(&d, "reach(a, X)", None);
    let mut expect = sorted(all(&mut oracle));
    expect.dedup();

    let t = space();
    let mut tabled = solver(&d, "path(a, X)", Some(t));
    let got = sorted(all(&mut tabled));
    assert_eq!(got, expect);
    // Duplicate elimination is structural: every answer is unique.
    let mut uniq = got.clone();
    uniq.dedup();
    assert_eq!(uniq, got);
}

#[test]
fn distinct_subgoals_of_one_predicate_get_distinct_tables() {
    let d = db(CYCLIC_PATH);
    let t = space();
    let mut s = solver(&d, "path(b, X)", Some(t.clone()));
    assert_eq!(sorted(all(&mut s)), vec!["X=a", "X=b", "X=c", "X=d"]);
    // path(b,_) is a different canonical subgoal than path(a,_): a call
    // on the latter still generates.
    let mut s2 = solver(&d, "path(a, X)", Some(t.clone()));
    assert_eq!(sorted(all(&mut s2)), vec!["X=a", "X=b", "X=c", "X=d"]);
    assert_eq!(s2.machine().stats.table_hits, 0);
    assert_eq!(s2.machine().stats.table_subgoals, 1);
    assert_eq!(t.complete_len(), 2);
}

#[test]
fn table_off_machine_is_table_free() {
    // With no space attached the `:- table` declaration is inert; the
    // machine must not touch any table path (zero-cost off).
    let d = db(r#"
        :- table(e/2).
        e(X, Y) :- edge(X, Y).
        edge(a, b).
        edge(a, c).
    "#);
    let mut s = solver(&d, "e(a, X)", None);
    assert!(!s.machine().table_enabled());
    assert_eq!(all(&mut s), vec!["X=b", "X=c"]);
    let st = &s.machine().stats;
    assert_eq!(st.table_hits, 0);
    assert_eq!(st.table_subgoals, 0);
    assert_eq!(st.table_answers, 0);
    assert_eq!(st.table_suspends, 0);
}

#[test]
fn bound_tabled_calls_key_on_the_instantiated_variant() {
    let d = db(CYCLIC_PATH);
    let t = space();
    // Fully bound call: its canonical key differs from path(a, Var).
    let mut s = solver(&d, "path(a, d)", Some(t.clone()));
    assert_eq!(all(&mut s).len(), 1);
    let mut miss = solver(&d, "path(a, e)", Some(t.clone()));
    assert!(all(&mut miss).is_empty());

    // The open variant is untouched: it still generates, and delivers
    // the full closure.
    let mut open = solver(&d, "path(a, X)", Some(t));
    assert_eq!(open.machine().stats.table_hits, 0);
    assert_eq!(sorted(all(&mut open)), vec!["X=a", "X=b", "X=c", "X=d"]);
}

#[test]
fn trace_events_follow_the_tabling_protocol() {
    let d = db(CYCLIC_PATH);
    let t = space();
    let mut s = Solver::new(d, Arc::new(CostModel::default()), "path(a, X)").unwrap();
    s.machine_mut().set_table(Some(t), true);
    assert_eq!(all(&mut s).len(), 4);

    let events = s.machine_mut().take_memo_events();
    let count =
        |pred: fn(&EventKind) -> bool| -> usize { events.iter().filter(|e| pred(e)).count() };
    let news = count(|e| matches!(e, EventKind::TableNew { .. }));
    let answers = count(|e| matches!(e, EventKind::TableAnswer { .. }));
    let suspends = count(|e| matches!(e, EventKind::TableSuspend { .. }));
    let resumes = count(|e| matches!(e, EventKind::TableResume { .. }));
    let completes = count(|e| matches!(e, EventKind::TableComplete { .. }));
    let st = &s.machine().stats;
    assert_eq!(news as u64, st.table_subgoals);
    assert_eq!(answers as u64, st.table_answers);
    assert_eq!(suspends as u64, st.table_suspends);
    assert_eq!(resumes as u64, st.table_resumes);
    assert_eq!(completes as u64, st.table_completes);
    assert!(news >= 1 && answers >= 4 && suspends >= 1 && resumes >= 1 && completes >= 1);

    // Every resume replays answers that were inserted before it.
    let mut inserted = 0usize;
    for e in &events {
        match e {
            EventKind::TableAnswer { answers, .. } => inserted = (*answers).max(inserted),
            EventKind::TableResume { seen, .. } => {
                assert!(*seen < inserted, "resume at {seen} with {inserted} answers")
            }
            _ => {}
        }
    }
    // Drain is destructive.
    assert!(s.machine_mut().take_memo_events().is_empty());
}

#[test]
fn deep_left_recursive_chain_stays_iterative() {
    // A 200-node chain exercises many suspend/resume rounds; the
    // non-recursive fixpoint loop must not overflow the host stack.
    let mut src = String::from(
        ":- table(path/2).\npath(X, Y) :- path(X, Z), edge(Z, Y).\npath(X, Y) :- edge(X, Y).\n",
    );
    for i in 0..200 {
        src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
    }
    let d = db(&src);
    let t = space();
    let mut s = solver(&d, "path(n0, X)", Some(t.clone()));
    assert_eq!(all(&mut s).len(), 200);
    assert_eq!(s.machine().stats.table_answers, 200);
    assert_eq!(t.complete_len(), 1);
}
