//! Machine-level memoization tests: the `$memo_store` watch protocol,
//! tabled-answer replay, and the zero-cost opt-out.

use std::sync::Arc;

use ace_logic::{sym, CanonKey, Database, Heap, TermArena};
use ace_machine::Solver;
use ace_memo::{MemoConfig, MemoTable, PublishOutcome};
use ace_runtime::CostModel;

const LISTS: &str = r#"
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
"#;

fn db(src: &str) -> Arc<Database> {
    Arc::new(Database::load(src).unwrap())
}

fn table() -> Arc<MemoTable> {
    Arc::new(MemoTable::new(&MemoConfig::enabled()))
}

fn solver(d: &Arc<Database>, query: &str, memo: Option<Arc<MemoTable>>) -> Solver {
    let mut s = Solver::new(d.clone(), Arc::new(CostModel::default()), query).unwrap();
    s.machine_mut().set_memo(memo, false);
    s
}

fn all(s: &mut Solver) -> Vec<String> {
    s.collect_solutions(None)
        .unwrap()
        .into_iter()
        .map(|sol| sol.render())
        .collect()
}

#[test]
fn deterministic_calls_are_stored_then_hit() {
    let d = db(LISTS);
    let t = table();

    // Cold run: nrev is fully deterministic under first-argument indexing,
    // so every subgoal's single answer is published.
    let mut cold = solver(&d, "nrev([1,2,3,4,5], R)", Some(t.clone()));
    let cold_sols = all(&mut cold);
    assert_eq!(cold_sols, vec!["R=[5,4,3,2,1]"]);
    let cold_stats = cold.machine().stats;
    assert!(cold_stats.memo_stores > 0, "{}", cold_stats.summary());
    assert!(cold_stats.memo_misses > 0, "{}", cold_stats.summary());

    // Warm run against the shared table: the top-level call hits
    // immediately and the whole recursion is skipped.
    let mut warm = solver(&d, "nrev([1,2,3,4,5], R)", Some(t.clone()));
    let warm_sols = all(&mut warm);
    assert_eq!(warm_sols, cold_sols);
    let warm_stats = &warm.machine().stats;
    assert!(warm_stats.memo_hits >= 1, "{}", warm_stats.summary());
    assert!(
        warm_stats.calls < cold_stats.calls,
        "warm {} vs cold {}",
        warm_stats.calls,
        cold_stats.calls
    );
    assert!(warm_stats.cost < cold_stats.cost);

    let c = t.counters();
    assert_eq!(c.stores, cold_stats.memo_stores);
    assert!(c.hits >= 1);
}

#[test]
fn nondeterministic_calls_are_never_stored() {
    let d = db(LISTS);
    let t = table();

    let mut s = solver(&d, "member(X, [a,b,c])", Some(t.clone()));
    assert_eq!(all(&mut s), vec!["X=a", "X=b", "X=c"]);
    // A surviving choice point at marker arrival means the answer set is
    // not proven complete; nothing may be tabled.
    assert_eq!(s.machine().stats.memo_stores, 0);
    assert_eq!(t.len(), 0);

    // And a re-run is bit-identical to the first (no warm-table effect).
    let mut s2 = solver(&d, "member(X, [a,b,c])", Some(t));
    assert_eq!(all(&mut s2), vec!["X=a", "X=b", "X=c"]);
    assert_eq!(s2.machine().stats.memo_hits, 0);
}

#[test]
fn memo_on_preserves_solutions_and_their_order() {
    let progs: &[(&str, &str)] = &[
        (LISTS, "nrev([1,2,3,4], R)"),
        (LISTS, "append(A, B, [1,2,3])"),
        (LISTS, "member(X, [p,q,r]), member(X, [r,s,p])"),
        ("p(1). p(2). q(2). q(3).", "p(X), q(X)"),
        (
            "f(0, 1). f(N, F) :- N > 0, M is N - 1, f(M, G), F is N * G.",
            "f(8, F)",
        ),
    ];
    for (src, query) in progs {
        let d = db(src);
        let mut off = solver(&d, query, None);
        let expect = all(&mut off);

        let t = table();
        // Twice against the same table: cold then warm.
        for round in 0..2 {
            let mut on = solver(&d, query, Some(t.clone()));
            assert_eq!(all(&mut on), expect, "{query} round {round}");
        }
    }
}

#[test]
fn memo_off_machine_never_touches_the_table() {
    let d = db(LISTS);
    let mut s = solver(&d, "nrev([1,2,3], R)", None);
    assert!(!s.machine().memo_enabled());
    assert_eq!(all(&mut s).len(), 1);
    let st = &s.machine().stats;
    assert_eq!(st.memo_hits, 0);
    assert_eq!(st.memo_misses, 0);
    assert_eq!(st.memo_stores, 0);
    assert_eq!(st.memo_evictions, 0);
    assert!(s.machine_mut().take_memo_events().is_empty());
}

#[test]
fn manually_published_answer_sets_replay_in_order() {
    // Build a two-answer entry for q(_) by hand: keys are
    // variant-invariant, so a key computed on a scratch heap matches the
    // one the machine computes at call time.
    let mut h = Heap::new();
    let v = h.new_var();
    let goal = h.new_struct(sym("q"), &[v]);
    let key = CanonKey::of(&h, goal);

    let mut answers = Vec::new();
    for i in [1i64, 2] {
        let c = ace_logic::Cell::Int(i);
        let a = h.new_struct(sym("q"), &[c]);
        answers.push(TermArena::freeze(&h, a));
    }
    let t = table();
    assert!(matches!(
        t.publish(&key, answers),
        PublishOutcome::Stored { .. }
    ));

    // `q/1` has no clauses in the database at all: the only way the call
    // can succeed is by replaying the tabled answers.
    let d = db("p(0).");
    let mut s = solver(&d, "q(X)", Some(t.clone()));
    assert_eq!(all(&mut s), vec!["X=1", "X=2"]);
    assert_eq!(s.machine().stats.memo_hits, 1);
    assert_eq!(t.counters().hits, 1);
}

#[test]
fn manually_published_empty_answer_set_fails_the_call() {
    let mut h = Heap::new();
    let v = h.new_var();
    let goal = h.new_struct(sym("q"), &[v]);
    let key = CanonKey::of(&h, goal);
    let t = table();
    t.publish(&key, Vec::new());

    let d = db("p(0).");
    let mut s = solver(&d, "q(X)", Some(t));
    assert_eq!(all(&mut s).len(), 0);
    assert_eq!(s.machine().stats.memo_hits, 1);
}

#[test]
fn warm_table_is_shared_across_machines() {
    let d = db(LISTS);
    let t = table();

    let mut first = solver(&d, "nrev([9,8,7,6], R)", Some(t.clone()));
    all(&mut first);
    let stores = first.machine().stats.memo_stores;
    assert!(stores > 0);

    // A different query over the same table still hits the shared
    // sub-results (nrev of the shorter suffixes).
    let mut second = solver(&d, "nrev([8,7,6], R)", Some(t.clone()));
    assert_eq!(all(&mut second), vec!["R=[6,7,8]"]);
    assert!(second.machine().stats.memo_hits >= 1);
    assert_eq!(second.machine().stats.memo_stores, 0);
}

#[test]
fn memo_trace_events_are_buffered_and_drained() {
    use ace_runtime::EventKind;

    let d = db(LISTS);
    let t = table();
    let mut s = Solver::new(
        d.clone(),
        Arc::new(CostModel::default()),
        "nrev([1,2,3], R)",
    )
    .unwrap();
    s.machine_mut().set_memo(Some(t.clone()), true);
    assert_eq!(all(&mut s).len(), 1);

    let events = s.machine_mut().take_memo_events();
    let stores = events
        .iter()
        .filter(|e| matches!(e, EventKind::MemoStore { .. }))
        .count();
    assert_eq!(stores as u64, s.machine().stats.memo_stores);
    assert!(stores > 0);
    // Drain is destructive.
    assert!(s.machine_mut().take_memo_events().is_empty());

    // Warm re-run emits a hit event for the tabled top-level call.
    let mut w = Solver::new(d, Arc::new(CostModel::default()), "nrev([1,2,3], R)").unwrap();
    w.machine_mut().set_memo(Some(t), true);
    assert_eq!(all(&mut w).len(), 1);
    let events = w.machine_mut().take_memo_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, EventKind::MemoHit { .. })));
}

#[test]
fn cut_and_ite_derivations_are_not_tabled_but_stay_correct() {
    // These allocate (then cut) choice points, so the strict determinism
    // validation refuses to table them — and solutions must be unchanged.
    let d = db(r#"
        max(X, Y, X) :- X >= Y, !.
        max(_, Y, Y).
        classify(X, neg) :- (X < 0 -> true ; fail).
        classify(X, nonneg) :- (X < 0 -> fail ; true).
    "#);
    let t = table();
    let mut s = solver(&d, "max(3, 2, M)", Some(t.clone()));
    assert_eq!(all(&mut s), vec!["M=3"]);
    let mut s = solver(&d, "classify(-5, C)", Some(t.clone()));
    assert_eq!(all(&mut s), vec!["C=neg"]);
    assert_eq!(t.len(), 0, "cut/ite answers must not be tabled");
}
