//! Tests for the extended builtin set: findall/3, sort/msort, reverse,
//! nth1, and their interactions with nondeterminism and errors.

use std::sync::Arc;

use ace_logic::Database;
use ace_machine::solve::all_solutions;

fn db(src: &str) -> Arc<Database> {
    Arc::new(Database::load(src).unwrap())
}

const LISTS: &str = r#"
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).
    p(3). p(1). p(2). p(1).
"#;

#[test]
fn findall_collects_all_solutions() {
    let d = db(LISTS);
    assert_eq!(
        all_solutions(&d, "findall(X, p(X), L)").unwrap(),
        vec!["L=[3,1,2,1], X=_G0"]
    );
}

#[test]
fn findall_empty_on_failure() {
    let d = db(LISTS);
    assert_eq!(
        all_solutions(&d, "findall(X, (p(X), X > 100), L)").unwrap(),
        vec!["L=[], X=_G0"]
    );
}

#[test]
fn findall_with_compound_template() {
    let d = db(LISTS);
    assert_eq!(
        all_solutions(&d, "findall(q(X, X), member(X, [a,b]), L)").unwrap(),
        vec!["L=[q(a,a),q(b,b)], X=_G0"]
    );
}

#[test]
fn findall_does_not_bind_goal_variables() {
    let d = db(LISTS);
    // X must remain unbound outside the findall
    let sols = all_solutions(&d, "findall(X, p(X), L), var(X)").unwrap();
    assert_eq!(sols.len(), 1);
}

#[test]
fn findall_nested() {
    let d = db(LISTS);
    let sols = all_solutions(
        &d,
        "findall(L1, (member(Y, [1,2]), findall(f(Y,X), p(X), L1)), L2)",
    )
    .unwrap();
    assert_eq!(sols.len(), 1);
    assert!(sols[0].contains("L2=[[f(1,3),f(1,1),f(1,2),f(1,1)],"));
}

#[test]
fn findall_propagates_errors() {
    let d = db(LISTS);
    assert!(all_solutions(&d, "findall(X, (p(X), Y is X + foo), L)").is_err());
}

#[test]
fn findall_cut_inside_goal_is_local() {
    let d = db(LISTS);
    assert_eq!(
        all_solutions(&d, "findall(X, (p(X), !), L)").unwrap(),
        vec!["L=[3], X=_G0"]
    );
}

#[test]
fn msort_keeps_duplicates_sort_removes() {
    let d = db(LISTS);
    assert_eq!(
        all_solutions(&d, "msort([3,1,2,1], L)").unwrap(),
        vec!["L=[1,1,2,3]"]
    );
    assert_eq!(
        all_solutions(&d, "sort([3,1,2,1], L)").unwrap(),
        vec!["L=[1,2,3]"]
    );
}

#[test]
fn sort_standard_order_of_terms() {
    let d = db(LISTS);
    // Int < Atom < compound; compounds order by arity first, so f/1
    // precedes the list pair '.'/2
    assert_eq!(
        all_solutions(&d, "msort([f(1), a, 2, [x]], L)").unwrap(),
        vec!["L=[2,a,f(1),[x]]"]
    );
}

#[test]
fn reverse_works() {
    let d = db(LISTS);
    assert_eq!(
        all_solutions(&d, "reverse([1,2,3], L)").unwrap(),
        vec!["L=[3,2,1]"]
    );
    assert_eq!(all_solutions(&d, "reverse([], L)").unwrap(), vec!["L=[]"]);
}

#[test]
fn nth1_indexing() {
    let d = db(LISTS);
    assert_eq!(
        all_solutions(&d, "nth1(2, [a,b,c], E)").unwrap(),
        vec!["E=b"]
    );
    assert!(all_solutions(&d, "nth1(9, [a,b,c], E)").unwrap().is_empty());
    assert!(all_solutions(&d, "nth1(0, [a,b,c], E)").unwrap().is_empty());
}

#[test]
fn findall_is_usable_for_aggregation() {
    let d = db(r#"
        score(alice, 3). score(bob, 5). score(carol, 2).
        total(T) :- findall(S, score(_, S), Ss), sum(Ss, 0, T).
        sum([], A, A).
        sum([X|T], A, S) :- A1 is A + X, sum(T, A1, S).
    "#);
    assert_eq!(all_solutions(&d, "total(T)").unwrap(), vec!["T=10"]);
}
