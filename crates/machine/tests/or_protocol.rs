//! Direct tests of the machine-level or-parallel protocol: choice-point
//! publication (share_choice + closures) and remote alternative
//! installation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ace_logic::{sym, Database};
use ace_machine::frames::SharedChoice;
use ace_machine::{Machine, Status};
use ace_runtime::CostModel;

const PROG: &str = r#"
    color(r). color(g). color(b).
    pick(X, Y) :- color(X), Y = chosen(X).
"#;

fn machine() -> Machine {
    let db = Arc::new(Database::load(PROG).unwrap());
    Machine::new(db, Arc::new(CostModel::default()))
}

/// A scripted alternatives pool for testing the owner protocol.
struct Pool {
    alts: parking_lot::Mutex<Vec<usize>>,
    detached: AtomicUsize,
}

impl SharedChoice for Pool {
    fn claim_next(&self) -> Option<usize> {
        let mut a = self.alts.lock();
        if a.is_empty() {
            None
        } else {
            Some(a.remove(0))
        }
    }

    fn owner_detached(&self) {
        self.detached.fetch_add(1, Ordering::SeqCst);
    }

    fn node_id(&self) -> u64 {
        42
    }
}

#[test]
fn private_choice_points_are_listed() {
    let mut m = machine();
    m.load_query_text("pick(X, Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Solution);
    let privates = m.private_choice_indices();
    assert_eq!(privates.len(), 1, "color/1 left one choice point");
}

#[test]
fn shared_choice_pool_drives_owner_backtracking() {
    let mut m = machine();
    m.load_query_text("pick(X, Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Solution);
    let idx = m.private_choice_indices()[0];
    let pool = Arc::new(Pool {
        alts: parking_lot::Mutex::new(vec![2]), // skip g, go straight to b
        detached: AtomicUsize::new(0),
    });
    m.share_choice(idx, pool.clone());

    m.backtrack();
    assert_eq!(m.run_to_completion(), Status::Solution);
    // the pool handed out clause 2 => X = b
    assert!(m.private_choice_indices().is_empty());

    // pool exhausted: next backtrack detaches the owner and fails
    m.backtrack();
    assert_eq!(*m.status(), Status::Failed);
    assert_eq!(pool.detached.load(Ordering::SeqCst), 1);
}

#[test]
fn choice_closure_captures_state_at_choice_point() {
    let mut m = machine();
    m.load_query_text("pick(X, Y)").unwrap();
    assert_eq!(m.run_to_completion(), Status::Solution);
    let idx = m.private_choice_indices()[0];
    // the machine has bound X=r and Y=chosen(r); the closure must see the
    // state BEFORE those bindings
    let closure = m.choice_closure(idx);
    assert!(closure.cells > 0);
    // current bindings survive the unwind/rewind round trip
    assert_eq!(m.run_to_completion(), Status::Solution);
}

#[test]
fn install_closure_runs_a_specific_alternative() {
    let mut owner = machine();
    owner.load_query_text("pick(X, Y)").unwrap();
    assert_eq!(owner.run_to_completion(), Status::Solution);
    let idx = owner.private_choice_indices()[0];
    let closure = owner.choice_closure(idx);

    // remote machine runs clause 1 of color/1 (g)
    let mut remote = machine();
    assert!(remote.install_closure(&closure, sym("color"), 1, 1));
    assert_eq!(remote.run_to_completion(), Status::Solution);

    // and a machine running clause 2 (b)
    let mut remote2 = machine();
    assert!(remote2.install_closure(&closure, sym("color"), 1, 2));
    assert_eq!(remote2.run_to_completion(), Status::Solution);
}

#[test]
fn install_closure_failure_reports_failed() {
    let db = Arc::new(Database::load("c(1). c(2). t(X) :- c(X), X > 1.").unwrap());
    let mut owner = Machine::new(db.clone(), Arc::new(CostModel::default()));
    owner.load_query_text("t(X)").unwrap();
    assert_eq!(owner.run_to_completion(), Status::Solution); // X = 2
                                                             // the single choice point was consumed on the way (c(1) failed the
                                                             // test, retry happened)... create a fresh one:
    let mut owner2 = Machine::new(db, Arc::new(CostModel::default()));
    owner2.load_query_text("c(X), X > 1").unwrap();
    assert_eq!(owner2.run_to_completion(), Status::Solution);
    prop_check(&mut owner2);
}

fn prop_check(owner: &mut Machine) {
    // no private cps should remain after the last alternative succeeded
    // via plain backtracking ("trust" pops the cp)
    assert!(owner.private_choice_indices().is_empty());
}
