//! Goal continuations: persistent (shareable) lists of pending goals.
//!
//! Choice points capture the continuation at call time; with a persistent
//! list that capture is a pointer copy, as in a WAM environment chain.
//! Nodes are `Arc` so whole machines (and the closures the or-engine copies
//! out of them) stay `Send`.

use std::sync::Arc;

use ace_logic::Cell;

/// One pending goal plus the cut barrier of its enclosing clause body
/// (the control-stack height that `!` cuts back to).
#[derive(Debug)]
pub struct ContNode {
    pub goal: Cell,
    pub barrier: u32,
    pub next: Cont,
}

/// A persistent list of pending goals (`None` = computation finished).
pub type Cont = Option<Arc<ContNode>>;

/// Push `goal` onto `cont`.
#[inline]
pub fn push(cont: &Cont, goal: Cell, barrier: u32) -> Cont {
    Some(Arc::new(ContNode {
        goal,
        barrier,
        next: cont.clone(),
    }))
}

/// Collect the goals (and barriers) of a continuation, nearest first.
/// Used when publishing a choice point's state to the or-tree.
pub fn to_vec(cont: &Cont) -> Vec<(Cell, u32)> {
    let mut out = Vec::new();
    let mut cur = cont.clone();
    while let Some(node) = cur {
        out.push((node.goal, node.barrier));
        cur = node.next.clone();
    }
    out
}

/// Rebuild a continuation from goals collected by [`to_vec`] (nearest
/// first), applying `map_barrier` to each stored barrier.
pub fn from_vec(goals: &[(Cell, u32)], map_barrier: impl Fn(u32) -> u32) -> Cont {
    let mut cont: Cont = None;
    for &(goal, barrier) in goals.iter().rev() {
        cont = push(&cont, goal, map_barrier(barrier));
    }
    cont
}

/// Length of a continuation (diagnostics).
pub fn len(cont: &Cont) -> usize {
    let mut n = 0;
    let mut cur = cont.clone();
    while let Some(node) = cur {
        n += 1;
        cur = node.next.clone();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_logic::Cell;

    #[test]
    fn push_and_walk() {
        let c = push(&None, Cell::Int(1), 0);
        let c = push(&c, Cell::Int(2), 3);
        assert_eq!(len(&c), 2);
        let v = to_vec(&c);
        assert_eq!(v, vec![(Cell::Int(2), 3), (Cell::Int(1), 0)]);
    }

    #[test]
    fn persistence() {
        let base = push(&None, Cell::Int(1), 0);
        let a = push(&base, Cell::Int(2), 0);
        let b = push(&base, Cell::Int(3), 0);
        assert_eq!(to_vec(&a)[0].0, Cell::Int(2));
        assert_eq!(to_vec(&b)[0].0, Cell::Int(3));
        assert_eq!(to_vec(&base).len(), 1);
    }

    #[test]
    fn from_vec_roundtrip_with_barrier_map() {
        let c = push(&push(&None, Cell::Int(1), 5), Cell::Int(2), 9);
        let v = to_vec(&c);
        let c2 = from_vec(&v, |b| b.saturating_sub(5));
        assert_eq!(to_vec(&c2), vec![(Cell::Int(2), 4), (Cell::Int(1), 0)]);
    }
}
