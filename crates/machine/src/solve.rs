//! Convenience solution iteration over a sequential machine.
//!
//! [`Solver`] wraps a [`Machine`] with query parsing, named-variable
//! binding extraction and `Iterator`-style solution enumeration. It is the
//! sequential baseline the parallel engines are compared against, and the
//! reference oracle for cross-engine equivalence tests.

use std::sync::Arc;

use ace_logic::{Cell, Database};
use ace_runtime::fault::FAULT_ERROR_PREFIX;
use ace_runtime::{CancelToken, CostModel};

use crate::machine::{Machine, Status};

/// One solution: the query's named variables and their (rendered) values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    pub bindings: Vec<(String, String)>,
}

impl Solution {
    /// The rendered value of variable `name`, if bound in the query.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Canonical single-line rendering `X=1, Y=f(a)` (sorted by name).
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .bindings
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        parts.sort();
        parts.join(", ")
    }
}

/// Errors raised while solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    Parse(String),
    Execution(String),
    /// The run was stopped by an external [`CancelToken`]. Displays with
    /// the stable `fault:` prefix so the facade classifies it as a
    /// recoverable infrastructure failure, not a program error.
    Cancelled,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Parse(e) => write!(f, "parse error: {e}"),
            SolveError::Execution(e) => write!(f, "execution error: {e}"),
            SolveError::Cancelled => write!(f, "{FAULT_ERROR_PREFIX} run cancelled"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Sequential query evaluator.
pub struct Solver {
    machine: Machine,
    vars: Vec<(String, Cell)>,
    /// Pending backtrack before producing the next solution.
    need_backtrack: bool,
    exhausted: bool,
    /// External cancellation, polled between resolution quanta (deadline
    /// watchdogs and session cancellation reach the sequential engine
    /// through this; `None` runs uninterrupted as before).
    cancel: Option<CancelToken>,
}

impl Solver {
    /// Parse `query` (without the `?-` wrapper) against `db`.
    pub fn new(db: Arc<Database>, costs: Arc<CostModel>, query: &str) -> Result<Self, SolveError> {
        let mut machine = Machine::new(db, costs);
        let vars = machine
            .load_query_text(query)
            .map_err(|e| SolveError::Parse(e.to_string()))?;
        Ok(Solver {
            machine,
            vars,
            need_backtrack: false,
            exhausted: false,
            cancel: None,
        })
    }

    /// Poll `token` between resolution quanta; a cancelled token ends the
    /// enumeration with a `fault: run cancelled` execution error (the
    /// same classification the parallel engines use).
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Produce the next solution, or `None` when the search is exhausted.
    pub fn next_solution(&mut self) -> Result<Option<Solution>, SolveError> {
        if self.exhausted {
            return Ok(None);
        }
        if self.need_backtrack {
            self.need_backtrack = false;
            if self.machine.backtrack() == Status::Failed {
                self.exhausted = true;
                return Ok(None);
            }
        }
        let status = match self.cancel.clone() {
            // bounded quanta keep cancellation latency low
            Some(tok) => loop {
                match self.machine.run(4096, Some(&tok)) {
                    Status::Running => continue,
                    s => break s,
                }
            },
            None => self.machine.run_to_completion(),
        };
        match status {
            Status::Solution => {
                self.need_backtrack = true;
                let bindings = self
                    .vars
                    .iter()
                    .map(|(n, c)| (n.clone(), self.machine.render(*c)))
                    .collect();
                Ok(Some(Solution { bindings }))
            }
            Status::Failed | Status::Halted => {
                self.exhausted = true;
                Ok(None)
            }
            Status::Error(e) => {
                self.exhausted = true;
                Err(SolveError::Execution(e))
            }
            Status::Cancelled => {
                self.exhausted = true;
                Err(SolveError::Cancelled)
            }
            other => {
                self.exhausted = true;
                Err(SolveError::Execution(format!(
                    "unexpected status in sequential solve: {other:?}"
                )))
            }
        }
    }

    /// Collect up to `limit` solutions (all if `None`).
    pub fn collect_solutions(&mut self, limit: Option<usize>) -> Result<Vec<Solution>, SolveError> {
        let mut out = Vec::new();
        while limit.is_none_or(|l| out.len() < l) {
            match self.next_solution()? {
                Some(s) => out.push(s),
                None => break,
            }
        }
        Ok(out)
    }

    /// Does the query have at least one solution?
    pub fn is_provable(&mut self) -> Result<bool, SolveError> {
        Ok(self.next_solution()?.is_some())
    }

    /// Access the underlying machine (stats, output).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }
}

/// One-shot helper: all solutions of `query` against `db`, rendered.
pub fn all_solutions(db: &Arc<Database>, query: &str) -> Result<Vec<String>, SolveError> {
    let mut s = Solver::new(db.clone(), Arc::new(CostModel::default()), query)?;
    Ok(s.collect_solutions(None)?
        .into_iter()
        .map(|sol| sol.render())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_logic::Database;

    fn db(src: &str) -> Arc<Database> {
        Arc::new(Database::load(src).unwrap())
    }

    const LISTS: &str = r#"
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
    "#;

    #[test]
    fn facts() {
        let db = db("p(1). p(2). p(3).");
        let sols = all_solutions(&db, "p(X)").unwrap();
        assert_eq!(sols, vec!["X=1", "X=2", "X=3"]);
    }

    #[test]
    fn pre_cancelled_token_stops_enumeration_as_a_fault() {
        let d = db("spin(N) :- ( N =< 0 -> true ; N1 is N - 1, spin(N1) ).");
        let mut s = Solver::new(d, Arc::new(CostModel::default()), "spin(100000000)").unwrap();
        let tok = CancelToken::new();
        s.set_cancel(tok.clone());
        tok.cancel();
        let err = s.next_solution().unwrap_err();
        assert_eq!(err, SolveError::Cancelled);
        assert!(err.to_string().starts_with(FAULT_ERROR_PREFIX), "{err}");
        // enumeration is over after a cancellation
        assert_eq!(s.next_solution(), Ok(None));
    }

    #[test]
    fn uncancelled_token_does_not_perturb_solutions() {
        let d = db("p(1). p(2). p(3).");
        let mut s = Solver::new(d, Arc::new(CostModel::default()), "p(X)").unwrap();
        s.set_cancel(CancelToken::new());
        let sols = s.collect_solutions(None).unwrap();
        let rendered: Vec<String> = sols.iter().map(Solution::render).collect();
        assert_eq!(rendered, vec!["X=1", "X=2", "X=3"]);
    }

    #[test]
    fn conjunction_and_unification() {
        let db = db("p(1). p(2). q(2). q(3).");
        let sols = all_solutions(&db, "p(X), q(X)").unwrap();
        assert_eq!(sols, vec!["X=2"]);
    }

    #[test]
    fn append_forwards_and_backwards() {
        let d = db(LISTS);
        let sols = all_solutions(&d, "append([1,2], [3], L)").unwrap();
        assert_eq!(sols, vec!["L=[1,2,3]"]);
        // backwards: all splits of [1,2]
        let sols = all_solutions(&d, "append(A, B, [1,2])").unwrap();
        assert_eq!(sols, vec!["A=[], B=[1,2]", "A=[1], B=[2]", "A=[1,2], B=[]"]);
    }

    #[test]
    fn member_enumerates() {
        let d = db(LISTS);
        let sols = all_solutions(&d, "member(X, [a,b,c])").unwrap();
        assert_eq!(sols, vec!["X=a", "X=b", "X=c"]);
    }

    #[test]
    fn naive_reverse() {
        let d = db(LISTS);
        let sols = all_solutions(&d, "nrev([1,2,3,4,5], R)").unwrap();
        assert_eq!(sols, vec!["R=[5,4,3,2,1]"]);
    }

    #[test]
    fn arithmetic() {
        let d = db("double(X, Y) :- Y is X * 2.");
        let sols = all_solutions(&d, "double(21, Y)").unwrap();
        assert_eq!(sols, vec!["Y=42"]);
    }

    #[test]
    fn recursion_with_arith() {
        let d = db(r#"
            fact(0, 1).
            fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
        "#);
        let sols = all_solutions(&d, "fact(10, F)").unwrap();
        assert_eq!(sols, vec!["F=3628800"]);
    }

    #[test]
    fn cut_commits() {
        let d = db(r#"
            max(X, Y, X) :- X >= Y, !.
            max(_, Y, Y).
        "#);
        assert_eq!(all_solutions(&d, "max(3, 2, M)").unwrap(), vec!["M=3"]);
        assert_eq!(all_solutions(&d, "max(1, 2, M)").unwrap(), vec!["M=2"]);
    }

    #[test]
    fn cut_in_first_clause_prunes_alternatives() {
        let d = db("p(1) :- !. p(2). p(3).");
        assert_eq!(all_solutions(&d, "p(X)").unwrap(), vec!["X=1"]);
    }

    #[test]
    fn negation_as_failure() {
        let d = db("p(1). q(2).");
        assert_eq!(all_solutions(&d, "\\+ p(2)").unwrap().len(), 1);
        assert_eq!(all_solutions(&d, "\\+ p(1)").unwrap().len(), 0);
    }

    #[test]
    fn if_then_else() {
        let d = db("classify(X, neg) :- (X < 0 -> true ; fail). classify(X, nonneg) :- (X < 0 -> fail ; true).");
        assert_eq!(all_solutions(&d, "classify(-5, C)").unwrap(), vec!["C=neg"]);
        assert_eq!(
            all_solutions(&d, "classify(5, C)").unwrap(),
            vec!["C=nonneg"]
        );
    }

    #[test]
    fn disjunction_both_branches() {
        let d = db("p(1).");
        let sols = all_solutions(&d, "(X = a ; X = b)").unwrap();
        assert_eq!(sols, vec!["X=a", "X=b"]);
    }

    #[test]
    fn between_generates() {
        let d = db("p(1).");
        let sols = all_solutions(&d, "between(1, 4, X)").unwrap();
        assert_eq!(sols, vec!["X=1", "X=2", "X=3", "X=4"]);
    }

    #[test]
    fn between_checks() {
        let d = db("p(1).");
        assert_eq!(all_solutions(&d, "between(1, 4, 3)").unwrap().len(), 1);
        assert_eq!(all_solutions(&d, "between(1, 4, 9)").unwrap().len(), 0);
    }

    #[test]
    fn call_n() {
        let d = db("add(X, Y, Z) :- Z is X + Y.");
        let sols = all_solutions(&d, "call(add, 1, 2, Z)").unwrap();
        assert_eq!(sols, vec!["Z=3"]);
        let sols = all_solutions(&d, "call(add(1), 2, Z)").unwrap();
        assert_eq!(sols, vec!["Z=3"]);
    }

    #[test]
    fn undefined_predicate_is_error() {
        let d = db("p(1).");
        assert!(matches!(
            all_solutions(&d, "no_such_thing(X)"),
            Err(SolveError::Execution(_))
        ));
    }

    #[test]
    fn instantiation_fault_is_error() {
        let d = db("p(1).");
        assert!(matches!(
            all_solutions(&d, "Y is X + 1"),
            Err(SolveError::Execution(_))
        ));
    }

    #[test]
    fn amp_behaves_as_comma_sequentially() {
        let d = db("p(1). q(2).");
        let sols = all_solutions(&d, "p(X) & q(Y)").unwrap();
        assert_eq!(sols, vec!["X=1, Y=2"]);
    }

    #[test]
    fn functor_and_arg_and_univ() {
        let d = db("p(1).");
        assert_eq!(
            all_solutions(&d, "functor(f(a,b), N, A)").unwrap(),
            vec!["A=2, N=f"]
        );
        assert_eq!(all_solutions(&d, "arg(2, f(a,b), X)").unwrap(), vec!["X=b"]);
        assert_eq!(
            all_solutions(&d, "f(a,b) =.. L").unwrap(),
            vec!["L=[f,a,b]"]
        );
        assert_eq!(
            all_solutions(&d, "T =.. [g, 1, 2]").unwrap(),
            vec!["T=g(1,2)"]
        );
        let sols = all_solutions(&d, "functor(T, h, 2)").unwrap();
        assert_eq!(sols.len(), 1);
        assert!(sols[0].starts_with("T=h(_G"), "{sols:?}");
    }

    #[test]
    fn length_both_modes() {
        let d = db("p(1).");
        assert_eq!(
            all_solutions(&d, "length([a,b,c], N)").unwrap(),
            vec!["N=3"]
        );
        let sols = all_solutions(&d, "length(L, 2)").unwrap();
        assert_eq!(sols.len(), 1);
        assert!(sols[0].starts_with("L=[_G"));
    }

    #[test]
    fn write_captures_output() {
        let d = db("greet :- write(hello), nl, writeln(world).");
        let mut s = Solver::new(d, Arc::new(CostModel::default()), "greet").unwrap();
        assert!(s.is_provable().unwrap());
        assert_eq!(s.machine().output, "hello\nworld\n");
    }

    #[test]
    fn solution_limit() {
        let d = db("p(1). p(2). p(3). p(4).");
        let mut s = Solver::new(d, Arc::new(CostModel::default()), "p(X)").unwrap();
        let sols = s.collect_solutions(Some(2)).unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn stats_are_collected() {
        let d = db(LISTS);
        let mut s =
            Solver::new(d, Arc::new(CostModel::default()), "nrev([1,2,3,4,5,6], R)").unwrap();
        s.next_solution().unwrap().unwrap();
        let st = &s.machine().stats;
        assert!(st.calls > 20);
        assert!(st.cost > 100);
        // first-argument indexing makes nrev fully deterministic
        assert_eq!(st.choice_points, 0);

        // enumeration through member/2 does allocate choice points
        let d2 = db(LISTS);
        let mut s2 =
            Solver::new(d2, Arc::new(CostModel::default()), "member(X, [1,2,3,4])").unwrap();
        let all = s2.collect_solutions(None).unwrap();
        assert_eq!(all.len(), 4);
        assert!(s2.machine().stats.choice_points > 0);
        assert!(s2.machine().stats.backtracks > 0);
    }

    #[test]
    fn deep_recursion_does_not_overflow() {
        let d = db(r#"
            count(0) :- !.
            count(N) :- M is N - 1, count(M).
        "#);
        assert_eq!(all_solutions(&d, "count(100000)").unwrap().len(), 1);
    }

    #[test]
    fn nondeterministic_generate_and_test() {
        let d = db(r#"
            num(1). num(2). num(3). num(4). num(5).
            even(X) :- Y is X mod 2, Y =:= 0.
            pick(X) :- num(X), even(X).
        "#);
        assert_eq!(all_solutions(&d, "pick(X)").unwrap(), vec!["X=2", "X=4"]);
    }
}
